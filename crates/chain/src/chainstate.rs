//! The block chain: storage, best-chain selection, and reorganization.

use crate::block::{Block, BlockHash};
use crate::params::ChainParams;
use crate::store::{ChainStore, CoinsCache, Probe, StoreConfig, StoreError, StoreStats};
use crate::tx::{Transaction, TxOut};
use crate::utxo::{UndoData, UtxoSet};
use crate::validate::{validate_block_with, BlockError, BlockValidationOptions, SigCache};
use crate::wallet::Address;
use bcwan_script::templates::p2pkh;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// What happened when a block was submitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockAction {
    /// Extended the main chain; the new height.
    Extended(u64),
    /// Stored on a side chain (not best).
    SideChain,
    /// Triggered a reorganization.
    Reorganized {
        /// Blocks disconnected from the old main chain.
        disconnected: usize,
        /// Blocks connected from the new branch.
        connected: usize,
    },
    /// Already known.
    AlreadyKnown,
}

/// Why a block was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The parent block is unknown (caller should fetch it first).
    Orphan(BlockHash),
    /// The block body failed validation.
    Invalid(BlockError),
    /// A block on a would-be-best branch failed validation during reorg;
    /// the chain state was restored.
    BranchInvalid(BlockError),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Orphan(h) => write!(f, "orphan block, parent {h} unknown"),
            ChainError::Invalid(e) => write!(f, "invalid block: {e}"),
            ChainError::BranchInvalid(e) => write!(f, "invalid branch block: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

struct StoredBlock {
    block: Block,
    height: u64,
}

/// The transactions moved by a reorganization, in connect order, so the
/// caller (a daemon) can repair its mempool: re-admit `disconnected_txs`
/// that the new branch did not confirm, and evict pool entries that
/// conflict with `connected_txs` — the discipline Bitcoin Core applies in
/// its `DisconnectedBlockTransactions` / `removeForReorg` path.
#[derive(Debug, Clone, Default)]
pub struct ReorgInfo {
    /// Non-coinbase transactions from disconnected blocks, oldest block
    /// first (valid resubmission order: parents before children).
    pub disconnected_txs: Vec<Transaction>,
    /// Non-coinbase transactions confirmed by the new branch, oldest
    /// block first.
    pub connected_txs: Vec<Transaction>,
}

/// Lifetime counters of chain activity, read back into the metrics
/// registry at the end of a run (`chain.*` rows in bench reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Blocks connected to the main chain (extensions + reorg connects;
    /// genesis not counted).
    pub blocks_connected: u64,
    /// Blocks disconnected during reorganizations.
    pub blocks_disconnected: u64,
    /// Completed reorganizations.
    pub reorgs: u64,
    /// Non-coinbase transactions connected to the main chain.
    pub txs_connected: u64,
    /// UTXO entries created while connecting blocks.
    pub utxos_created: u64,
    /// UTXO entries spent while connecting blocks.
    pub utxos_spent: u64,
}

impl ChainStats {
    fn connect(&mut self, block: &Block) {
        self.blocks_connected += 1;
        for tx in &block.transactions {
            if !tx.is_coinbase() {
                self.txs_connected += 1;
                self.utxos_spent += tx.inputs.len() as u64;
            }
            self.utxos_created += tx.outputs.len() as u64;
        }
    }
}

/// What [`Chain::open_store`] recovered, beyond the chain itself.
pub struct OpenedChain {
    /// The reopened chain, tip and UTXO set restored from disk.
    pub chain: Chain,
    /// The coins table was missing/corrupt and was rebuilt by replaying
    /// the block file.
    pub reindexed: bool,
    /// Blocks re-applied (without script re-validation) to advance the
    /// coins snapshot to the committed tip.
    pub rolled_forward: u64,
    /// Blocks undone to walk a stale coins snapshot back to the fork.
    pub undone: u64,
}

/// Store activity plus cache behaviour, for `store.*` metrics export.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreSummary {
    /// The store's lifetime counters.
    pub store: StoreStats,
    /// Coins-cache hits counted while connecting blocks.
    pub cache_hit: u64,
    /// Coins-cache misses (disk read-throughs).
    pub cache_miss: u64,
    /// Dirty (unflushed) cache entries right now.
    pub dirty: u64,
}

/// The chain state: all known blocks, the best chain, and its UTXO set.
pub struct Chain {
    params: ChainParams,
    blocks: HashMap<BlockHash, StoredBlock>,
    /// Main-chain hashes indexed by height.
    main: Vec<BlockHash>,
    /// Undo data for connected main-chain blocks.
    undo: HashMap<BlockHash, UndoData>,
    coins: CoinsCache,
    /// Persistent backing; `None` for a memory-only chain.
    store: Option<ChainStore>,
    stats: ChainStats,
    /// Transactions moved by the most recent reorg, until taken.
    last_reorg: Option<ReorgInfo>,
    /// Signature cache shared with mempools (see [`Mempool::with_cache`])
    /// so block connect skips scripts verified at admission.
    ///
    /// [`Mempool::with_cache`]: crate::mempool::Mempool::with_cache
    sig_cache: Arc<SigCache>,
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chain")
            .field("height", &self.height())
            .field("blocks", &self.blocks.len())
            .field("utxos", &self.coins.set().len())
            .finish()
    }
}

impl Chain {
    /// Creates a chain from a genesis block.
    ///
    /// Genesis is accepted as-is (exempt from PoW/coinbase-value rules, as
    /// in Bitcoin, where genesis is hard-coded).
    pub fn new(params: ChainParams, genesis: Block) -> Self {
        let hash = genesis.hash();
        let mut coins = CoinsCache::new();
        let undo_data = coins
            .apply_block(&genesis.transactions, 0)
            .expect("genesis applies to empty set");
        let mut blocks = HashMap::new();
        blocks.insert(
            hash,
            StoredBlock {
                block: genesis,
                height: 0,
            },
        );
        let mut undo = HashMap::new();
        undo.insert(hash, undo_data);
        Chain {
            params,
            blocks,
            main: vec![hash],
            undo,
            coins,
            store: None,
            stats: ChainStats::default(),
            last_reorg: None,
            sig_cache: Arc::new(SigCache::default()),
        }
    }

    /// Creates a chain from a genesis block with a fresh persistent
    /// store in `dir` (wiping any previous store there). Every connected
    /// block is appended to disk; [`Chain::open_store`] reopens it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory or initial records cannot be
    /// written.
    pub fn create_with_store(
        params: ChainParams,
        genesis: Block,
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
    ) -> Result<Self, StoreError> {
        let mut chain = Chain::new(params, genesis);
        let mut store = ChainStore::create(dir.as_ref(), cfg)?;
        let tip = chain.tip();
        let genesis_block = &chain.blocks.get(&tip).expect("genesis stored").block;
        store.append_block(genesis_block)?;
        store.append_undo(tip, chain.undo.get(&tip).expect("genesis undo"))?;
        store.commit(tip, 0)?;
        chain.store = Some(store);
        chain.flush();
        Ok(chain)
    }

    /// Reopens a chain from a persistent store, recovering the last
    /// durable commit. The UTXO set is restored from the coins snapshot
    /// and advanced to the committed tip by re-applying block bodies —
    /// **without** re-running script validation (those blocks were
    /// validated when first connected). If the snapshot sits on a
    /// branch that was reorged away, the on-disk undo records walk it
    /// back to the fork first. A missing or corrupt coins table falls
    /// back to a full reindex from the block file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Empty`] when no commit survives (caller should
    /// rebuild from genesis), [`StoreError::Corrupt`] when committed
    /// data is unusable, [`StoreError::Io`] on filesystem failure.
    pub fn open_store(
        params: ChainParams,
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
    ) -> Result<OpenedChain, StoreError> {
        let (mut store, loaded) = ChainStore::open(dir.as_ref(), cfg)?;

        // Rebuild the block index; parents precede children on disk.
        let mut blocks: HashMap<BlockHash, StoredBlock> = HashMap::new();
        for block in loaded.blocks {
            let hash = block.hash();
            let height = if block.header.prev_hash == BlockHash::GENESIS_PREV {
                0
            } else {
                blocks
                    .get(&block.header.prev_hash)
                    .ok_or_else(|| {
                        StoreError::Corrupt(format!("block {hash} precedes its parent"))
                    })?
                    .height
                    + 1
            };
            blocks.insert(hash, StoredBlock { block, height });
        }

        // Main chain: walk back from the committed tip.
        let mut main = Vec::new();
        let mut cursor = loaded.tip;
        loop {
            let stored = blocks
                .get(&cursor)
                .ok_or_else(|| StoreError::Corrupt(format!("main ancestor {cursor} missing")))?;
            main.push(cursor);
            if stored.height == 0 {
                break;
            }
            cursor = stored.block.header.prev_hash;
        }
        main.reverse();
        if main.len() as u64 != loaded.height + 1 {
            return Err(StoreError::Corrupt(format!(
                "committed height {} but main chain has {} blocks",
                loaded.height,
                main.len()
            )));
        }

        // Restore the UTXO set from the coins snapshot, repairing its
        // position relative to the committed main chain.
        let mut rolled_forward = 0u64;
        let mut undone = 0u64;
        let restored = loaded.coins.and_then(|(ctip, cheight, entries)| {
            let mut cache = CoinsCache::from_backed(entries);
            let mut h = cheight;
            if main.get(h as usize) != Some(&ctip) {
                // Snapshot taken on a branch since reorged away: undo
                // back to the fork using the persisted undo records.
                let mut cur = ctip;
                while main.get(h as usize) != Some(&cur) {
                    let stored = blocks.get(&cur)?;
                    let u = loaded.undo.get(&cur)?;
                    cache.undo_block(&stored.block.transactions, u);
                    undone += 1;
                    cur = stored.block.header.prev_hash;
                    h = h.checked_sub(1)?;
                }
            }
            // Roll forward to the committed tip, no script validation.
            for hash in &main[(h + 1) as usize..] {
                let stored = blocks.get(hash).expect("main block indexed");
                cache
                    .apply_block(&stored.block.transactions, stored.height)
                    .ok()?;
                rolled_forward += 1;
            }
            Some(cache)
        });

        let (coins, reindexed) = match restored {
            Some(cache) => (cache, false),
            None => {
                // Reindex: replay every main-chain block onto an empty
                // cache and restart the coins log.
                store.reset_coins()?;
                let mut cache = CoinsCache::new();
                for hash in &main {
                    let stored = blocks.get(hash).expect("main block indexed");
                    cache
                        .apply_block(&stored.block.transactions, stored.height)
                        .map_err(|e| {
                            StoreError::Corrupt(format!("reindex failed at {hash}: {e}"))
                        })?;
                }
                rolled_forward = 0;
                undone = 0;
                (cache, true)
            }
        };

        // Undo data the chain keeps resident: main-chain blocks only
        // (stale-branch records stay on disk, already consumed above).
        let main_set: std::collections::HashSet<BlockHash> = main.iter().copied().collect();
        let undo = loaded
            .undo
            .into_iter()
            .filter(|(h, _)| main_set.contains(h))
            .collect();

        let mut chain = Chain {
            params,
            blocks,
            main,
            undo,
            coins,
            store: Some(store),
            stats: ChainStats::default(),
            last_reorg: None,
            sig_cache: Arc::new(SigCache::default()),
        };
        if reindexed {
            // The rebuilt set is entirely fresh; write the new coins
            // generation out now so the next crash reopens warm.
            chain.coins.mark_all_fresh();
            chain.flush();
        }
        Ok(OpenedChain {
            chain,
            reindexed,
            rolled_forward,
            undone,
        })
    }

    /// Whether this chain has a persistent store attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Flushes the dirty coins-cache entries to the store and marks the
    /// snapshot at the current tip. No-op for memory-only chains.
    pub fn flush(&mut self) {
        let tip = self.tip();
        let height = self.height();
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let ops = self.coins.flush_ops();
        store
            .flush_coins(&ops, tip, height)
            .expect("chain store: coins flush failed");
    }

    /// Evicts clean, disk-backed coins entries from memory; they read
    /// back through the store on demand. Returns the eviction count.
    /// No-op (0) for memory-only chains.
    pub fn trim_coins(&mut self) -> usize {
        if self.store.is_none() {
            return 0;
        }
        self.coins.trim_clean()
    }

    /// Store activity and cache counters, if a store is attached.
    pub fn store_summary(&self) -> Option<StoreSummary> {
        let store = self.store.as_ref()?;
        Some(StoreSummary {
            store: *store.stats(),
            cache_hit: self.coins.hits(),
            cache_miss: self.coins.misses(),
            dirty: self.coins.dirty_len() as u64,
        })
    }

    /// Takes the transactions moved by the most recent reorganization.
    /// Returns `None` when no reorg happened since the last call — each
    /// reorg's info is handed out exactly once.
    pub fn take_last_reorg(&mut self) -> Option<ReorgInfo> {
        self.last_reorg.take()
    }

    /// The chain's signature cache. Hand a clone to [`Mempool::with_cache`]
    /// so admission-time verifications carry over to block connect.
    ///
    /// [`Mempool::with_cache`]: crate::mempool::Mempool::with_cache
    pub fn sig_cache(&self) -> &Arc<SigCache> {
        &self.sig_cache
    }

    /// Validation options for connecting blocks to this chain.
    fn validation_options(&self) -> BlockValidationOptions<'_> {
        BlockValidationOptions {
            cache: Some(&self.sig_cache),
            workers: 0, // auto
            batch: true,
        }
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// Builds a standard genesis block carrying one coinbase that
    /// allocates initial funds — the paper's AWS master "bootstraps the
    /// nodes"; these outputs are the bootstrap allocations.
    pub fn make_genesis(params: &ChainParams, allocations: &[(Address, u64)]) -> Block {
        let outputs: Vec<TxOut> = allocations
            .iter()
            .map(|(addr, value)| TxOut {
                value: *value,
                script_pubkey: p2pkh(&addr.0),
            })
            .collect();
        let coinbase = Transaction::coinbase(0, b"bcwan-genesis", outputs);
        Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            params.difficulty_bits,
            vec![coinbase],
        )
    }

    /// The consensus parameters.
    pub fn params(&self) -> &ChainParams {
        &self.params
    }

    /// Current best height (genesis = 0).
    pub fn height(&self) -> u64 {
        (self.main.len() - 1) as u64
    }

    /// Hash of the best block.
    pub fn tip(&self) -> BlockHash {
        *self.main.last().expect("chain never empty")
    }

    /// The UTXO set of the best chain (the coins cache's resident view;
    /// with a store attached, trimmed entries fault back in during
    /// block connect, not through this accessor).
    pub fn utxo(&self) -> &UtxoSet {
        self.coins.set()
    }

    /// Fetches a block by hash.
    pub fn block(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash).map(|s| &s.block)
    }

    /// Height of a block if it is on the main chain.
    pub fn main_chain_height(&self, hash: &BlockHash) -> Option<u64> {
        let stored = self.blocks.get(hash)?;
        (self.main.get(stored.height as usize) == Some(hash)).then_some(stored.height)
    }

    /// Number of confirmations of a main-chain block (tip = 1).
    pub fn confirmations(&self, hash: &BlockHash) -> Option<u64> {
        self.main_chain_height(hash).map(|h| self.height() - h + 1)
    }

    /// The main-chain block at `height`.
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        let hash = self.main.get(height as usize)?;
        self.block(hash)
    }

    /// Iterates main-chain blocks from genesis to tip.
    pub fn iter_main(&self) -> impl Iterator<Item = &Block> {
        self.main
            .iter()
            .map(move |h| &self.blocks.get(h).expect("main blocks stored").block)
    }

    /// Whether a transaction is confirmed on the main chain, and at which
    /// height. Linear scan — fine at simulation scale.
    pub fn find_transaction(&self, txid: &crate::tx::TxId) -> Option<(u64, &Transaction)> {
        for (height, hash) in self.main.iter().enumerate() {
            let block = &self.blocks.get(hash).expect("stored").block;
            for tx in &block.transactions {
                if tx.txid() == *txid {
                    return Some((height as u64, tx));
                }
            }
        }
        None
    }

    /// Submits a block.
    ///
    /// # Errors
    ///
    /// [`ChainError::Orphan`] when the parent is unknown,
    /// [`ChainError::Invalid`] when the block fails validation on the main
    /// tip, [`ChainError::BranchInvalid`] when a reorg target is bad.
    pub fn add_block(&mut self, block: Block) -> Result<BlockAction, ChainError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(BlockAction::AlreadyKnown);
        }
        let parent_hash = block.header.prev_hash;
        let Some(parent) = self.blocks.get(&parent_hash) else {
            return Err(ChainError::Orphan(parent_hash));
        };
        let height = parent.height + 1;

        if parent_hash == self.tip() {
            // Fast path: extending the best chain.
            self.prefetch_inputs(&block);
            validate_block_with(
                &block,
                self.coins.set(),
                height,
                &self.params,
                &self.validation_options(),
            )
            .map_err(ChainError::Invalid)?;
            let undo = self
                .coins
                .apply_block(&block.transactions, height)
                .expect("validated block applies");
            self.undo.insert(hash, undo);
            self.main.push(hash);
            self.stats.connect(&block);
            self.blocks.insert(hash, StoredBlock { block, height });
            self.persist_connected(&[hash]);
            return Ok(BlockAction::Extended(height));
        }

        // Side-chain block: store, then check whether its branch is now
        // strictly longer than the main chain (same per-block work, so
        // longest = most work).
        self.blocks.insert(hash, StoredBlock { block, height });
        if height <= self.height() {
            return Ok(BlockAction::SideChain);
        }
        self.reorganize_to(hash)
    }

    /// Reorganizes the main chain to end at `new_tip` (must be stored and
    /// strictly higher than the current tip).
    fn reorganize_to(&mut self, new_tip: BlockHash) -> Result<BlockAction, ChainError> {
        // Collect the new branch back to the fork point.
        let mut branch = Vec::new(); // new blocks, tip-first
        let mut cursor = new_tip;
        let fork_height = loop {
            let stored = self.blocks.get(&cursor).expect("branch stored");
            if self.main_chain_height(&cursor).is_some() {
                break stored.height;
            }
            branch.push(cursor);
            cursor = stored.block.header.prev_hash;
            if cursor == BlockHash::GENESIS_PREV {
                break 0; // branch from before genesis cannot happen; safety
            }
        };
        branch.reverse();

        // Disconnect main-chain blocks above the fork point.
        let mut disconnected: Vec<BlockHash> = Vec::new();
        while self.height() > fork_height {
            let hash = self.main.pop().expect("non-empty");
            let stored = self.blocks.get(&hash).expect("stored");
            let undo = self.undo.remove(&hash).expect("undo kept for main blocks");
            self.coins.undo_block(&stored.block.transactions, &undo);
            self.stats.blocks_disconnected += 1;
            disconnected.push(hash);
        }

        // Connect the new branch, validating each block.
        let mut connected = 0usize;
        for (i, hash) in branch.iter().enumerate() {
            let height = fork_height + 1 + i as u64;
            let block = self.blocks.get(hash).expect("stored").block.clone();
            self.prefetch_inputs(&block);
            let validated = validate_block_with(
                &block,
                self.coins.set(),
                height,
                &self.params,
                &self.validation_options(),
            );
            match validated {
                Ok(()) => {
                    let undo = self
                        .coins
                        .apply_block(&block.transactions, height)
                        .expect("validated block applies");
                    self.undo.insert(*hash, undo);
                    self.main.push(*hash);
                    self.stats.connect(&block);
                    connected += 1;
                }
                Err(e) => {
                    // Roll back the partial branch and restore the old chain.
                    for _ in 0..connected {
                        let h = self.main.pop().expect("non-empty");
                        let stored = self.blocks.get(&h).expect("stored");
                        let undo = self.undo.remove(&h).expect("undo");
                        self.coins.undo_block(&stored.block.transactions, &undo);
                    }
                    for hash in disconnected.iter().rev() {
                        let stored = self.blocks.get(hash).expect("stored");
                        let block = stored.block.clone();
                        let height = stored.height;
                        let undo = self
                            .coins
                            .apply_block(&block.transactions, height)
                            .expect("previously valid block re-applies");
                        self.undo.insert(*hash, undo);
                        self.main.push(*hash);
                    }
                    // Drop the bad block so it cannot be retried forever.
                    self.blocks.remove(&new_tip);
                    return Err(ChainError::BranchInvalid(e));
                }
            }
        }
        self.stats.reorgs += 1;
        self.persist_connected(&branch);
        let non_coinbase = |hashes: &[BlockHash]| -> Vec<Transaction> {
            hashes
                .iter()
                .flat_map(|h| &self.blocks.get(h).expect("stored").block.transactions)
                .filter(|tx| !tx.is_coinbase())
                .cloned()
                .collect()
        };
        let disconnected_oldest_first: Vec<BlockHash> =
            disconnected.iter().rev().copied().collect();
        let disconnected_txs = non_coinbase(&disconnected_oldest_first);
        let connected_txs = non_coinbase(&branch);
        self.last_reorg = Some(ReorgInfo {
            disconnected_txs,
            connected_txs,
        });
        Ok(BlockAction::Reorganized {
            disconnected: disconnected.len(),
            connected,
        })
    }

    /// Persists freshly connected main-chain blocks: block and undo
    /// records first, then the manifest commit that makes them durable.
    /// Runs only after the in-memory connect succeeded, so disk never
    /// gets ahead of a state we could not reach. Store I/O failure is
    /// fatal — a gateway that cannot write its chain must not pretend
    /// it did.
    fn persist_connected(&mut self, hashes: &[BlockHash]) {
        if self.store.is_none() {
            return;
        }
        let tip = self.tip();
        let height = self.height();
        {
            let store = self.store.as_mut().expect("checked above");
            for hash in hashes {
                let stored = self.blocks.get(hash).expect("connected block stored");
                store
                    .append_block(&stored.block)
                    .expect("chain store: block append failed");
                let undo = self.undo.get(hash).expect("undo kept for main blocks");
                store
                    .append_undo(*hash, undo)
                    .expect("chain store: undo append failed");
            }
            store
                .commit(tip, height)
                .expect("chain store: commit failed");
        }
        if self.store.as_ref().expect("checked above").flush_due() {
            self.flush();
        }
    }

    /// Faults trimmed coins entries back in from the store before a
    /// block's inputs are validated, counting cache hits and misses.
    fn prefetch_inputs(&mut self, block: &Block) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        for tx in &block.transactions {
            if tx.is_coinbase() {
                continue;
            }
            for input in &tx.inputs {
                if self.coins.probe(&input.prevout) == Probe::OnDisk {
                    if let Some(entry) = store.read_coin(&input.prevout) {
                        self.coins.insert_clean(input.prevout, entry);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallet::Wallet;
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Chain, Wallet) {
        let mut rng = StdRng::seed_from_u64(11);
        let params = ChainParams::fast_test();
        let wallet = Wallet::generate(&mut rng);
        let genesis = Chain::make_genesis(&params, &[(wallet.address(), 10_000)]);
        (Chain::new(params, genesis), wallet)
    }

    fn empty_block(chain: &Chain, parent: BlockHash, height: u64, tag: &[u8]) -> Block {
        let cb = Transaction::coinbase(
            height,
            tag,
            vec![TxOut {
                value: chain.params().coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        Block::mine(
            parent,
            height * 1_000_000,
            chain.params().difficulty_bits,
            vec![cb],
        )
    }

    #[test]
    fn genesis_initializes_chain() {
        let (chain, wallet) = setup();
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.utxo().total_value(), 10_000);
        // The allocation is spendable by the wallet's script.
        let found = chain
            .utxo()
            .find(|e| e.output.script_pubkey == wallet.locking_script())
            .count();
        assert_eq!(found, 1);
    }

    #[test]
    fn extend_main_chain() {
        let (mut chain, _) = setup();
        let b1 = empty_block(&chain, chain.tip(), 1, b"a");
        assert_eq!(chain.add_block(b1.clone()), Ok(BlockAction::Extended(1)));
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.tip(), b1.hash());
        assert_eq!(chain.confirmations(&b1.hash()), Some(1));
        assert_eq!(chain.add_block(b1), Ok(BlockAction::AlreadyKnown));
    }

    #[test]
    fn orphan_rejected() {
        let (mut chain, _) = setup();
        let orphan = empty_block(&chain, BlockHash([0xee; 32]), 5, b"o");
        assert!(matches!(
            chain.add_block(orphan),
            Err(ChainError::Orphan(_))
        ));
    }

    #[test]
    fn side_chain_stored_without_switch() {
        let (mut chain, _) = setup();
        let genesis_hash = chain.tip();
        let b1 = empty_block(&chain, genesis_hash, 1, b"main");
        chain.add_block(b1.clone()).unwrap();
        // Competing block at the same height.
        let b1_alt = empty_block(&chain, genesis_hash, 1, b"alt");
        assert_eq!(chain.add_block(b1_alt.clone()), Ok(BlockAction::SideChain));
        assert_eq!(chain.tip(), b1.hash());
        assert_eq!(chain.confirmations(&b1_alt.hash()), None);
    }

    #[test]
    fn longer_side_chain_triggers_reorg() {
        let (mut chain, _) = setup();
        let genesis_hash = chain.tip();
        let b1 = empty_block(&chain, genesis_hash, 1, b"main");
        chain.add_block(b1.clone()).unwrap();

        let a1 = empty_block(&chain, genesis_hash, 1, b"alt1");
        chain.add_block(a1.clone()).unwrap();
        let a2 = empty_block(&chain, a1.hash(), 2, b"alt2");
        let action = chain.add_block(a2.clone()).unwrap();
        assert_eq!(
            action,
            BlockAction::Reorganized {
                disconnected: 1,
                connected: 2
            }
        );
        assert_eq!(chain.tip(), a2.hash());
        assert_eq!(chain.height(), 2);
        // The old main block lost its confirmations.
        assert_eq!(chain.confirmations(&b1.hash()), None);
        assert_eq!(chain.confirmations(&a1.hash()), Some(2));
    }

    #[test]
    fn reorg_updates_utxo_set() {
        let (mut chain, wallet) = setup();
        let genesis_hash = chain.tip();
        let genesis_coin = {
            let cb = &chain.block_at(0).unwrap().transactions[0];
            crate::tx::OutPoint {
                txid: cb.txid(),
                vout: 0,
            }
        };
        // Build main blocks until the genesis coin matures, then spend it.
        let mut parent = genesis_hash;
        for h in 1..=chain.params().coinbase_maturity {
            let b = empty_block(&chain, parent, h, b"m");
            parent = b.hash();
            chain.add_block(b).unwrap();
        }
        let spend_height = chain.height() + 1;
        let spend = wallet.build_payment(
            vec![(genesis_coin, wallet.locking_script())],
            vec![TxOut {
                value: 9_000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let cb = Transaction::coinbase(
            spend_height,
            b"sp",
            vec![TxOut {
                value: chain.params().coinbase_reward + 1_000,
                script_pubkey: Script::new(),
            }],
        );
        let spend_block = Block::mine(
            parent,
            spend_height * 1_000_000,
            chain.params().difficulty_bits,
            vec![cb, spend],
        );
        chain.add_block(spend_block.clone()).unwrap();
        assert!(!chain.utxo().contains(&genesis_coin), "coin spent on main");

        // Build a longer empty branch from `parent` — the spend unconfirms.
        let mut alt_parent = parent;
        for i in 0..2 {
            let b = empty_block(&chain, alt_parent, spend_height + i, b"alt");
            alt_parent = b.hash();
            chain.add_block(b).unwrap();
        }
        assert!(
            chain.utxo().contains(&genesis_coin),
            "reorg must restore the spent coin"
        );
        assert!(chain
            .find_transaction(&spend_block.transactions[1].txid())
            .is_none());
    }

    #[test]
    fn invalid_block_rejected_and_state_intact() {
        let (mut chain, _) = setup();
        let bad_cb = Transaction::coinbase(
            1,
            b"greedy",
            vec![TxOut {
                value: chain.params().coinbase_reward * 10,
                script_pubkey: Script::new(),
            }],
        );
        let bad = Block::mine(chain.tip(), 1, chain.params().difficulty_bits, vec![bad_cb]);
        assert!(matches!(
            chain.add_block(bad),
            Err(ChainError::Invalid(BlockError::ExcessiveCoinbase { .. }))
        ));
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.utxo().total_value(), 10_000);
    }

    #[test]
    fn find_transaction_reports_height() {
        let (mut chain, _) = setup();
        let b1 = empty_block(&chain, chain.tip(), 1, b"x");
        let cb_txid = b1.transactions[0].txid();
        chain.add_block(b1).unwrap();
        let (height, tx) = chain.find_transaction(&cb_txid).unwrap();
        assert_eq!(height, 1);
        assert!(tx.is_coinbase());
        assert!(chain.find_transaction(&crate::tx::TxId([1; 32])).is_none());
    }

    #[test]
    fn stats_track_connects_and_reorgs() {
        let (mut chain, _) = setup();
        assert_eq!(chain.stats(), ChainStats::default());
        let genesis_hash = chain.tip();
        let b1 = empty_block(&chain, genesis_hash, 1, b"main");
        chain.add_block(b1).unwrap();
        let s = chain.stats();
        assert_eq!(s.blocks_connected, 1);
        assert_eq!(s.utxos_created, 1); // the coinbase output
        assert_eq!(s.txs_connected, 0); // coinbase doesn't count

        // Two-block side branch forces a reorg: 1 disconnect, 2 connects.
        let a1 = empty_block(&chain, genesis_hash, 1, b"alt1");
        chain.add_block(a1.clone()).unwrap();
        let a2 = empty_block(&chain, a1.hash(), 2, b"alt2");
        chain.add_block(a2).unwrap();
        let s = chain.stats();
        assert_eq!(s.reorgs, 1);
        assert_eq!(s.blocks_disconnected, 1);
        assert_eq!(s.blocks_connected, 3);
    }

    #[test]
    fn iter_main_yields_in_order() {
        let (mut chain, _) = setup();
        let b1 = empty_block(&chain, chain.tip(), 1, b"1");
        chain.add_block(b1.clone()).unwrap();
        let b2 = empty_block(&chain, chain.tip(), 2, b"2");
        chain.add_block(b2.clone()).unwrap();
        let hashes: Vec<_> = chain.iter_main().map(|b| b.hash()).collect();
        assert_eq!(hashes.len(), 3);
        assert_eq!(hashes[1], b1.hash());
        assert_eq!(hashes[2], b2.hash());
    }
}
