//! Consensus parameters and the block-verification stall model.
//!
//! The paper runs Multichain, "a fork of Bitcoin v10.0 which provides …
//! modifying the average mining time, the size of a block or the
//! consensus" (§5.1). [`ChainParams`] exposes exactly those knobs.
//!
//! [`StallModel`] reproduces the §5.2 observation that "the block
//! verification made the Multichain daemon stall and become unresponsive
//! for extended periods upon each block arrival" — the effect that
//! separates Fig. 5 (mean 1.604 s, verification off) from Fig. 6
//! (mean 30.241 s, verification on).

use bcwan_sim::{SimDuration, SimRng};

/// Consensus and policy parameters for a chain instance.
#[derive(Debug, Clone)]
pub struct ChainParams {
    /// Target interval between blocks (Multichain default: 15 s; Bitcoin:
    /// 600 s; the paper tunes this).
    pub target_block_interval: SimDuration,
    /// Required leading zero bits of a block hash. Small values model a
    /// permissioned Multichain-like chain where PoW is a formality.
    pub difficulty_bits: u32,
    /// Maximum serialized block size in bytes.
    pub max_block_size: usize,
    /// Coinbase subsidy per block.
    pub coinbase_reward: u64,
    /// Blocks a coinbase output must age before it can be spent.
    pub coinbase_maturity: u64,
    /// The block-verification stall model.
    pub stall: StallModel,
}

impl ChainParams {
    /// Multichain-like preset: 15 s blocks, trivial PoW, 1 MiB blocks.
    pub fn multichain_like() -> Self {
        ChainParams {
            target_block_interval: SimDuration::from_secs(15),
            difficulty_bits: 12,
            max_block_size: 1 << 20,
            coinbase_reward: 50_000,
            coinbase_maturity: 10,
            stall: StallModel::disabled(),
        }
    }

    /// Fast preset for unit tests: tiny difficulty, short blocks.
    pub fn fast_test() -> Self {
        ChainParams {
            target_block_interval: SimDuration::from_secs(2),
            difficulty_bits: 4,
            max_block_size: 1 << 20,
            coinbase_reward: 50_000,
            coinbase_maturity: 2,
            stall: StallModel::disabled(),
        }
    }

    /// The paper's Fig. 6 configuration: Multichain-like with the
    /// verification stall enabled.
    pub fn with_verification_stall() -> Self {
        ChainParams {
            stall: StallModel::multichain_observed(),
            ..Self::multichain_like()
        }
    }
}

/// Models the daemon freeze on block arrival.
///
/// When enabled, every block arrival makes the gateway's blockchain daemon
/// unresponsive for `base + per_tx · |block txs|`, log-normally jittered.
/// Requests arriving during the freeze queue behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct StallModel {
    /// Whether block arrival stalls the daemon at all.
    pub enabled: bool,
    /// Fixed verification cost per block.
    pub base: SimDuration,
    /// Additional cost per transaction in the block.
    pub per_tx: SimDuration,
    /// σ of the log-normal jitter factor (0 = deterministic).
    pub jitter_sigma: f64,
}

impl StallModel {
    /// No stalls — the paper's Fig. 5 setting ("disabling block
    /// verification").
    pub fn disabled() -> Self {
        StallModel {
            enabled: false,
            base: SimDuration::ZERO,
            per_tx: SimDuration::ZERO,
            jitter_sigma: 0.0,
        }
    }

    /// Calibrated to the paper's observation: with ~15 s blocks carrying
    /// tens of transactions, exchanges that overlap a block arrival wait
    /// an order of magnitude longer than the Fig. 5 baseline.
    ///
    /// The base is set just below the daemons' queueing knee: at the
    /// Fig. 6 workload a ~5.5 s base yields a stable heavy-tailed system
    /// (mean ≈ 18 s), while 6 s already tips it into saturation
    /// (mean ≈ 47 s and growing with run length) — see EXPERIMENTS.md.
    /// The paper's 30.241 s mean sits on that knee, where any finite
    /// run's mean is dominated by luck; we pick the stable side.
    pub fn multichain_observed() -> Self {
        StallModel {
            enabled: true,
            base: SimDuration::from_millis(5_500),
            per_tx: SimDuration::from_millis(50),
            jitter_sigma: 0.35,
        }
    }

    /// Draws the stall duration for a block with `tx_count` transactions.
    pub fn sample(&self, tx_count: usize, rng: &mut SimRng) -> SimDuration {
        if !self.enabled {
            return SimDuration::ZERO;
        }
        let nominal = self.base.as_secs_f64() + self.per_tx.as_secs_f64() * tx_count as f64;
        let factor = if self.jitter_sigma > 0.0 {
            rng.log_normal(0.0, self.jitter_sigma)
        } else {
            1.0
        };
        SimDuration::from_secs_f64(nominal * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        let m = ChainParams::multichain_like();
        assert_eq!(m.target_block_interval.as_secs_f64(), 15.0);
        assert!(!m.stall.enabled);
        let s = ChainParams::with_verification_stall();
        assert!(s.stall.enabled);
        assert_eq!(s.target_block_interval, m.target_block_interval);
    }

    #[test]
    fn disabled_stall_is_zero() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            StallModel::disabled().sample(100, &mut rng),
            SimDuration::ZERO
        );
    }

    #[test]
    fn stall_grows_with_tx_count() {
        let mut rng = SimRng::seed_from_u64(2);
        let model = StallModel {
            jitter_sigma: 0.0,
            ..StallModel::multichain_observed()
        };
        let small = model.sample(0, &mut rng);
        let big = model.sample(100, &mut rng);
        assert!(big > small);
        assert_eq!(small, model.base);
    }

    #[test]
    fn observed_stall_scale_matches_paper_gap() {
        // Mean stall for a ~20-tx block is order-10 s: below the 15 s
        // block interval (so daemon queues stay stable) yet long enough
        // that queueing lifts a ~1.6 s exchange by an order of
        // magnitude, the paper's Fig. 6 effect.
        let mut rng = SimRng::seed_from_u64(3);
        let model = StallModel::multichain_observed();
        let n = 2000;
        let mean = (0..n)
            .map(|_| model.sample(20, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((5.0..15.0).contains(&mean), "mean stall {mean}s");
    }

    #[test]
    fn jitter_varies_samples() {
        let mut rng = SimRng::seed_from_u64(4);
        let model = StallModel::multichain_observed();
        let a = model.sample(10, &mut rng);
        let b = model.sample(10, &mut rng);
        assert_ne!(a, b);
    }
}
