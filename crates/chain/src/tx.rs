//! Transactions: the UTXO model, serialization, ids and signature hashes.

use bcwan_crypto::sha256d;
use bcwan_script::Script;
use std::fmt;

/// A transaction id: double-SHA256 of the serialized transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TxId(pub [u8; 32]);

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TxId({})", self)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviate like block explorers do.
        let hex = bcwan_crypto::hex::encode(&self.0);
        write!(f, "{}…{}", &hex[..8], &hex[56..])
    }
}

impl TxId {
    /// Full lowercase hex.
    pub fn to_hex(&self) -> String {
        bcwan_crypto::hex::encode(&self.0)
    }
}

/// A reference to a transaction output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutPoint {
    /// The transaction holding the output.
    pub txid: TxId,
    /// The output index.
    pub vout: u32,
}

impl fmt::Display for OutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.txid, self.vout)
    }
}

/// Sequence value that marks an input final (disables lock-time checks).
pub const SEQUENCE_FINAL: u32 = 0xffff_ffff;

/// A transaction input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxIn {
    /// The output being spent.
    pub prevout: OutPoint,
    /// The unlocking script.
    pub script_sig: Script,
    /// Sequence number; must be below [`SEQUENCE_FINAL`] for
    /// `OP_CHECKLOCKTIMEVERIFY` to be meaningful (BIP-65).
    pub sequence: u32,
}

impl TxIn {
    /// Whether this input is final.
    pub fn is_final(&self) -> bool {
        self.sequence == SEQUENCE_FINAL
    }
}

/// A transaction output: an amount locked by a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOut {
    /// Amount in base units (the chain's native token).
    pub value: u64,
    /// The locking script.
    pub script_pubkey: Script,
}

/// A transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Format version.
    pub version: u32,
    /// Inputs (empty exactly for coinbase? no — coinbase has one null input).
    pub inputs: Vec<TxIn>,
    /// Outputs.
    pub outputs: Vec<TxOut>,
    /// Block height before which this transaction may not be mined
    /// (0 = always final). Interacts with `OP_CHECKLOCKTIMEVERIFY`.
    pub lock_time: u64,
}

/// The null outpoint used by coinbase inputs.
pub fn null_outpoint() -> OutPoint {
    OutPoint {
        txid: TxId([0; 32]),
        vout: u32::MAX,
    }
}

impl Transaction {
    /// Builds a coinbase transaction paying `outputs`; `height` is mixed
    /// into the input script so coinbase txids are unique per block.
    pub fn coinbase(height: u64, extra: &[u8], outputs: Vec<TxOut>) -> Self {
        let mut tag = height.to_le_bytes().to_vec();
        tag.extend_from_slice(extra);
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: null_outpoint(),
                script_sig: Script::builder().push(tag).build(),
                sequence: SEQUENCE_FINAL,
            }],
            outputs,
            lock_time: 0,
        }
    }

    /// Whether this is a coinbase transaction.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].prevout == null_outpoint()
    }

    /// Canonical byte serialization (hashing and size accounting).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.inputs.len() as u32).to_le_bytes());
        for input in &self.inputs {
            out.extend_from_slice(&input.prevout.txid.0);
            out.extend_from_slice(&input.prevout.vout.to_le_bytes());
            let sig = input.script_sig.to_bytes();
            out.extend_from_slice(&(sig.len() as u32).to_le_bytes());
            out.extend_from_slice(&sig);
            out.extend_from_slice(&input.sequence.to_le_bytes());
        }
        out.extend_from_slice(&(self.outputs.len() as u32).to_le_bytes());
        for output in &self.outputs {
            out.extend_from_slice(&output.value.to_le_bytes());
            let spk = output.script_pubkey.to_bytes();
            out.extend_from_slice(&(spk.len() as u32).to_le_bytes());
            out.extend_from_slice(&spk);
        }
        out.extend_from_slice(&self.lock_time.to_le_bytes());
        out
    }

    /// The transaction id.
    pub fn txid(&self) -> TxId {
        TxId(sha256d(&self.serialize()))
    }

    /// Serialized size in bytes.
    pub fn size(&self) -> usize {
        self.serialize().len()
    }

    /// Sum of output values.
    pub fn total_output(&self) -> u64 {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// The SIGHASH_ALL signature hash for `input_index`.
    ///
    /// The hash commits to the whole transaction with every unlocking
    /// script blanked and the signed input's script slot holding the
    /// previous output's locking script — the classic Bitcoin scheme.
    ///
    /// # Panics
    ///
    /// Panics if `input_index` is out of range.
    pub fn sighash(&self, input_index: usize, prev_script_pubkey: &Script) -> [u8; 32] {
        assert!(input_index < self.inputs.len(), "input index out of range");
        let mut copy = self.clone();
        for (i, input) in copy.inputs.iter_mut().enumerate() {
            input.script_sig = if i == input_index {
                prev_script_pubkey.clone()
            } else {
                Script::new()
            };
        }
        let mut data = copy.serialize();
        data.extend_from_slice(&(input_index as u32).to_le_bytes());
        data.push(0x01); // SIGHASH_ALL
        sha256d(&data)
    }

    /// Whether the transaction is final at `height`: lock-time reached or
    /// all inputs final.
    pub fn is_final_at(&self, height: u64) -> bool {
        if self.lock_time == 0 || self.lock_time <= height {
            return true;
        }
        self.inputs.iter().all(TxIn::is_final)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_script::Opcode;

    fn sample_tx() -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: OutPoint {
                    txid: TxId([9; 32]),
                    vout: 1,
                },
                script_sig: Script::builder().push(vec![1, 2, 3]).build(),
                sequence: 0,
            }],
            outputs: vec![TxOut {
                value: 50,
                script_pubkey: Script::builder().op(Opcode::Dup).build(),
            }],
            lock_time: 0,
        }
    }

    #[test]
    fn txid_is_stable_and_sensitive() {
        let tx = sample_tx();
        assert_eq!(tx.txid(), tx.txid());
        let mut modified = tx.clone();
        modified.outputs[0].value = 51;
        assert_ne!(tx.txid(), modified.txid());
    }

    #[test]
    fn coinbase_detection() {
        let cb = Transaction::coinbase(
            5,
            b"miner-1",
            vec![TxOut {
                value: 100,
                script_pubkey: Script::new(),
            }],
        );
        assert!(cb.is_coinbase());
        assert!(!sample_tx().is_coinbase());
        // Unique per height.
        let cb2 = Transaction::coinbase(
            6,
            b"miner-1",
            vec![TxOut {
                value: 100,
                script_pubkey: Script::new(),
            }],
        );
        assert_ne!(cb.txid(), cb2.txid());
    }

    #[test]
    fn sighash_commits_to_outputs_and_index() {
        let tx = sample_tx();
        let spk = Script::builder().op(Opcode::CheckSig).build();
        let h1 = tx.sighash(0, &spk);
        let mut tx2 = tx.clone();
        tx2.outputs[0].value = 9999;
        assert_ne!(h1, tx2.sighash(0, &spk));
        // Different prev script → different hash.
        let other_spk = Script::builder().op(Opcode::Dup).build();
        assert_ne!(h1, tx.sighash(0, &other_spk));
    }

    #[test]
    fn sighash_ignores_existing_script_sigs() {
        let tx = sample_tx();
        let spk = Script::builder().op(Opcode::CheckSig).build();
        let mut resigned = tx.clone();
        resigned.inputs[0].script_sig = Script::builder().push(vec![9, 9]).build();
        assert_eq!(tx.sighash(0, &spk), resigned.sighash(0, &spk));
    }

    #[test]
    #[should_panic(expected = "input index out of range")]
    fn sighash_bad_index_panics() {
        sample_tx().sighash(7, &Script::new());
    }

    #[test]
    fn finality_rules() {
        let mut tx = sample_tx();
        assert!(tx.is_final_at(0), "lock_time 0 is always final");
        tx.lock_time = 100;
        assert!(!tx.is_final_at(99));
        assert!(tx.is_final_at(100));
        // Final sequences override lock time.
        tx.inputs[0].sequence = SEQUENCE_FINAL;
        assert!(tx.is_final_at(0));
    }

    #[test]
    fn totals_and_size() {
        let tx = sample_tx();
        assert_eq!(tx.total_output(), 50);
        assert_eq!(tx.size(), tx.serialize().len());
    }

    #[test]
    fn txid_display_abbreviates() {
        let tx = sample_tx();
        let text = tx.txid().to_string();
        assert!(text.contains('…'));
        assert_eq!(tx.txid().to_hex().len(), 64);
    }
}
