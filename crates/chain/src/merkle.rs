//! Merkle trees over transaction ids (Bitcoin-style: double-SHA256,
//! odd levels duplicate the last node).

use crate::tx::TxId;
use bcwan_crypto::sha256d;

/// Computes the merkle root of a list of transaction ids.
///
/// An empty list yields the all-zero root (only legal for a block with no
/// transactions, which validation rejects anyway).
pub fn merkle_root(txids: &[TxId]) -> [u8; 32] {
    if txids.is_empty() {
        return [0; 32];
    }
    let mut level: Vec<[u8; 32]> = txids.iter().map(|t| t.0).collect();
    while level.len() > 1 {
        level = combine_level(&level);
    }
    level[0]
}

fn combine_level(level: &[[u8; 32]]) -> Vec<[u8; 32]> {
    let mut next = Vec::with_capacity(level.len().div_ceil(2));
    for pair in level.chunks(2) {
        let left = pair[0];
        let right = if pair.len() == 2 { pair[1] } else { pair[0] };
        next.push(hash_pair(&left, &right));
    }
    next
}

fn hash_pair(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(left);
    buf[32..].copy_from_slice(right);
    sha256d(&buf)
}

/// One step of a merkle proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling hash at this level.
    pub sibling: [u8; 32],
    /// Whether the sibling is on the right of the running hash.
    pub sibling_right: bool,
}

/// A merkle inclusion proof for one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// The proved transaction id.
    pub txid: TxId,
    /// Steps from leaf to root.
    pub steps: Vec<ProofStep>,
}

/// Builds an inclusion proof for the transaction at `index`.
///
/// Returns `None` if `index` is out of range.
pub fn merkle_proof(txids: &[TxId], index: usize) -> Option<MerkleProof> {
    if index >= txids.len() {
        return None;
    }
    let mut steps = Vec::new();
    let mut level: Vec<[u8; 32]> = txids.iter().map(|t| t.0).collect();
    let mut pos = index;
    while level.len() > 1 {
        let sibling_pos = if pos.is_multiple_of(2) {
            pos + 1
        } else {
            pos - 1
        };
        let sibling = if sibling_pos < level.len() {
            level[sibling_pos]
        } else {
            level[pos] // odd level: duplicated self
        };
        steps.push(ProofStep {
            sibling,
            sibling_right: pos.is_multiple_of(2),
        });
        level = combine_level(&level);
        pos /= 2;
    }
    Some(MerkleProof {
        txid: txids[index],
        steps,
    })
}

impl MerkleProof {
    /// Verifies the proof against a root.
    pub fn verify(&self, root: &[u8; 32]) -> bool {
        let mut running = self.txid.0;
        for step in &self.steps {
            running = if step.sibling_right {
                hash_pair(&running, &step.sibling)
            } else {
                hash_pair(&step.sibling, &running)
            };
        }
        running == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u8) -> Vec<TxId> {
        (0..n).map(|i| TxId([i; 32])).collect()
    }

    #[test]
    fn single_tx_root_is_its_id() {
        let t = ids(1);
        assert_eq!(merkle_root(&t), t[0].0);
    }

    #[test]
    fn empty_root_is_zero() {
        assert_eq!(merkle_root(&[]), [0; 32]);
    }

    #[test]
    fn root_changes_with_any_tx() {
        let a = ids(4);
        let mut b = a.clone();
        b[2] = TxId([0xff; 32]);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn root_depends_on_order() {
        let a = ids(4);
        let mut b = a.clone();
        b.swap(0, 1);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn odd_count_duplicates_last() {
        // Root of [a, b, c] = H(H(a,b), H(c,c)).
        let t = ids(3);
        let left = hash_pair(&t[0].0, &t[1].0);
        let right = hash_pair(&t[2].0, &t[2].0);
        assert_eq!(merkle_root(&t), hash_pair(&left, &right));
    }

    #[test]
    fn proofs_verify_for_every_position_and_size() {
        for n in 1..=9u8 {
            let t = ids(n);
            let root = merkle_root(&t);
            for i in 0..n as usize {
                let proof = merkle_proof(&t, i).unwrap();
                assert!(proof.verify(&root), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_root_or_txid() {
        let t = ids(5);
        let root = merkle_root(&t);
        let mut proof = merkle_proof(&t, 2).unwrap();
        assert!(proof.verify(&root));
        proof.txid = TxId([0xee; 32]);
        assert!(!proof.verify(&root));
        let proof2 = merkle_proof(&t, 2).unwrap();
        assert!(!proof2.verify(&[1; 32]));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        assert!(merkle_proof(&ids(3), 3).is_none());
    }
}
