//! Proof-of-stake block scheduling (consensus ablation).
//!
//! The paper's §6: "The Proof-of-Work is not suitable for edge nodes to
//! run the blockchain as this is a computational power based method of
//! election. Other methods such as Proof-of-stake do not rely on
//! computational power and thus can help to further close the gap of the
//! blockchain to the edge nodes." This module provides the stake-weighted
//! leader schedule the A4 ablation bench compares against PoW.

use crate::wallet::Address;
use bcwan_crypto::sha256;

/// A stake-weighted validator set with deterministic slot-leader election.
#[derive(Debug, Clone)]
pub struct ValidatorSet {
    validators: Vec<(Address, u64)>,
    total_stake: u64,
}

/// Errors building a validator set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidatorSetError {
    /// No validators supplied.
    Empty,
    /// A validator has zero stake.
    ZeroStake(Address),
}

impl std::fmt::Display for ValidatorSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidatorSetError::Empty => write!(f, "validator set is empty"),
            ValidatorSetError::ZeroStake(a) => write!(f, "validator {a} has zero stake"),
        }
    }
}

impl std::error::Error for ValidatorSetError {}

impl ValidatorSet {
    /// Builds a set from `(address, stake)` pairs.
    ///
    /// # Errors
    ///
    /// [`ValidatorSetError`] on an empty set or zero stakes.
    pub fn new(validators: Vec<(Address, u64)>) -> Result<Self, ValidatorSetError> {
        if validators.is_empty() {
            return Err(ValidatorSetError::Empty);
        }
        for (addr, stake) in &validators {
            if *stake == 0 {
                return Err(ValidatorSetError::ZeroStake(*addr));
            }
        }
        let total_stake = validators.iter().map(|(_, s)| s).sum();
        Ok(ValidatorSet {
            validators,
            total_stake,
        })
    }

    /// Number of validators.
    pub fn len(&self) -> usize {
        self.validators.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.validators.is_empty()
    }

    /// Total stake.
    pub fn total_stake(&self) -> u64 {
        self.total_stake
    }

    /// The slot leader for block `height` under chain `seed`: a
    /// deterministic, stake-weighted draw (follow-the-satoshi style).
    /// Every honest node computes the same leader.
    pub fn slot_leader(&self, height: u64, seed: &[u8]) -> Address {
        let mut material = Vec::with_capacity(seed.len() + 8);
        material.extend_from_slice(seed);
        material.extend_from_slice(&height.to_le_bytes());
        let digest = sha256(&material);
        let draw = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) % self.total_stake;
        let mut acc = 0u64;
        for (addr, stake) in &self.validators {
            acc += stake;
            if draw < acc {
                return *addr;
            }
        }
        unreachable!("draw < total_stake")
    }

    /// Fraction of slots in `[0, horizon)` led by `addr` — used by the
    /// ablation to confirm stake-proportional block production.
    pub fn leadership_share(&self, addr: &Address, seed: &[u8], horizon: u64) -> f64 {
        let led = (0..horizon)
            .filter(|h| self.slot_leader(*h, seed) == *addr)
            .count();
        led as f64 / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn construction_rules() {
        assert!(matches!(
            ValidatorSet::new(vec![]),
            Err(ValidatorSetError::Empty)
        ));
        assert!(matches!(
            ValidatorSet::new(vec![(addr(1), 0)]),
            Err(ValidatorSetError::ZeroStake(a)) if a == addr(1)
        ));
        let set = ValidatorSet::new(vec![(addr(1), 10), (addr(2), 30)]).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_stake(), 40);
    }

    #[test]
    fn leader_is_deterministic() {
        let set = ValidatorSet::new(vec![(addr(1), 1), (addr(2), 1), (addr(3), 1)]).unwrap();
        for h in 0..20 {
            assert_eq!(set.slot_leader(h, b"seed"), set.slot_leader(h, b"seed"));
        }
        // Different seeds give (usually) different schedules.
        let schedule_a: Vec<_> = (0..20).map(|h| set.slot_leader(h, b"a")).collect();
        let schedule_b: Vec<_> = (0..20).map(|h| set.slot_leader(h, b"b")).collect();
        assert_ne!(schedule_a, schedule_b);
    }

    #[test]
    fn leadership_proportional_to_stake() {
        let set = ValidatorSet::new(vec![(addr(1), 10), (addr(2), 30)]).unwrap();
        let share1 = set.leadership_share(&addr(1), b"bcwan", 4000);
        let share2 = set.leadership_share(&addr(2), b"bcwan", 4000);
        assert!((share1 - 0.25).abs() < 0.05, "share1 {share1}");
        assert!((share2 - 0.75).abs() < 0.05, "share2 {share2}");
        assert!((share1 + share2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_validator_always_leads() {
        let set = ValidatorSet::new(vec![(addr(9), 5)]).unwrap();
        for h in 0..10 {
            assert_eq!(set.slot_leader(h, b"x"), addr(9));
        }
    }

    #[test]
    fn impl_eq_for_error() {
        // Constructed sets are never empty.
        let set = ValidatorSet::new(vec![(addr(1), 1)]).unwrap();
        assert!(!set.is_empty());
    }
}
