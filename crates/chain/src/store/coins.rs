//! Write-back UTXO cache layered over the on-disk coins table.
//!
//! [`CoinsCache`] wraps the in-memory [`UtxoSet`] and tracks, per
//! outpoint, how the cached view diverges from the flat coins file
//! underneath (the *backing*):
//!
//! - **Fresh** — created since the last flush and never flushed; if it
//!   is spent again before the next flush the entry vanishes without
//!   ever touching disk (the common case for short-lived escrow
//!   outputs).
//! - **Write** — present in the backing but the cached value differs
//!   (created over an erased slot, or restored by a reorg undo).
//! - **Erase** — present in the backing but spent in the cache; the
//!   flush must delete it.
//!
//! [`CoinsCache::flush_ops`] drains the dirty map into a deterministic
//! (outpoint-sorted) list of put/delete operations for the store to
//! append, and re-labels everything clean. Clean entries can be
//! evicted with [`CoinsCache::trim_clean`] and read back through
//! [`CoinsCache::insert_clean`] on a miss — the `backed` key set
//! remembers what the coins file holds so a miss is distinguishable
//! from a genuinely absent output.

use crate::tx::{OutPoint, Transaction};
use crate::utxo::{UndoData, UtxoEntry, UtxoError, UtxoSet};
use std::collections::{HashMap, HashSet};

/// How a cached entry diverges from the on-disk backing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dirty {
    /// Created since the last flush; the backing has never seen it.
    Fresh,
    /// In the backing, but the cached value supersedes it.
    Write,
    /// In the backing, but spent in the cache; flush must delete it.
    Erase,
}

/// One operation a flush hands to the store, in outpoint order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushOp {
    /// Write (or overwrite) this entry in the coins table.
    Put(OutPoint, UtxoEntry),
    /// Delete this outpoint from the coins table.
    Del(OutPoint),
}

/// Write-back cache over the UTXO set (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CoinsCache {
    set: UtxoSet,
    dirty: HashMap<OutPoint, Dirty>,
    backed: HashSet<OutPoint>,
    hits: u64,
    misses: u64,
}

/// Result of probing the cache for an outpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Resident in the cache (counted as a hit).
    InCache,
    /// Not resident, but the coins file holds it (counted as a miss —
    /// the caller should read it back and [`CoinsCache::insert_clean`]).
    OnDisk,
    /// Unknown to both cache and backing.
    Absent,
}

impl CoinsCache {
    /// An empty, memory-only cache (no backing yet).
    pub fn new() -> Self {
        CoinsCache::default()
    }

    /// A cache warmed from a loaded coins snapshot: every entry is
    /// resident, clean, and known to be in the backing.
    pub fn from_backed(entries: HashMap<OutPoint, UtxoEntry>) -> Self {
        let mut set = UtxoSet::new();
        let mut backed = HashSet::with_capacity(entries.len());
        for (op, entry) in entries {
            backed.insert(op);
            set.insert_loaded(op, entry);
        }
        CoinsCache {
            set,
            dirty: HashMap::new(),
            backed,
            hits: 0,
            misses: 0,
        }
    }

    /// The resident UTXO set. Callers that only read (validation,
    /// wallets, coin selection) keep working against this view.
    pub fn set(&self) -> &UtxoSet {
        &self.set
    }

    /// Number of dirty (unflushed) entries.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Number of keys the on-disk backing holds.
    pub fn backed_len(&self) -> usize {
        self.backed.len()
    }

    /// Cache hits counted by [`CoinsCache::probe`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses counted by [`CoinsCache::probe`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Where an outpoint lives, bumping the hit/miss counters.
    pub fn probe(&mut self, op: &OutPoint) -> Probe {
        if self.set.contains(op) {
            self.hits += 1;
            Probe::InCache
        } else if self.backed.contains(op) && self.dirty.get(op) != Some(&Dirty::Erase) {
            self.misses += 1;
            Probe::OnDisk
        } else {
            Probe::Absent
        }
    }

    /// Re-inserts an entry read back from the coins file after a
    /// [`Probe::OnDisk`] miss. The entry is clean (it matches disk).
    pub fn insert_clean(&mut self, op: OutPoint, entry: UtxoEntry) {
        debug_assert!(self.backed.contains(&op), "insert_clean without backing");
        self.set.insert_loaded(op, entry);
    }

    /// Applies a block through the cache, maintaining dirty flags.
    ///
    /// # Errors
    ///
    /// As [`UtxoSet::apply_block`]; the cache (set and flags) is
    /// unchanged on error.
    pub fn apply_block(
        &mut self,
        transactions: &[Transaction],
        height: u64,
    ) -> Result<UndoData, UtxoError> {
        let undo = self.set.apply_block(transactions, height)?;
        for tx in transactions {
            if !tx.is_coinbase() {
                for input in &tx.inputs {
                    self.note_remove(input.prevout);
                }
            }
            let txid = tx.txid();
            for vout in 0..tx.outputs.len() as u32 {
                self.note_write(OutPoint { txid, vout });
            }
        }
        Ok(undo)
    }

    /// Disconnects a block through the cache, maintaining dirty flags.
    pub fn undo_block(&mut self, transactions: &[Transaction], undo: &UndoData) {
        self.set.undo_block(transactions, undo);
        // Mirror the per-transaction reverse order of the set's undo so
        // intra-block spend chains end with the right final flag.
        for tx in transactions.iter().rev() {
            let txid = tx.txid();
            for vout in 0..tx.outputs.len() as u32 {
                self.note_remove(OutPoint { txid, vout });
            }
            if !tx.is_coinbase() {
                for input in tx.inputs.iter().rev() {
                    self.note_write(input.prevout);
                }
            }
        }
    }

    /// An outpoint was (re)written into the set.
    fn note_write(&mut self, op: OutPoint) {
        let flag = match self.dirty.get(&op) {
            Some(Dirty::Fresh) => Dirty::Fresh,
            Some(Dirty::Write) | Some(Dirty::Erase) => Dirty::Write,
            None => {
                if self.backed.contains(&op) {
                    Dirty::Write
                } else {
                    Dirty::Fresh
                }
            }
        };
        self.dirty.insert(op, flag);
    }

    /// An outpoint was removed from the set.
    fn note_remove(&mut self, op: OutPoint) {
        match self.dirty.get(&op) {
            // Never hit disk: spending a fresh entry cancels it outright.
            Some(Dirty::Fresh) => {
                self.dirty.remove(&op);
            }
            _ => {
                if self.backed.contains(&op) {
                    self.dirty.insert(op, Dirty::Erase);
                } else {
                    self.dirty.remove(&op);
                }
            }
        }
    }

    /// Drains the dirty map into a deterministic, outpoint-sorted list
    /// of flush operations and marks everything clean. The `backed` key
    /// set is updated to reflect the coins file after these operations
    /// are applied.
    pub fn flush_ops(&mut self) -> Vec<FlushOp> {
        let mut keys: Vec<(OutPoint, Dirty)> = self.dirty.drain().collect();
        keys.sort_unstable_by_key(|(op, _)| *op);
        let mut ops = Vec::with_capacity(keys.len());
        for (op, flag) in keys {
            match flag {
                Dirty::Fresh | Dirty::Write => {
                    let entry = self
                        .set
                        .get(&op)
                        .expect("dirty put entry resident in cache")
                        .clone();
                    self.backed.insert(op);
                    ops.push(FlushOp::Put(op, entry));
                }
                Dirty::Erase => {
                    self.backed.remove(&op);
                    ops.push(FlushOp::Del(op));
                }
            }
        }
        ops
    }

    /// Marks every resident entry fresh-dirty, as after a reindex: the
    /// coins file is being rebuilt from scratch, so the next flush must
    /// write the full set into a new generation.
    pub fn mark_all_fresh(&mut self) {
        self.backed.clear();
        self.dirty.clear();
        let keys: Vec<OutPoint> = self.set.iter().map(|(op, _)| *op).collect();
        for op in keys {
            self.dirty.insert(op, Dirty::Fresh);
        }
    }

    /// Evicts clean, backed entries from the resident set (they can be
    /// read back through [`CoinsCache::probe`] / `insert_clean`).
    /// Returns how many were evicted.
    pub fn trim_clean(&mut self) -> usize {
        let evict: Vec<OutPoint> = self
            .set
            .iter()
            .map(|(op, _)| *op)
            .filter(|op| self.backed.contains(op) && !self.dirty.contains_key(op))
            .collect();
        for op in &evict {
            self.set.remove_loaded(op);
        }
        evict.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{TxIn, TxOut, SEQUENCE_FINAL};
    use crate::Transaction;
    use bcwan_script::Script;

    fn coinbase(height: u64, value: u64) -> Transaction {
        Transaction::coinbase(
            height,
            b"c",
            vec![TxOut {
                value,
                script_pubkey: Script::new(),
            }],
        )
    }

    fn spend(prev: OutPoint, value: u64) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: prev,
                script_sig: Script::new(),
                sequence: SEQUENCE_FINAL,
            }],
            outputs: vec![TxOut {
                value,
                script_pubkey: Script::new(),
            }],
            lock_time: 0,
        }
    }

    #[test]
    fn fresh_spent_before_flush_never_reaches_disk() {
        let mut cache = CoinsCache::new();
        let cb = coinbase(1, 50);
        let op = OutPoint {
            txid: cb.txid(),
            vout: 0,
        };
        cache.apply_block(std::slice::from_ref(&cb), 1).unwrap();
        assert_eq!(cache.dirty_len(), 1);
        let sp = spend(op, 50);
        let cb2 = coinbase(2, 50);
        cache.apply_block(&[cb2, sp], 2).unwrap();
        let ops = cache.flush_ops();
        // The spent-then-created chain flushes only the survivors: the
        // spender's output and block 2's coinbase — never `op`.
        assert_eq!(ops.len(), 2);
        assert!(ops
            .iter()
            .all(|o| !matches!(o, FlushOp::Put(p, _) if *p == op)));
        assert!(!ops.iter().any(|o| matches!(o, FlushOp::Del(_))));
    }

    #[test]
    fn backed_spend_erases_and_undo_restores() {
        let mut cache = CoinsCache::new();
        let cb = coinbase(1, 50);
        let op = OutPoint {
            txid: cb.txid(),
            vout: 0,
        };
        cache.apply_block(std::slice::from_ref(&cb), 1).unwrap();
        cache.flush_ops();
        assert_eq!(cache.backed_len(), 1);

        // Spend the backed coin: flush must delete it.
        let sp = spend(op, 49);
        let txs = [coinbase(2, 50), sp];
        let undo = cache.apply_block(&txs, 2).unwrap();
        assert!(cache
            .dirty
            .iter()
            .any(|(k, f)| *k == op && *f == Dirty::Erase));

        // Undo before flushing: the coin is back and clean-equivalent
        // (flag Write — the backing still holds the same value, a
        // redundant but safe re-put).
        cache.undo_block(&txs, &undo);
        let ops = cache.flush_ops();
        assert!(ops
            .iter()
            .all(|o| !matches!(o, FlushOp::Del(d) if *d == op)));
        assert!(cache.set().contains(&op));
    }

    #[test]
    fn trim_and_readthrough_counts_hits_and_misses() {
        let mut cache = CoinsCache::new();
        let cb = coinbase(1, 50);
        let op = OutPoint {
            txid: cb.txid(),
            vout: 0,
        };
        cache.apply_block(&[cb], 1).unwrap();
        cache.flush_ops();
        assert_eq!(cache.probe(&op), Probe::InCache);
        assert_eq!(cache.hits(), 1);

        assert_eq!(cache.trim_clean(), 1);
        assert!(!cache.set().contains(&op));
        assert_eq!(cache.probe(&op), Probe::OnDisk);
        assert_eq!(cache.misses(), 1);

        let entry = UtxoEntry {
            output: TxOut {
                value: 50,
                script_pubkey: Script::new(),
            },
            height: 1,
            coinbase: true,
        };
        cache.insert_clean(op, entry);
        assert_eq!(cache.probe(&op), Probe::InCache);

        let absent = OutPoint {
            txid: crate::TxId([9; 32]),
            vout: 0,
        };
        assert_eq!(cache.probe(&absent), Probe::Absent);
    }
}
