//! Record-framed append-only files.
//!
//! Every on-disk file in the store ([`blocks`], undo, coins, manifest)
//! is a sequence of self-delimiting records:
//!
//! ```text
//! offset  size  field
//!      0     4  magic 0xB0C4_57A1 (LE) — resync sentinel
//!      4     1  record kind (one byte, file-specific)
//!      5     4  payload length (LE)
//!      9     4  CRC-32 (IEEE) over kind byte ‖ payload
//!     13     …  payload
//! ```
//!
//! Readers stop at the first record that is short, has a bad magic, or
//! fails its CRC — everything before that point is the *valid prefix*,
//! everything after is a torn tail from an interrupted write and is
//! discarded (the store truncates back to the last commit it can
//! prove). Appends open the file, write, and close: the store never
//! holds file descriptors between operations, so a 1000-host sim soak
//! stays within default fd limits.

use std::fs::OpenOptions;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

/// Leading sentinel of every record.
pub(crate) const RECORD_MAGIC: u32 = 0xB0C4_57A1;

/// Bytes of framing before the payload.
pub(crate) const RECORD_HEADER: u64 = 13;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the same polynomial the
/// transport frame uses, implemented locally so `chain` stays
/// dependency-free.
pub(crate) fn crc32(parts: &[&[u8]]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for part in parts {
        for &byte in *part {
            crc = TABLE[((crc ^ byte as u32) & 0xff) as usize] ^ (crc >> 8);
        }
    }
    !crc
}

/// One decoded record: its kind byte and payload.
#[derive(Debug, Clone)]
pub(crate) struct Record {
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Frames one record into `out`.
pub(crate) fn frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&[&[kind], payload]).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends pre-framed bytes to `path` (creating it if needed) and
/// returns the file's new length. With `fsync`, flushes to stable
/// storage before returning.
pub(crate) fn append(path: &Path, framed: &[u8], fsync: bool) -> io::Result<u64> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(framed)?;
    if fsync {
        file.sync_data()?;
    }
    file.seek(SeekFrom::End(0))
}

/// Reads the valid record prefix of `path`: all records that frame and
/// CRC correctly, stopping at the first torn or corrupt one. Returns
/// the records and the byte length of the valid prefix. A missing file
/// reads as empty.
pub(crate) fn read_valid_prefix(path: &Path) -> io::Result<(Vec<Record>, u64)> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER as usize {
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            break;
        }
        let kind = bytes[pos + 4];
        let len = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().expect("4 bytes"));
        let start = pos + RECORD_HEADER as usize;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32(&[&[kind], payload]) != crc {
            break;
        }
        records.push(Record {
            kind,
            payload: payload.to_vec(),
        });
        pos = end;
    }
    Ok((records, pos as u64))
}

/// Reads `len` payload bytes at `offset` (which must point at a payload,
/// not a record header) — the random-access path for coins-cache misses.
pub(crate) fn read_payload_at(path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    let mut file = OpenOptions::new().read(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// Truncates `path` to `len` bytes, discarding a torn tail. Missing
/// files are ignored when truncating to zero.
pub(crate) fn truncate(path: &Path, len: u64) -> io::Result<()> {
    match OpenOptions::new().write(true).open(path) {
        Ok(file) => file.set_len(len),
        Err(e) if e.kind() == io::ErrorKind::NotFound && len == 0 => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bcwan-files-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc_matches_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE check value).
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn records_round_trip_and_torn_tail_is_dropped() {
        let path = temp_path("roundtrip");
        let mut framed = Vec::new();
        frame(&mut framed, b'A', b"first");
        frame(&mut framed, b'B', b"second record");
        let len = append(&path, &framed, false).unwrap();
        let (records, valid) = read_valid_prefix(&path).unwrap();
        assert_eq!(valid, len);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, b'A');
        assert_eq!(records[1].payload, b"second record");

        // Append a third record, then tear it: everything after the
        // second record must be ignored.
        let mut third = Vec::new();
        frame(&mut third, b'C', b"torn away");
        append(&path, &third, false).unwrap();
        truncate(&path, len + 5).unwrap();
        let (records, valid) = read_valid_prefix(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(valid, len);

        // Corrupt a byte inside the first record's payload: nothing
        // survives (the reader cannot resync past a bad CRC).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[RECORD_HEADER as usize] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (records, valid) = read_valid_prefix(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(valid, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = temp_path("missing");
        let (records, valid) = read_valid_prefix(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }
}
