//! Persistent chain storage: append-only block/undo files, a flat
//! coins table, and a crash-safe manifest.
//!
//! A store directory holds four kinds of files, all built from the CRC'd
//! record framing in the private `files` module:
//!
//! ```text
//! blocks.dat      kind 'B' records — whole blocks, canonical layout
//! undo.dat        kind 'U' records — block hash ‖ spent-entry list
//! coins-<g>.log   kind 'P' (outpoint ‖ entry) / 'D' (outpoint) records
//! manifest.log    kind 'C' commit    (tip ‖ height ‖ blocks_len ‖ undo_len)
//!                 kind 'F' coins mark (gen ‖ coins_len ‖ tip ‖ height)
//! ```
//!
//! The **manifest is the commit point**: block and undo bytes are
//! appended first, then a `C` record naming the file lengths they end
//! at. On reopen the store takes the *last `C` record whose lengths are
//! covered by CRC-valid data* and truncates everything past it — a torn
//! write anywhere rolls the chain back to the last durable commit, never
//! to an inconsistent hybrid. Coins flushes work the same way: `P`/`D`
//! records first, then an `F` mark naming the generation and length
//! that are now meaningful. fsync is configurable
//! ([`StoreConfig::fsync`]) and applied at commit/flush boundaries only;
//! with it off the store is still proof against process crashes (the
//! sim's chaos model), just not against power loss.
//!
//! The coins log is append-only per generation and compacts by
//! rewriting live entries into generation `g+1`, marking it with an `F`
//! record, and deleting the old file.

mod coins;
mod files;

pub use coins::{CoinsCache, FlushOp, Probe};

use crate::block::{Block, BlockHash};
use crate::codec::{
    decode_block, decode_outpoint, decode_undo, decode_utxo_entry, encode_block, encode_outpoint,
    encode_undo, encode_utxo_entry, Reader,
};
use crate::tx::OutPoint;
use crate::utxo::{UndoData, UtxoEntry};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

const KIND_BLOCK: u8 = b'B';
const KIND_UNDO: u8 = b'U';
const KIND_PUT: u8 = b'P';
const KIND_DEL: u8 = b'D';
const KIND_COMMIT: u8 = b'C';
const KIND_COINS_MARK: u8 = b'F';

/// Compaction floor: a coins log smaller than this is never rewritten.
const COMPACT_MIN_BYTES: u64 = 64 * 1024;

/// Tuning knobs for a [`ChainStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// fsync at commit/flush boundaries (durability against power loss,
    /// not just process crash). Off by default: the sim's chaos model
    /// kills processes, not power, and a 1000-host soak cannot afford
    /// a million fsyncs.
    pub fsync: bool,
    /// Connect this many blocks between automatic coins flushes.
    pub coins_flush_interval: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: false,
            coins_flush_interval: 8,
        }
    }
}

/// Counters a store accumulates over its lifetime (exported as
/// `store.*` metrics by the sim).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Coins flushes performed (manual or interval-driven).
    pub flush_total: u64,
    /// Full rebuilds of the coins table from the block file (missing or
    /// corrupt coins data at open).
    pub reindex_total: u64,
    /// Bytes appended across all files, framing included.
    pub bytes_written: u64,
    /// Block records appended.
    pub blocks_appended: u64,
    /// Undo records appended.
    pub undo_appended: u64,
    /// Coins-log compactions (generation rewrites).
    pub compact_total: u64,
}

/// Why a store failed to open or load.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The directory holds no usable commit — nothing to reopen.
    Empty,
    /// Data was present but unusable (e.g. committed tip unresolvable).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Empty => write!(f, "store holds no usable commit"),
            StoreError::Corrupt(why) => write!(f, "store corrupt: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What [`ChainStore::open`] recovered from disk, for the chain to
/// rebuild its in-memory state from.
pub struct LoadedChain {
    /// Every committed block, in append (= first-connect) order. Parents
    /// always precede children; stale branch blocks are included.
    pub blocks: Vec<Block>,
    /// Undo data per stored block.
    pub undo: HashMap<BlockHash, UndoData>,
    /// The committed tip.
    pub tip: BlockHash,
    /// The committed tip height.
    pub height: u64,
    /// The last durable coins snapshot: the tip/height it was flushed
    /// at and the live entries. `None` means the coins data was missing
    /// or corrupt and the chain must reindex from the block file.
    pub coins: Option<(BlockHash, u64, HashMap<OutPoint, UtxoEntry>)>,
}

/// A chain's persistent backing: one directory of record-framed files
/// (see module docs). Holds paths, never open descriptors.
#[derive(Debug, Clone)]
pub struct ChainStore {
    dir: PathBuf,
    cfg: StoreConfig,
    blocks_len: u64,
    undo_len: u64,
    coins_gen: u32,
    coins_len: u64,
    coins_live_bytes: u64,
    coins_index: HashMap<OutPoint, (u64, u32)>,
    stored_blocks: HashSet<BlockHash>,
    stored_undo: HashSet<BlockHash>,
    connects_since_flush: u64,
    stats: StoreStats,
}

impl ChainStore {
    /// Creates a fresh store in `dir`, wiping any previous contents of
    /// the directory's store files.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory.
    pub fn create(dir: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for name in ["blocks.dat", "undo.dat", "manifest.log"] {
            let _ = std::fs::remove_file(dir.join(name));
        }
        remove_coins_logs(&dir, None);
        Ok(ChainStore {
            dir,
            cfg,
            blocks_len: 0,
            undo_len: 0,
            coins_gen: 0,
            coins_len: 0,
            coins_live_bytes: 0,
            coins_index: HashMap::new(),
            stored_blocks: HashSet::new(),
            stored_undo: HashSet::new(),
            connects_since_flush: 0,
            stats: StoreStats::default(),
        })
    }

    /// Reopens an existing store, recovering the last durable commit
    /// (see module docs for the truncate-back discipline).
    ///
    /// # Errors
    ///
    /// [`StoreError::Empty`] if no commit survives, [`StoreError::Corrupt`]
    /// if a commit names a tip the block data cannot resolve, or
    /// [`StoreError::Io`] on filesystem failure.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: StoreConfig,
    ) -> Result<(Self, LoadedChain), StoreError> {
        let dir = dir.into();
        let (manifest, manifest_valid) = files::read_valid_prefix(&dir.join("manifest.log"))?;
        let (block_records, blocks_valid) = files::read_valid_prefix(&dir.join("blocks.dat"))?;
        let (undo_records, undo_valid) = files::read_valid_prefix(&dir.join("undo.dat"))?;

        // Decode blocks/undo up front, tracking the byte length each
        // record prefix ends at so a commit can be checked against it.
        let mut blocks = Vec::new();
        let mut block_ends = Vec::new();
        let mut pos = 0u64;
        for rec in &block_records {
            pos += files::RECORD_HEADER + rec.payload.len() as u64;
            if rec.kind != KIND_BLOCK {
                break;
            }
            let mut r = Reader::new(&rec.payload);
            let Ok(block) = decode_block(&mut r) else {
                break;
            };
            if r.finish().is_err() {
                break;
            }
            blocks.push(block);
            block_ends.push(pos);
        }
        let mut undo_list = Vec::new();
        let mut undo_ends = Vec::new();
        pos = 0;
        for rec in &undo_records {
            pos += files::RECORD_HEADER + rec.payload.len() as u64;
            if rec.kind != KIND_UNDO {
                break;
            }
            let mut r = Reader::new(&rec.payload);
            let Ok(hash) = r.array32() else { break };
            let Ok(data) = decode_undo(&mut r) else { break };
            if r.finish().is_err() {
                break;
            }
            undo_list.push((BlockHash(hash), data));
            undo_ends.push(pos);
        }

        // Last commit whose named lengths are fully covered by valid,
        // decodable data.
        let mut commit = None;
        for rec in manifest.iter().rev() {
            if rec.kind != KIND_COMMIT {
                continue;
            }
            let mut r = Reader::new(&rec.payload);
            let (Ok(tip), Ok(height), Ok(blocks_len), Ok(undo_len)) =
                (r.array32(), r.u64(), r.u64(), r.u64())
            else {
                continue;
            };
            let blocks_ok = blocks_len == 0 || block_ends.contains(&blocks_len);
            let undo_ok = undo_len == 0 || undo_ends.contains(&undo_len);
            if blocks_ok && undo_ok && blocks_len <= blocks_valid && undo_len <= undo_valid {
                commit = Some((BlockHash(tip), height, blocks_len, undo_len));
                break;
            }
        }
        let Some((tip, height, blocks_len, undo_len)) = commit else {
            return Err(StoreError::Empty);
        };

        // Discard everything past the commit point.
        files::truncate(&dir.join("blocks.dat"), blocks_len)?;
        files::truncate(&dir.join("undo.dat"), undo_len)?;
        files::truncate(&dir.join("manifest.log"), manifest_valid)?;
        let committed_blocks = block_ends.iter().filter(|&&e| e <= blocks_len).count();
        blocks.truncate(committed_blocks);
        let committed_undo = undo_ends.iter().filter(|&&e| e <= undo_len).count();
        let committed_hashes: HashSet<BlockHash> = blocks.iter().map(|b| b.hash()).collect();
        if !committed_hashes.contains(&tip) {
            return Err(StoreError::Corrupt(format!(
                "committed tip {tip} not in block file"
            )));
        }
        // Only undo records the commit covers are meaningful; drop the
        // truncated tail and anything for a block we no longer hold.
        undo_list.truncate(committed_undo);
        let mut undo: HashMap<BlockHash, UndoData> = undo_list
            .into_iter()
            .filter(|(h, _)| committed_hashes.contains(h))
            .collect();

        // Best coins mark whose generation file covers its length and
        // whose tip is a committed block.
        let mut coins = None;
        let mut coins_gen = 0u32;
        let mut coins_len = 0u64;
        for rec in manifest.iter().rev() {
            if rec.kind != KIND_COINS_MARK {
                continue;
            }
            let mut r = Reader::new(&rec.payload);
            let (Ok(gen), Ok(len), Ok(mark_tip), Ok(mark_height)) =
                (r.u32(), r.u64(), r.array32(), r.u64())
            else {
                continue;
            };
            let mark_tip = BlockHash(mark_tip);
            if !committed_hashes.contains(&mark_tip) {
                continue;
            }
            let path = coins_path(&dir, gen);
            let Ok((records, valid)) = files::read_valid_prefix(&path) else {
                continue;
            };
            if len > valid {
                continue;
            }
            if let Some((entries, index, live_bytes)) = replay_coins(&records, len) {
                files::truncate(&path, len)?;
                coins = Some((mark_tip, mark_height, entries, index, live_bytes));
                coins_gen = gen;
                coins_len = len;
                break;
            }
        }
        remove_coins_logs(&dir, coins.as_ref().map(|_| coins_gen));

        let (loaded_coins, coins_index, coins_live_bytes) = match coins {
            Some((t, h, entries, index, live)) => (Some((t, h, entries)), index, live),
            None => (None, HashMap::new(), 0),
        };

        // Undo map the chain gets; the store keeps the hash set.
        let stored_undo: HashSet<BlockHash> = undo.keys().copied().collect();
        let loaded = LoadedChain {
            blocks: blocks.clone(),
            undo: std::mem::take(&mut undo),
            tip,
            height,
            coins: loaded_coins,
        };
        let store = ChainStore {
            dir,
            cfg,
            blocks_len,
            undo_len,
            coins_gen,
            coins_len,
            coins_live_bytes,
            coins_index,
            stored_blocks: committed_hashes,
            stored_undo,
            connects_since_flush: 0,
            stats: StoreStats::default(),
        };
        Ok((store, loaded))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Appends a block record (idempotent per hash).
    pub(crate) fn append_block(&mut self, block: &Block) -> io::Result<()> {
        let hash = block.hash();
        if self.stored_blocks.contains(&hash) {
            return Ok(());
        }
        let mut framed = Vec::new();
        files::frame(&mut framed, KIND_BLOCK, &encode_block(block));
        self.blocks_len = files::append(&self.dir.join("blocks.dat"), &framed, false)?;
        self.stats.bytes_written += framed.len() as u64;
        self.stats.blocks_appended += 1;
        self.stored_blocks.insert(hash);
        Ok(())
    }

    /// Appends a block's undo record (idempotent per hash).
    pub(crate) fn append_undo(&mut self, hash: BlockHash, undo: &UndoData) -> io::Result<()> {
        if self.stored_undo.contains(&hash) {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(32 + 4);
        payload.extend_from_slice(&hash.0);
        payload.extend_from_slice(&encode_undo(undo));
        let mut framed = Vec::new();
        files::frame(&mut framed, KIND_UNDO, &payload);
        self.undo_len = files::append(&self.dir.join("undo.dat"), &framed, false)?;
        self.stats.bytes_written += framed.len() as u64;
        self.stats.undo_appended += 1;
        self.stored_undo.insert(hash);
        Ok(())
    }

    /// Commits the current file lengths under `tip`/`height`: after this
    /// record is durable, reopen recovers exactly this state.
    pub(crate) fn commit(&mut self, tip: BlockHash, height: u64) -> io::Result<()> {
        let mut payload = Vec::with_capacity(32 + 24);
        payload.extend_from_slice(&tip.0);
        payload.extend_from_slice(&height.to_le_bytes());
        payload.extend_from_slice(&self.blocks_len.to_le_bytes());
        payload.extend_from_slice(&self.undo_len.to_le_bytes());
        let mut framed = Vec::new();
        files::frame(&mut framed, KIND_COMMIT, &payload);
        files::append(&self.dir.join("manifest.log"), &framed, self.cfg.fsync)?;
        self.stats.bytes_written += framed.len() as u64;
        self.connects_since_flush += 1;
        Ok(())
    }

    /// Whether enough blocks have connected since the last coins flush
    /// for the interval policy to trigger another.
    pub(crate) fn flush_due(&self) -> bool {
        self.connects_since_flush >= self.cfg.coins_flush_interval
    }

    /// Applies a drained dirty set to the coins log and marks it with an
    /// `F` record; compacts the log first when it has bloated.
    pub(crate) fn flush_coins(
        &mut self,
        ops: &[FlushOp],
        tip: BlockHash,
        height: u64,
    ) -> io::Result<()> {
        self.maybe_compact()?;
        let mut framed = Vec::new();
        for op in ops {
            // Where this record's payload will land in the log: current
            // file length + what the batch holds so far + the frame.
            let before = framed.len() as u64;
            match op {
                FlushOp::Put(outpoint, entry) => {
                    let mut payload = Vec::with_capacity(70);
                    encode_outpoint(&mut payload, outpoint);
                    encode_utxo_entry(&mut payload, entry);
                    files::frame(&mut framed, KIND_PUT, &payload);
                    let len = payload.len() as u32;
                    let offset = self.coins_len + before + files::RECORD_HEADER;
                    if let Some((_, old)) = self.coins_index.insert(*outpoint, (offset, len)) {
                        self.coins_live_bytes -= old as u64;
                    }
                    self.coins_live_bytes += len as u64;
                }
                FlushOp::Del(outpoint) => {
                    let mut payload = Vec::with_capacity(36);
                    encode_outpoint(&mut payload, outpoint);
                    files::frame(&mut framed, KIND_DEL, &payload);
                    if let Some((_, old)) = self.coins_index.remove(outpoint) {
                        self.coins_live_bytes -= old as u64;
                    }
                }
            }
        }
        let path = coins_path(&self.dir, self.coins_gen);
        self.coins_len = files::append(&path, &framed, self.cfg.fsync)?;
        self.stats.bytes_written += framed.len() as u64;
        self.append_coins_mark(tip, height)?;
        self.stats.flush_total += 1;
        self.connects_since_flush = 0;
        Ok(())
    }

    /// Abandons the coins log entirely (reindex path): starts an empty
    /// new generation so the next flush writes the full rebuilt set.
    pub(crate) fn reset_coins(&mut self) -> io::Result<()> {
        let old = self.coins_gen;
        self.coins_gen += 1;
        self.coins_len = 0;
        self.coins_live_bytes = 0;
        self.coins_index.clear();
        let _ = std::fs::remove_file(coins_path(&self.dir, old));
        self.stats.reindex_total += 1;
        Ok(())
    }

    /// Random-access read of a single coin for a cache miss.
    pub(crate) fn read_coin(&self, op: &OutPoint) -> Option<UtxoEntry> {
        let (offset, len) = *self.coins_index.get(op)?;
        let path = coins_path(&self.dir, self.coins_gen);
        let payload = files::read_payload_at(&path, offset, len as usize).ok()?;
        let mut r = Reader::new(&payload);
        let read_back = decode_outpoint(&mut r).ok()?;
        debug_assert_eq!(read_back, *op, "coins index points at the right record");
        decode_utxo_entry(&mut r).ok()
    }

    fn append_coins_mark(&mut self, tip: BlockHash, height: u64) -> io::Result<()> {
        let mut payload = Vec::with_capacity(4 + 8 + 32 + 8);
        payload.extend_from_slice(&self.coins_gen.to_le_bytes());
        payload.extend_from_slice(&self.coins_len.to_le_bytes());
        payload.extend_from_slice(&tip.0);
        payload.extend_from_slice(&height.to_le_bytes());
        let mut framed = Vec::new();
        files::frame(&mut framed, KIND_COINS_MARK, &payload);
        files::append(&self.dir.join("manifest.log"), &framed, self.cfg.fsync)?;
        self.stats.bytes_written += framed.len() as u64;
        Ok(())
    }

    /// Rewrites the coins log into a new generation containing only live
    /// entries, when dead records dominate the file.
    fn maybe_compact(&mut self) -> io::Result<()> {
        let framing = self.coins_index.len() as u64 * files::RECORD_HEADER;
        if self.coins_len < COMPACT_MIN_BYTES
            || self.coins_len < 3 * (self.coins_live_bytes + framing)
        {
            return Ok(());
        }
        let old_path = coins_path(&self.dir, self.coins_gen);
        let (records, _) = files::read_valid_prefix(&old_path)?;
        let Some((entries, _, _)) = replay_coins(&records, self.coins_len) else {
            return Ok(());
        };
        let mut live: Vec<(OutPoint, UtxoEntry)> = entries.into_iter().collect();
        live.sort_unstable_by_key(|(op, _)| *op);
        let mut framed = Vec::new();
        let mut index = HashMap::with_capacity(live.len());
        let mut live_bytes = 0u64;
        for (op, entry) in &live {
            let mut payload = Vec::with_capacity(70);
            encode_outpoint(&mut payload, op);
            encode_utxo_entry(&mut payload, entry);
            let offset = framed.len() as u64 + files::RECORD_HEADER;
            index.insert(*op, (offset, payload.len() as u32));
            live_bytes += payload.len() as u64;
            files::frame(&mut framed, KIND_PUT, &payload);
        }
        let new_gen = self.coins_gen + 1;
        let new_path = coins_path(&self.dir, new_gen);
        let _ = std::fs::remove_file(&new_path);
        let new_len = files::append(&new_path, &framed, self.cfg.fsync)?;
        self.stats.bytes_written += framed.len() as u64;
        self.coins_gen = new_gen;
        self.coins_len = new_len;
        self.coins_live_bytes = live_bytes;
        self.coins_index = index;
        self.stats.compact_total += 1;
        // The mark making the new generation authoritative is appended
        // by the flush that follows; until then reopen uses the old
        // generation, which is only deleted after the mark is written.
        let _ = std::fs::remove_file(&old_path);
        Ok(())
    }
}

fn coins_path(dir: &Path, gen: u32) -> PathBuf {
    dir.join(format!("coins-{gen}.log"))
}

fn remove_coins_logs(dir: &Path, keep: Option<u32>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(gen) = name
            .strip_prefix("coins-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        if Some(gen) != keep {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Replays `P`/`D` records up to `limit` bytes into a live-entry map,
/// also building the random-access index and live-byte total. `None` if
/// a record fails to decode.
#[allow(clippy::type_complexity)]
fn replay_coins(
    records: &[files::Record],
    limit: u64,
) -> Option<(
    HashMap<OutPoint, UtxoEntry>,
    HashMap<OutPoint, (u64, u32)>,
    u64,
)> {
    let mut entries = HashMap::new();
    let mut index = HashMap::new();
    let mut live_bytes = 0u64;
    let mut pos = 0u64;
    for rec in records {
        let payload_offset = pos + files::RECORD_HEADER;
        let end = payload_offset + rec.payload.len() as u64;
        if end > limit {
            break;
        }
        pos = end;
        let mut r = Reader::new(&rec.payload);
        match rec.kind {
            KIND_PUT => {
                let op = decode_outpoint(&mut r).ok()?;
                let entry = decode_utxo_entry(&mut r).ok()?;
                r.finish().ok()?;
                let len = rec.payload.len() as u32;
                if let Some((_, old)) = index.insert(op, (payload_offset, len)) {
                    live_bytes -= old as u64;
                }
                live_bytes += len as u64;
                entries.insert(op, entry);
            }
            KIND_DEL => {
                let op = decode_outpoint(&mut r).ok()?;
                r.finish().ok()?;
                if let Some((_, old)) = index.remove(&op) {
                    live_bytes -= old as u64;
                }
                entries.remove(&op);
            }
            _ => return None,
        }
    }
    Some((entries, index, live_bytes))
}
