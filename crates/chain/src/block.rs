//! Blocks, headers, and proof-of-work.

use crate::merkle::merkle_root;
use crate::tx::Transaction;
use bcwan_crypto::sha256d;
use std::fmt;

/// A block hash (double-SHA256 of the serialized header).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockHash(pub [u8; 32]);

impl BlockHash {
    /// The all-zero hash that the genesis block's header points at.
    pub const GENESIS_PREV: BlockHash = BlockHash([0; 32]);

    /// Number of leading zero bits — the proof-of-work measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0;
        for &b in &self.0 {
            if b == 0 {
                bits += 8;
            } else {
                bits += b.leading_zeros();
                break;
            }
        }
        bits
    }

    /// Full lowercase hex.
    pub fn to_hex(&self) -> String {
        bcwan_crypto::hex::encode(&self.0)
    }
}

impl fmt::Debug for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockHash({self})")
    }
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.to_hex();
        write!(f, "{}…{}", &hex[..8], &hex[56..])
    }
}

/// A block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Format version.
    pub version: u32,
    /// Hash of the previous block.
    pub prev_hash: BlockHash,
    /// Merkle root over the block's transaction ids.
    pub merkle_root: [u8; 32],
    /// Simulation timestamp (microseconds) when the block was mined.
    pub time_us: u64,
    /// Required leading-zero bits (difficulty target, compact form).
    pub bits: u32,
    /// Proof-of-work nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// Serializes the header for hashing.
    pub fn serialize(&self) -> [u8; 88] {
        let mut out = [0u8; 88];
        out[0..4].copy_from_slice(&self.version.to_le_bytes());
        out[4..36].copy_from_slice(&self.prev_hash.0);
        out[36..68].copy_from_slice(&self.merkle_root);
        out[68..76].copy_from_slice(&self.time_us.to_le_bytes());
        out[76..80].copy_from_slice(&self.bits.to_le_bytes());
        out[80..88].copy_from_slice(&self.nonce.to_le_bytes());
        out
    }

    /// The header (block) hash.
    pub fn hash(&self) -> BlockHash {
        BlockHash(sha256d(&self.serialize()))
    }

    /// Whether the hash meets this header's own difficulty claim.
    pub fn meets_target(&self) -> bool {
        self.hash().leading_zero_bits() >= self.bits
    }
}

/// A block: header plus ordered transactions (first must be coinbase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The transactions.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Assembles a block and solves its proof of work by nonce search.
    ///
    /// With the small difficulties of a Multichain-like permissioned chain
    /// this takes microseconds; the *block schedule* comes from the
    /// simulator, not from hash grinding (see `bcwan-p2p`'s miner driver).
    pub fn mine(
        prev_hash: BlockHash,
        time_us: u64,
        bits: u32,
        transactions: Vec<Transaction>,
    ) -> Block {
        let txids: Vec<_> = transactions.iter().map(|t| t.txid()).collect();
        let mut header = BlockHeader {
            version: 1,
            prev_hash,
            merkle_root: merkle_root(&txids),
            time_us,
            bits,
            nonce: 0,
        };
        while !header.meets_target() {
            header.nonce += 1;
        }
        Block {
            header,
            transactions,
        }
    }

    /// The block hash.
    pub fn hash(&self) -> BlockHash {
        self.header.hash()
    }

    /// Serialized size in bytes (header + transactions).
    pub fn size(&self) -> usize {
        88 + self
            .transactions
            .iter()
            .map(Transaction::size)
            .sum::<usize>()
    }

    /// Recomputes the merkle root from the transactions and compares with
    /// the header.
    pub fn merkle_root_valid(&self) -> bool {
        let txids: Vec<_> = self.transactions.iter().map(|t| t.txid()).collect();
        merkle_root(&txids) == self.header.merkle_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxOut;
    use bcwan_script::Script;

    fn coinbase(height: u64) -> Transaction {
        Transaction::coinbase(
            height,
            b"test",
            vec![TxOut {
                value: 50_000,
                script_pubkey: Script::new(),
            }],
        )
    }

    #[test]
    fn mine_finds_valid_pow() {
        let block = Block::mine(BlockHash::GENESIS_PREV, 0, 8, vec![coinbase(0)]);
        assert!(block.header.meets_target());
        assert!(block.hash().leading_zero_bits() >= 8);
        assert!(block.merkle_root_valid());
    }

    #[test]
    fn hash_changes_with_nonce() {
        let block = Block::mine(BlockHash::GENESIS_PREV, 0, 4, vec![coinbase(0)]);
        let mut header2 = block.header.clone();
        header2.nonce += 1;
        assert_ne!(block.hash(), header2.hash());
    }

    #[test]
    fn leading_zero_bits_math() {
        assert_eq!(BlockHash([0xff; 32]).leading_zero_bits(), 0);
        assert_eq!(BlockHash([0; 32]).leading_zero_bits(), 256);
        let mut h = [0u8; 32];
        h[0] = 0x0f;
        assert_eq!(BlockHash(h).leading_zero_bits(), 4);
        let mut h2 = [0u8; 32];
        h2[1] = 0x80;
        assert_eq!(BlockHash(h2).leading_zero_bits(), 8);
    }

    #[test]
    fn merkle_root_detects_tx_swap() {
        let mut block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            4,
            vec![coinbase(0), coinbase(1)],
        );
        assert!(block.merkle_root_valid());
        block.transactions.swap(0, 1);
        assert!(!block.merkle_root_valid());
    }

    #[test]
    fn size_accounts_header_and_txs() {
        let block = Block::mine(BlockHash::GENESIS_PREV, 0, 4, vec![coinbase(0)]);
        assert_eq!(block.size(), 88 + block.transactions[0].size());
    }

    #[test]
    fn display_forms() {
        let h = BlockHash([0xab; 32]);
        assert!(h.to_string().contains('…'));
        assert_eq!(h.to_hex().len(), 64);
    }
}
