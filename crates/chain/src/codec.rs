//! Canonical binary decoding for chain types.
//!
//! [`Transaction::serialize`] and [`BlockHeader::serialize`] define the
//! chain's canonical byte layouts; this module is their inverse, shared
//! by every consumer that needs to read those bytes back — the overlay
//! wire codec in `bcwan::wire` and the persistent store in
//! [`crate::store`]. Keeping one decoder means a transaction that
//! round-trips through a block file or a TCP frame re-hashes to the
//! same txid it had when it was serialized.
//!
//! Decoding is total: any byte slice either yields a value or a
//! [`CodecError`] — never a panic, and never an allocation larger than
//! the input it was handed (counts are not trusted; every element read
//! is bounds-checked first).

use crate::block::{Block, BlockHash, BlockHeader};
use crate::tx::{OutPoint, Transaction, TxId, TxIn, TxOut};
use crate::utxo::{UndoData, UtxoEntry};
use bcwan_script::Script;
use std::fmt;

/// Why bytes did not decode into a chain value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated,
    /// Bytes were left over after a complete value.
    TrailingBytes(usize),
    /// An embedded script failed to parse.
    BadScript(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::BadScript(why) => write!(f, "embedded script invalid: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked cursor over the input. Every `take` verifies length
/// before touching (or allocating for) the bytes, so hostile length
/// prefixes cannot trigger oversized allocations.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// The next `n` bytes, advancing the cursor.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// One byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// A little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A raw 32-byte array (hashes).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 32 bytes remain.
    pub fn array32(&mut self) -> Result<[u8; 32], CodecError> {
        Ok(self.take(32)?.try_into().expect("32 bytes"))
    }

    /// A `u32`-length-prefixed byte vector.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix overruns the input.
    pub fn vec(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// A `u32`-length-prefixed script.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on overrun, [`CodecError::BadScript`]
    /// if the bytes are not a valid script.
    pub fn script(&mut self) -> Result<Script, CodecError> {
        let bytes = self.vec()?;
        Script::from_bytes(&bytes).map_err(|e| CodecError::BadScript(e.to_string()))
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if anything remains.
    pub fn finish(&self) -> Result<(), CodecError> {
        match self.bytes.len() - self.pos {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }
}

/// Appends a `u32`-length-prefixed byte slice.
pub fn push_vec(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Reads back [`Transaction::serialize`]'s layout, field by field.
///
/// # Errors
///
/// A [`CodecError`] for truncated or malformed input.
pub fn decode_transaction(r: &mut Reader<'_>) -> Result<Transaction, CodecError> {
    let version = r.u32()?;
    let input_count = r.u32()?;
    let mut inputs = Vec::new();
    for _ in 0..input_count {
        inputs.push(TxIn {
            prevout: decode_outpoint(r)?,
            script_sig: r.script()?,
            sequence: r.u32()?,
        });
    }
    let output_count = r.u32()?;
    let mut outputs = Vec::new();
    for _ in 0..output_count {
        outputs.push(decode_txout(r)?);
    }
    let lock_time = r.u64()?;
    Ok(Transaction {
        version,
        inputs,
        outputs,
        lock_time,
    })
}

/// Reads back an 88-byte [`BlockHeader::serialize`] record.
///
/// # Errors
///
/// [`CodecError::Truncated`] if fewer than 88 bytes remain.
pub fn decode_header(r: &mut Reader<'_>) -> Result<BlockHeader, CodecError> {
    let header_bytes = r.take(88)?;
    Ok(BlockHeader {
        version: u32::from_le_bytes(header_bytes[0..4].try_into().expect("4 bytes")),
        prev_hash: BlockHash(header_bytes[4..36].try_into().expect("32 bytes")),
        merkle_root: header_bytes[36..68].try_into().expect("32 bytes"),
        time_us: u64::from_le_bytes(header_bytes[68..76].try_into().expect("8 bytes")),
        bits: u32::from_le_bytes(header_bytes[76..80].try_into().expect("4 bytes")),
        nonce: u64::from_le_bytes(header_bytes[80..88].try_into().expect("8 bytes")),
    })
}

/// Reads a whole block: 88-byte header, `u32` transaction count, then
/// each transaction in [`Transaction::serialize`] layout.
///
/// # Errors
///
/// A [`CodecError`] for truncated or malformed input.
pub fn decode_block(r: &mut Reader<'_>) -> Result<Block, CodecError> {
    let header = decode_header(r)?;
    let tx_count = r.u32()?;
    let mut transactions = Vec::new();
    for _ in 0..tx_count {
        transactions.push(decode_transaction(r)?);
    }
    Ok(Block {
        header,
        transactions,
    })
}

/// Serializes a block in the layout [`decode_block`] reads back.
pub fn encode_block(block: &Block) -> Vec<u8> {
    let mut out = Vec::with_capacity(block.size());
    out.extend_from_slice(&block.header.serialize());
    out.extend_from_slice(&(block.transactions.len() as u32).to_le_bytes());
    for tx in &block.transactions {
        out.extend_from_slice(&tx.serialize());
    }
    out
}

/// Appends an outpoint: 32-byte txid, then `u32` vout.
pub fn encode_outpoint(out: &mut Vec<u8>, op: &OutPoint) {
    out.extend_from_slice(&op.txid.0);
    out.extend_from_slice(&op.vout.to_le_bytes());
}

/// Reads back [`encode_outpoint`]'s layout.
///
/// # Errors
///
/// [`CodecError::Truncated`] if fewer than 36 bytes remain.
pub fn decode_outpoint(r: &mut Reader<'_>) -> Result<OutPoint, CodecError> {
    Ok(OutPoint {
        txid: TxId(r.array32()?),
        vout: r.u32()?,
    })
}

fn decode_txout(r: &mut Reader<'_>) -> Result<TxOut, CodecError> {
    Ok(TxOut {
        value: r.u64()?,
        script_pubkey: r.script()?,
    })
}

/// Appends a UTXO entry: `u64` value, `u32`-prefixed script, `u64`
/// creation height, one coinbase flag byte.
pub fn encode_utxo_entry(out: &mut Vec<u8>, entry: &UtxoEntry) {
    out.extend_from_slice(&entry.output.value.to_le_bytes());
    push_vec(out, &entry.output.script_pubkey.to_bytes());
    out.extend_from_slice(&entry.height.to_le_bytes());
    out.push(entry.coinbase as u8);
}

/// Reads back [`encode_utxo_entry`]'s layout.
///
/// # Errors
///
/// A [`CodecError`] for truncated or malformed input.
pub fn decode_utxo_entry(r: &mut Reader<'_>) -> Result<UtxoEntry, CodecError> {
    let output = decode_txout(r)?;
    let height = r.u64()?;
    let coinbase = r.u8()? != 0;
    Ok(UtxoEntry {
        output,
        height,
        coinbase,
    })
}

/// Serializes a block's undo data: `u32` spent-entry count, then per
/// entry an outpoint followed by the [`UtxoEntry`] it restores.
pub fn encode_undo(undo: &UndoData) -> Vec<u8> {
    let spent = undo.spent_entries();
    let mut out = Vec::with_capacity(4 + spent.len() * 64);
    out.extend_from_slice(&(spent.len() as u32).to_le_bytes());
    for (op, entry) in spent {
        encode_outpoint(&mut out, op);
        encode_utxo_entry(&mut out, entry);
    }
    out
}

/// Reads back [`encode_undo`]'s layout.
///
/// # Errors
///
/// A [`CodecError`] for truncated or malformed input.
pub fn decode_undo(r: &mut Reader<'_>) -> Result<UndoData, CodecError> {
    let count = r.u32()?;
    let mut spent = Vec::new();
    for _ in 0..count {
        let op = decode_outpoint(r)?;
        let entry = decode_utxo_entry(r)?;
        spent.push((op, entry));
    }
    Ok(UndoData::from_spent(spent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ChainParams;
    use crate::wallet::Wallet;
    use crate::Chain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_block() -> Block {
        let params = ChainParams::fast_test();
        let mut rng = StdRng::seed_from_u64(3);
        let wallet = Wallet::generate(&mut rng);
        Chain::make_genesis(&params, &[(wallet.address(), 25)])
    }

    #[test]
    fn block_round_trips_with_txids() {
        let block = sample_block();
        let bytes = encode_block(&block);
        let mut r = Reader::new(&bytes);
        let decoded = decode_block(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.hash(), block.hash());
        assert_eq!(decoded.transactions[0].txid(), block.transactions[0].txid());
    }

    #[test]
    fn undo_round_trips() {
        let block = sample_block();
        let entry = UtxoEntry {
            output: block.transactions[0].outputs[0].clone(),
            height: 7,
            coinbase: true,
        };
        let op = OutPoint {
            txid: block.transactions[0].txid(),
            vout: 0,
        };
        let undo = UndoData::from_spent(vec![(op, entry)]);
        let bytes = encode_undo(&undo);
        let mut r = Reader::new(&bytes);
        let decoded = decode_undo(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.spent_entries(), undo.spent_entries());
    }

    #[test]
    fn truncation_at_every_cut_errors_cleanly() {
        let block = sample_block();
        let bytes = encode_block(&block);
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                decode_block(&mut r).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
