//! Transaction and block validation rules, plus the validation fast path:
//! a shared signature cache and parallel per-block script verification.

use crate::block::Block;
use crate::params::ChainParams;
use crate::tx::Transaction;
use crate::utxo::{UtxoEntry, UtxoSet, UtxoView};
use bcwan_crypto::ecdsa::{batch_verify, EcdsaPublicKey, Signature};
use bcwan_crypto::sha256;
use bcwan_script::interpreter::{verify_spend, DeferringChecker, DigestChecker, ExecContext};
use bcwan_script::{Opcode, Script, ScriptError};
use bcwan_sim::metrics::Registry;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Why a transaction was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// No inputs or no outputs.
    Empty,
    /// Unexpected coinbase outside a block context.
    UnexpectedCoinbase,
    /// An input's referenced output is unknown or spent.
    MissingInput(crate::tx::OutPoint),
    /// The same output is spent twice within the transaction.
    DuplicateInput(crate::tx::OutPoint),
    /// Outputs exceed inputs.
    ValueOutOfRange {
        /// Sum of spent input values.
        input: u64,
        /// Sum of created output values.
        output: u64,
    },
    /// A coinbase output was spent before maturity.
    ImmatureCoinbase {
        /// Height the coinbase was created at.
        created: u64,
        /// Height of the attempted spend.
        spend: u64,
    },
    /// The transaction's lock time has not yet been reached.
    NotFinal {
        /// Transaction lock time.
        lock_time: u64,
        /// Current chain height.
        height: u64,
    },
    /// Script execution failed or evaluated false.
    ScriptFailed {
        /// The failing input index.
        input: usize,
        /// The underlying script error (`None` = clean false).
        error: Option<ScriptError>,
    },
    /// An OP_RETURN output carries a non-zero value (burns are banned to
    /// keep directory announcements free of accounting surprises).
    ValueInOpReturn,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Empty => write!(f, "transaction has no inputs or outputs"),
            TxError::UnexpectedCoinbase => write!(f, "coinbase not allowed here"),
            TxError::MissingInput(op) => write!(f, "missing input {op}"),
            TxError::DuplicateInput(op) => write!(f, "duplicate input {op}"),
            TxError::ValueOutOfRange { input, output } => {
                write!(f, "outputs {output} exceed inputs {input}")
            }
            TxError::ImmatureCoinbase { created, spend } => {
                write!(f, "coinbase from height {created} spent at {spend}")
            }
            TxError::NotFinal { lock_time, height } => {
                write!(f, "lock time {lock_time} not reached at height {height}")
            }
            TxError::ScriptFailed { input, error } => match error {
                Some(e) => write!(f, "script failed on input {input}: {e}"),
                None => write!(f, "script evaluated false on input {input}"),
            },
            TxError::ValueInOpReturn => write!(f, "op_return output carries value"),
        }
    }
}

impl std::error::Error for TxError {}

/// Why a block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Block has no transactions.
    Empty,
    /// First transaction is not a coinbase, or a later one is.
    BadCoinbasePlacement,
    /// Header does not meet the required difficulty.
    InsufficientWork {
        /// Bits achieved by the header hash.
        achieved: u32,
        /// Bits required by consensus.
        required: u32,
    },
    /// Header difficulty field does not match consensus parameters.
    WrongBits {
        /// Bits claimed in the header.
        claimed: u32,
        /// Bits required by consensus.
        required: u32,
    },
    /// Merkle root mismatch.
    BadMerkleRoot,
    /// Serialized size exceeds the consensus limit.
    TooLarge {
        /// Serialized block size.
        size: usize,
        /// Consensus limit.
        limit: usize,
    },
    /// Coinbase pays more than subsidy + fees.
    ExcessiveCoinbase {
        /// Coinbase output total.
        paid: u64,
        /// Subsidy plus collected fees.
        allowed: u64,
    },
    /// A transaction in the block is invalid.
    BadTransaction {
        /// Index within the block.
        index: usize,
        /// The underlying error.
        error: TxError,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Empty => write!(f, "block has no transactions"),
            BlockError::BadCoinbasePlacement => write!(f, "bad coinbase placement"),
            BlockError::InsufficientWork { achieved, required } => {
                write!(f, "pow {achieved} bits, need {required}")
            }
            BlockError::WrongBits { claimed, required } => {
                write!(
                    f,
                    "header claims {claimed} bits, consensus requires {required}"
                )
            }
            BlockError::BadMerkleRoot => write!(f, "merkle root mismatch"),
            BlockError::TooLarge { size, limit } => {
                write!(f, "block of {size} bytes exceeds {limit}")
            }
            BlockError::ExcessiveCoinbase { paid, allowed } => {
                write!(f, "coinbase pays {paid}, allowed {allowed}")
            }
            BlockError::BadTransaction { index, error } => {
                write!(f, "transaction {index} invalid: {error}")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// Above this input count the duplicate-input check switches from a linear
/// scan over prior inputs (no allocation) to a `HashSet`.
const DUP_LINEAR_MAX: usize = 32;

/// Which verifier dominates a spend, for [`SigCache`] accounting.
///
/// The cache itself is agnostic — a key is a key — but hits and misses are
/// counted per kind so the escrow paths are observable on their own
/// (`validate.sigcache.rsa.*` vs the ECDSA `validate.sigcache.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigKind {
    /// Ordinary ECDSA spends (P2PKH-style `OP_CHECKSIGVERIFY`).
    Ecdsa,
    /// Escrow spends whose locking script runs `OP_CHECKRSA512PAIR`
    /// (the paper's session-key reveal / CLTV refund branches).
    Rsa,
}

impl SigKind {
    /// Classifies a spend by its locking script: anything carrying the
    /// RSA pair-check opcode counts as an escrow verification.
    pub fn of(script_pubkey: &Script) -> Self {
        if script_pubkey.contains_op(Opcode::CheckRsa512Pair) {
            SigKind::Rsa
        } else {
            SigKind::Ecdsa
        }
    }
}

/// A shared cache of script verifications that already succeeded.
///
/// Keyed on `sha256(sighash digest || script_sig || script_pubkey)` — the
/// full evaluation context of [`verify_spend`] minus the lock-time fields,
/// which are re-checked structurally on every validation — so a hit is safe
/// to treat as "this exact spend already verified". Mempool admission
/// populates it; `connect_block` then skips re-verifying the same spends.
///
/// Eviction is two-generation (as in Bitcoin Core's sigcache): when the
/// current generation fills half the capacity it becomes the previous
/// generation and a fresh one starts, so memory is bounded and recently
/// verified entries survive at least one rotation. Only *successful*
/// verifications are stored; failures always re-run.
#[derive(Debug)]
pub struct SigCache {
    inner: Mutex<SigCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    rsa_hits: AtomicU64,
    rsa_misses: AtomicU64,
}

#[derive(Debug)]
struct SigCacheInner {
    current: HashSet<[u8; 32]>,
    previous: HashSet<[u8; 32]>,
    /// Generation size: half the nominal capacity.
    half: usize,
}

impl SigCache {
    /// Default nominal capacity (entries across both generations).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a cache holding roughly `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SigCache {
            inner: Mutex::new(SigCacheInner {
                current: HashSet::new(),
                previous: HashSet::new(),
                half: (capacity / 2).max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rsa_hits: AtomicU64::new(0),
            rsa_misses: AtomicU64::new(0),
        }
    }

    /// The cache key for one spend: `sha256` over the sighash digest and
    /// both scripts (length-prefixed, so boundaries can't be confused).
    pub fn key(digest: &[u8; 32], script_sig: &Script, script_pubkey: &Script) -> [u8; 32] {
        let sig = script_sig.to_bytes();
        let pk = script_pubkey.to_bytes();
        let mut buf = Vec::with_capacity(32 + 16 + sig.len() + pk.len());
        buf.extend_from_slice(digest);
        buf.extend_from_slice(&(sig.len() as u64).to_le_bytes());
        buf.extend_from_slice(&sig);
        buf.extend_from_slice(&(pk.len() as u64).to_le_bytes());
        buf.extend_from_slice(&pk);
        sha256(&buf)
    }

    /// Whether this spend already verified successfully, counted against
    /// the counters for `kind`; a previous-generation hit is promoted to
    /// the current one.
    pub fn contains(&self, key: &[u8; 32], kind: SigKind) -> bool {
        let mut inner = self.lock();
        let found = if inner.current.contains(key) {
            true
        } else if inner.previous.contains(key) {
            Self::insert_locked(&mut inner, *key);
            true
        } else {
            false
        };
        drop(inner);
        let counter = match (kind, found) {
            (SigKind::Ecdsa, true) => &self.hits,
            (SigKind::Ecdsa, false) => &self.misses,
            (SigKind::Rsa, true) => &self.rsa_hits,
            (SigKind::Rsa, false) => &self.rsa_misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Records a successful verification.
    pub fn insert(&self, key: [u8; 32]) {
        Self::insert_locked(&mut self.lock(), key);
    }

    fn insert_locked(inner: &mut SigCacheInner, key: [u8; 32]) {
        if inner.current.len() >= inner.half {
            inner.previous = std::mem::take(&mut inner.current);
        }
        inner.current.insert(key);
    }

    fn lock(&self) -> MutexGuard<'_, SigCacheInner> {
        // A panicking verifier thread can't leave the set inconsistent
        // (inserts are single HashSet ops), so poisoning is ignorable.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// ECDSA-classified lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// ECDSA-classified lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `OP_CHECKRSA512PAIR`-classified lookup hits so far.
    pub fn rsa_hits(&self) -> u64 {
        self.rsa_hits.load(Ordering::Relaxed)
    }

    /// `OP_CHECKRSA512PAIR`-classified lookup misses so far.
    pub fn rsa_misses(&self) -> u64 {
        self.rsa_misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached (both generations).
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.current.len() + inner.previous.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports `validate.sigcache.hit|miss` (ECDSA spends) and
    /// `validate.sigcache.rsa.hit|miss` (escrow pair-check spends) into a
    /// metrics registry.
    pub fn export(&self, registry: &mut Registry) {
        registry.set_counter("validate.sigcache.hit", self.hits());
        registry.set_counter("validate.sigcache.miss", self.misses());
        registry.set_counter("validate.sigcache.rsa.hit", self.rsa_hits());
        registry.set_counter("validate.sigcache.rsa.miss", self.rsa_misses());
    }
}

impl Default for SigCache {
    fn default() -> Self {
        SigCache::new(Self::DEFAULT_CAPACITY)
    }
}

/// The structural (pre-script) half of transaction validation: structure,
/// finality, duplicate inputs, input existence, coinbase maturity and value
/// balance. Returns the fee plus one borrowed UTXO entry per input (in
/// input order) so script verification never re-queries the view.
fn validate_transaction_structure<'a, V: UtxoView>(
    tx: &Transaction,
    utxo: &'a V,
    height: u64,
    params: &ChainParams,
) -> Result<(u64, Vec<&'a UtxoEntry>), TxError> {
    if tx.inputs.is_empty() || tx.outputs.is_empty() {
        return Err(TxError::Empty);
    }
    if tx.is_coinbase() {
        return Err(TxError::UnexpectedCoinbase);
    }
    if !tx.is_final_at(height) {
        return Err(TxError::NotFinal {
            lock_time: tx.lock_time,
            height,
        });
    }
    for output in &tx.outputs {
        if output.script_pubkey.is_op_return() && output.value != 0 {
            return Err(TxError::ValueInOpReturn);
        }
    }

    // Duplicate detection: typical transactions have a handful of inputs,
    // where a linear scan beats allocating and hashing into a set.
    let mut seen =
        (tx.inputs.len() > DUP_LINEAR_MAX).then(|| HashSet::with_capacity(tx.inputs.len()));
    let mut entries = Vec::with_capacity(tx.inputs.len());
    let mut input_value: u64 = 0;
    for (i, input) in tx.inputs.iter().enumerate() {
        let duplicate = match &mut seen {
            Some(set) => !set.insert(input.prevout),
            None => tx.inputs[..i].iter().any(|p| p.prevout == input.prevout),
        };
        if duplicate {
            return Err(TxError::DuplicateInput(input.prevout));
        }
        let entry = utxo
            .view_get(&input.prevout)
            .ok_or(TxError::MissingInput(input.prevout))?;
        if entry.coinbase && height < entry.height + params.coinbase_maturity {
            return Err(TxError::ImmatureCoinbase {
                created: entry.height,
                spend: height,
            });
        }
        input_value += entry.output.value;
        entries.push(entry);
    }
    let output_value = tx.total_output();
    if output_value > input_value {
        return Err(TxError::ValueOutOfRange {
            input: input_value,
            output: output_value,
        });
    }
    Ok((input_value - output_value, entries))
}

/// Runs one spend's script, consulting and populating `cache`.
fn verify_script_with_cache(
    digest: &[u8; 32],
    script_sig: &Script,
    script_pubkey: &Script,
    lock_time: u64,
    input_final: bool,
    input_index: usize,
    cache: Option<&SigCache>,
) -> Result<(), TxError> {
    let key = cache.map(|_| SigCache::key(digest, script_sig, script_pubkey));
    if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
        if cache.contains(key, SigKind::of(script_pubkey)) {
            return Ok(());
        }
    }
    let checker = DigestChecker { digest: *digest };
    let ctx = ExecContext {
        checker: &checker,
        lock_time,
        input_final,
    };
    match verify_spend(script_sig, script_pubkey, &ctx) {
        Ok(true) => {
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.insert(key);
            }
            Ok(())
        }
        Ok(false) => Err(TxError::ScriptFailed {
            input: input_index,
            error: None,
        }),
        Err(e) => Err(TxError::ScriptFailed {
            input: input_index,
            error: Some(e),
        }),
    }
}

/// Validates a non-coinbase transaction against the UTXO set at `height`
/// and returns its fee.
///
/// Checks: structure, finality, input existence, coinbase maturity, value
/// balance, and full script verification on every input.
///
/// # Errors
///
/// The specific [`TxError`].
pub fn validate_transaction<V: UtxoView>(
    tx: &Transaction,
    utxo: &V,
    height: u64,
    params: &ChainParams,
) -> Result<u64, TxError> {
    validate_transaction_cached(tx, utxo, height, params, None)
}

/// [`validate_transaction`] with a shared [`SigCache`]: spends whose exact
/// `(sighash, script_sig, script_pubkey)` already verified are accepted
/// without re-running the interpreter, and fresh successes are recorded.
///
/// # Errors
///
/// The specific [`TxError`].
pub fn validate_transaction_cached<V: UtxoView>(
    tx: &Transaction,
    utxo: &V,
    height: u64,
    params: &ChainParams,
    cache: Option<&SigCache>,
) -> Result<u64, TxError> {
    let (fee, entries) = validate_transaction_structure(tx, utxo, height, params)?;
    for (i, (input, entry)) in tx.inputs.iter().zip(&entries).enumerate() {
        let digest = tx.sighash(i, &entry.output.script_pubkey);
        verify_script_with_cache(
            &digest,
            &input.script_sig,
            &entry.output.script_pubkey,
            tx.lock_time,
            input.is_final(),
            i,
            cache,
        )?;
    }
    Ok(fee)
}

/// Tuning for [`validate_block_with`].
#[derive(Debug, Clone, Copy)]
pub struct BlockValidationOptions<'a> {
    /// Shared signature cache consulted before (and populated after) each
    /// script run. `None` disables caching.
    pub cache: Option<&'a SigCache>,
    /// Script-verification worker threads: `0` picks one per available
    /// CPU, `1` forces the sequential path.
    pub workers: usize,
    /// Verify cache-miss ECDSA spends with randomized batch verification
    /// (one multi-scalar multiplication per [`BATCH_CHUNK`] of jobs)
    /// instead of one-at-a-time. Semantically identical to per-signature
    /// verification: any batch failure falls back to sequential re-runs,
    /// so the accept/reject decision and the reported error never change.
    pub batch: bool,
}

impl Default for BlockValidationOptions<'_> {
    fn default() -> Self {
        BlockValidationOptions {
            cache: None,
            workers: 0,
            batch: true,
        }
    }
}

/// One input's script verification, detached from the rolling UTXO view:
/// everything the interpreter needs is snapshotted (digest computed, both
/// scripts cloned) so jobs can run on any thread in any order.
struct ScriptJob {
    tx_index: usize,
    input_index: usize,
    digest: [u8; 32],
    script_sig: Script,
    script_pubkey: Script,
    lock_time: u64,
    input_final: bool,
    /// Precomputed cache key (present iff a cache is configured).
    key: Option<[u8; 32]>,
}

/// Runs one snapshotted job; inserts the key into `cache` on success.
fn run_script_job(job: &ScriptJob, cache: Option<&SigCache>) -> Result<(), TxError> {
    let checker = DigestChecker { digest: job.digest };
    let ctx = ExecContext {
        checker: &checker,
        lock_time: job.lock_time,
        input_final: job.input_final,
    };
    match verify_spend(&job.script_sig, &job.script_pubkey, &ctx) {
        Ok(true) => {
            if let (Some(cache), Some(key)) = (cache, job.key.as_ref()) {
                cache.insert(*key);
            }
            Ok(())
        }
        Ok(false) => Err(TxError::ScriptFailed {
            input: job.input_index,
            error: None,
        }),
        Err(e) => Err(TxError::ScriptFailed {
            input: job.input_index,
            error: Some(e),
        }),
    }
}

/// Jobs per batch-verification chunk. Workers claim contiguous chunks of
/// this many jobs (`next.fetch_add(BATCH_CHUNK)`), so chunk boundaries —
/// and therefore the exact batches handed to [`batch_verify`] — depend
/// only on job order, never on thread count or scheduling. Four of the
/// verifier's 8-signature sub-batches fit in one chunk.
pub const BATCH_CHUNK: usize = 32;

/// Runs one chunk of jobs through the batch-verification fast path,
/// appending any failures as `(tx_index, input_index, error)`.
///
/// Each job first executes with a [`DeferringChecker`]: parseable ECDSA
/// `(pubkey, signature)` pairs are recorded and assumed valid, malformed
/// ones are rejected exactly. Three outcomes per job:
///
/// - passed with nothing recorded — the run was exact; done;
/// - passed with recorded pairs — the verdict is conditional on those
///   signatures, which go into one chunk-wide [`batch_verify`] call;
/// - failed with nothing recorded — the failure is exact; reported;
/// - anything else (failed with recorded pairs, or the chunk's batch
///   rejected) — re-run sequentially with a real checker, because an
///   optimistic `true` may have steered execution down a branch the real
///   verdict wouldn't take.
///
/// The fallback makes the path semantically identical to per-signature
/// verification: same accept/reject per spend, same error. Only the cost
/// changes — on clean blocks (the overwhelming case) one multi-scalar
/// multiplication replaces up to [`BATCH_CHUNK`] double-scalar ones.
fn run_chunk_batched(
    chunk: &[ScriptJob],
    cache: Option<&SigCache>,
    failures: &mut Vec<(usize, usize, TxError)>,
) {
    // Optimistic pass: (chunk-local job index, recorded pairs).
    let mut deferred: Vec<(usize, Vec<(EcdsaPublicKey, Signature)>)> = Vec::new();
    let mut rerun: Vec<usize> = Vec::new();
    for (j, job) in chunk.iter().enumerate() {
        let checker = DeferringChecker::new();
        let ctx = ExecContext {
            checker: &checker,
            lock_time: job.lock_time,
            input_final: job.input_final,
        };
        let result = verify_spend(&job.script_sig, &job.script_pubkey, &ctx);
        let recorded = checker.into_recorded();
        match result {
            Ok(true) if recorded.is_empty() => {
                if let (Some(cache), Some(key)) = (cache, job.key.as_ref()) {
                    cache.insert(*key);
                }
            }
            Ok(true) => deferred.push((j, recorded)),
            Ok(false) if recorded.is_empty() => {
                failures.push((
                    job.tx_index,
                    job.input_index,
                    TxError::ScriptFailed {
                        input: job.input_index,
                        error: None,
                    },
                ));
            }
            Err(e) if recorded.is_empty() => {
                failures.push((
                    job.tx_index,
                    job.input_index,
                    TxError::ScriptFailed {
                        input: job.input_index,
                        error: Some(e),
                    },
                ));
            }
            Ok(false) | Err(_) => rerun.push(j),
        }
    }
    // One batch over every conditional pass in the chunk.
    if !deferred.is_empty() {
        let items: Vec<(&[u8; 32], &Signature, &EcdsaPublicKey)> = deferred
            .iter()
            .flat_map(|(j, recorded)| {
                recorded
                    .iter()
                    .map(move |(pk, sig)| (&chunk[*j].digest, sig, pk))
            })
            .collect();
        match batch_verify(&items) {
            Ok(()) => {
                // Every deferred signature is individually valid, so each
                // optimistic run was identical to a real one: all pass.
                for (j, _) in &deferred {
                    if let (Some(cache), Some(key)) = (cache, chunk[*j].key.as_ref()) {
                        cache.insert(*key);
                    }
                }
            }
            // Some signature in the chunk is bad. Re-run every deferred
            // job with a real checker for exact per-job verdicts (rare:
            // this only triggers on invalid blocks).
            Err(_) => rerun.extend(deferred.iter().map(|(j, _)| *j)),
        }
    }
    rerun.sort_unstable();
    for j in rerun {
        let job = &chunk[j];
        if let Err(error) = run_script_job(job, cache) {
            failures.push((job.tx_index, job.input_index, error));
        }
    }
}

/// Runs the collected script jobs and returns the positionally-first
/// failure as `(tx_index, error)`, or `None` if all verified.
///
/// The parallel path never aborts early: every job runs, all failures are
/// collected, and the one with the smallest `(tx_index, input_index)` is
/// reported — exactly what the sequential path (jobs are in that order)
/// returns — so the accept/reject decision and the reported error are
/// independent of thread count and scheduling. With `opts.batch` set the
/// jobs are processed in fixed [`BATCH_CHUNK`]-sized chunks through
/// [`run_chunk_batched`]; chunk boundaries depend only on job order, so
/// the batches (and thus every verification outcome) are deterministic
/// too.
fn run_script_jobs(
    jobs: &[ScriptJob],
    opts: &BlockValidationOptions<'_>,
) -> Option<(usize, TxError)> {
    if jobs.is_empty() {
        return None;
    }
    let workers = match opts.workers {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        w => w,
    }
    .min(jobs.len());
    if workers <= 1 {
        if opts.batch {
            let mut failures = Vec::new();
            for chunk in jobs.chunks(BATCH_CHUNK) {
                run_chunk_batched(chunk, opts.cache, &mut failures);
                if !failures.is_empty() {
                    break; // chunks are in job order: the min is in here
                }
            }
            return failures
                .into_iter()
                .min_by_key(|(tx, input, _)| (*tx, *input))
                .map(|(tx, _, error)| (tx, error));
        }
        for job in jobs {
            if let Err(error) = run_script_job(job, opts.cache) {
                return Some((job.tx_index, error));
            }
        }
        return None;
    }
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(usize, usize, TxError)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                if opts.batch {
                    loop {
                        let base = next.fetch_add(BATCH_CHUNK, Ordering::Relaxed);
                        if base >= jobs.len() {
                            break;
                        }
                        let end = (base + BATCH_CHUNK).min(jobs.len());
                        let mut local = Vec::new();
                        run_chunk_batched(&jobs[base..end], opts.cache, &mut local);
                        if !local.is_empty() {
                            failures
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .extend(local);
                        }
                    }
                } else {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        if let Err(error) = run_script_job(job, opts.cache) {
                            failures
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push((job.tx_index, job.input_index, error));
                        }
                    }
                }
            });
        }
    });
    failures
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .min_by_key(|(tx, input, _)| (*tx, *input))
        .map(|(tx, _, error)| (tx, error))
}

/// Validates a block body against the UTXO state at `height` (the height
/// this block would occupy). Header linkage is the chain's job; this
/// checks PoW, merkle, size, coinbase rules and every transaction.
///
/// Equivalent to [`validate_block_with`] under default options (no cache,
/// auto-sized worker pool).
///
/// # Errors
///
/// The specific [`BlockError`].
pub fn validate_block(
    block: &Block,
    utxo: &UtxoSet,
    height: u64,
    params: &ChainParams,
) -> Result<(), BlockError> {
    validate_block_with(
        block,
        utxo,
        height,
        params,
        &BlockValidationOptions::default(),
    )
}

/// [`validate_block`] with explicit fast-path options.
///
/// Validation runs in two passes. The sequential pass walks transactions in
/// order against a rolling UTXO view (so intra-block chains work), performs
/// every context-dependent check, and snapshots each input's script job —
/// sighash digest plus both scripts — before the view mutates. Jobs whose
/// cache key is already present (verified at mempool admission) are dropped
/// on the spot. The remaining context-free script runs then execute on a
/// `std::thread::scope` worker pool (or inline when `workers == 1`).
///
/// A structural failure at transaction `s` stops job collection at `s`, so
/// any script failure that surfaces is at an index `< s` and positionally
/// precedes it; the reported error is therefore identical to fully
/// sequential validation.
///
/// # Errors
///
/// The specific [`BlockError`].
pub fn validate_block_with(
    block: &Block,
    utxo: &UtxoSet,
    height: u64,
    params: &ChainParams,
    opts: &BlockValidationOptions<'_>,
) -> Result<(), BlockError> {
    if block.transactions.is_empty() {
        return Err(BlockError::Empty);
    }
    if block.header.bits != params.difficulty_bits {
        return Err(BlockError::WrongBits {
            claimed: block.header.bits,
            required: params.difficulty_bits,
        });
    }
    let achieved = block.hash().leading_zero_bits();
    if achieved < params.difficulty_bits {
        return Err(BlockError::InsufficientWork {
            achieved,
            required: params.difficulty_bits,
        });
    }
    if !block.merkle_root_valid() {
        return Err(BlockError::BadMerkleRoot);
    }
    let size = block.size();
    if size > params.max_block_size {
        return Err(BlockError::TooLarge {
            size,
            limit: params.max_block_size,
        });
    }
    if !block.transactions[0].is_coinbase() {
        return Err(BlockError::BadCoinbasePlacement);
    }
    if block.transactions[1..].iter().any(Transaction::is_coinbase) {
        return Err(BlockError::BadCoinbasePlacement);
    }

    // Sequential pass: context-dependent checks against a rolling view so
    // intra-block chains (tx B spends tx A's output) work, snapshotting
    // script jobs before each apply.
    let mut view = utxo.clone();
    let mut undo = crate::utxo::UndoData::default();
    let mut fees: u64 = 0;
    let mut jobs: Vec<ScriptJob> = Vec::new();
    let mut structural_failure: Option<(usize, TxError)> = None;
    for (index, tx) in block.transactions.iter().enumerate().skip(1) {
        match validate_transaction_structure(tx, &view, height, params) {
            Ok((fee, entries)) => {
                fees += fee;
                for (i, (input, entry)) in tx.inputs.iter().zip(&entries).enumerate() {
                    let digest = tx.sighash(i, &entry.output.script_pubkey);
                    let key = opts.cache.map(|_| {
                        SigCache::key(&digest, &input.script_sig, &entry.output.script_pubkey)
                    });
                    if let (Some(cache), Some(key)) = (opts.cache, key.as_ref()) {
                        if cache.contains(key, SigKind::of(&entry.output.script_pubkey)) {
                            continue; // verified at mempool admission
                        }
                    }
                    jobs.push(ScriptJob {
                        tx_index: index,
                        input_index: i,
                        digest,
                        script_sig: input.script_sig.clone(),
                        script_pubkey: entry.output.script_pubkey.clone(),
                        lock_time: tx.lock_time,
                        input_final: input.is_final(),
                        key,
                    });
                }
                view.apply_transaction(tx, height, &mut undo)
                    .expect("structurally valid transaction applies");
            }
            Err(error) => {
                structural_failure = Some((index, error));
                break;
            }
        }
    }

    if let Some((index, error)) = run_script_jobs(&jobs, opts) {
        return Err(BlockError::BadTransaction { index, error });
    }
    if let Some((index, error)) = structural_failure {
        return Err(BlockError::BadTransaction { index, error });
    }

    let allowed = params.coinbase_reward + fees;
    let paid = block.transactions[0].total_output();
    if paid > allowed {
        return Err(BlockError::ExcessiveCoinbase { paid, allowed });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockHash};
    use crate::tx::{OutPoint, TxIn, TxOut};
    use crate::wallet::Wallet;
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: ChainParams,
        utxo: UtxoSet,
        wallet: Wallet,
        coin: OutPoint,
        coin_script: Script,
    }

    /// UTXO with one mature 1000-value coin owned by `wallet`.
    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(42);
        let params = ChainParams::fast_test();
        let wallet = Wallet::generate(&mut rng);
        let cb = Transaction::coinbase(
            0,
            b"f",
            vec![TxOut {
                value: 1000,
                script_pubkey: wallet.locking_script(),
            }],
        );
        let mut utxo = UtxoSet::new();
        utxo.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        Fixture {
            params,
            utxo,
            coin: OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            coin_script: wallet.locking_script(),
            wallet,
        }
    }

    fn spend_height(f: &Fixture) -> u64 {
        f.params.coinbase_maturity // first height the coin is mature
    }

    #[test]
    fn sigcache_counts_rsa_escrow_lookups_separately() {
        let mut rng = StdRng::seed_from_u64(7);
        let (epk, _esk) =
            bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let escrow =
            bcwan_script::templates::ephemeral_key_release(&epk, &[1u8; 20], &[2u8; 20], 100);
        let p2pkh = bcwan_script::templates::p2pkh(&[3u8; 20]);
        assert_eq!(SigKind::of(&escrow), SigKind::Rsa);
        assert_eq!(SigKind::of(&p2pkh), SigKind::Ecdsa);

        let cache = SigCache::default();
        let digest = [9u8; 32];
        let rsa_key = SigCache::key(&digest, &Script::new(), &escrow);
        let ecdsa_key = SigCache::key(&digest, &Script::new(), &p2pkh);
        // Miss, insert, hit — per kind, without cross-talk.
        assert!(!cache.contains(&rsa_key, SigKind::of(&escrow)));
        cache.insert(rsa_key);
        assert!(cache.contains(&rsa_key, SigKind::of(&escrow)));
        assert!(!cache.contains(&ecdsa_key, SigKind::of(&p2pkh)));
        assert_eq!((cache.rsa_hits(), cache.rsa_misses()), (1, 1));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut registry = Registry::new();
        cache.export(&mut registry);
        let counters: std::collections::HashMap<_, _> =
            registry.snapshot().counters.into_iter().collect();
        assert_eq!(counters["validate.sigcache.rsa.hit"], 1);
        assert_eq!(counters["validate.sigcache.rsa.miss"], 1);
        assert_eq!(counters["validate.sigcache.hit"], 0);
        assert_eq!(counters["validate.sigcache.miss"], 1);
    }

    #[test]
    fn valid_spend_passes_and_reports_fee() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 990,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let fee = validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params).unwrap();
        assert_eq!(fee, 10);
    }

    #[test]
    fn immature_coinbase_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let err = validate_transaction(&tx, &f.utxo, 1, &f.params).unwrap_err();
        assert!(matches!(
            err,
            TxError::ImmatureCoinbase {
                created: 0,
                spend: 1
            }
        ));
    }

    #[test]
    fn overspend_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 2000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::ValueOutOfRange {
                input: 1000,
                output: 2000
            })
        ));
    }

    #[test]
    fn missing_input_rejected() {
        let f = fixture();
        let ghost = OutPoint {
            txid: crate::tx::TxId([9; 32]),
            vout: 0,
        };
        let tx = f.wallet.build_payment(
            vec![(ghost, f.coin_script.clone())],
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::MissingInput(_))
        ));
    }

    #[test]
    fn wrong_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(99);
        let f = fixture();
        let thief = Wallet::generate(&mut rng);
        let tx = thief.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::ScriptFailed { input: 0, .. })
        ));
    }

    #[test]
    fn non_final_transaction_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            1_000, // lock_time in the future
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::NotFinal {
                lock_time: 1000,
                ..
            })
        ));
    }

    #[test]
    fn duplicate_input_rejected() {
        let f = fixture();
        let mut tx = f.wallet.build_payment(
            vec![
                (f.coin, f.coin_script.clone()),
                (f.coin, f.coin_script.clone()),
            ],
            vec![TxOut {
                value: 100,
                script_pubkey: Script::new(),
            }],
            0,
        );
        // keep both inputs identical
        tx.inputs[1] = TxIn {
            prevout: f.coin,
            script_sig: tx.inputs[0].script_sig.clone(),
            sequence: 0,
        };
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::DuplicateInput(_))
        ));
    }

    #[test]
    fn op_return_with_value_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 5,
                script_pubkey: bcwan_script::templates::op_return(b"data"),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::ValueInOpReturn)
        ));
    }

    #[test]
    fn valid_block_accepted() {
        let f = fixture();
        let height = spend_height(&f);
        let spend = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 980,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let cb = Transaction::coinbase(
            height,
            b"miner",
            vec![TxOut {
                value: f.params.coinbase_reward + 20,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb, spend],
        );
        assert_eq!(validate_block(&block, &f.utxo, height, &f.params), Ok(()));
    }

    #[test]
    fn coinbase_overpay_rejected() {
        let f = fixture();
        let height = spend_height(&f);
        let cb = Transaction::coinbase(
            height,
            b"miner",
            vec![TxOut {
                value: f.params.coinbase_reward + 1, // no fees collected
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb],
        );
        assert!(matches!(
            validate_block(&block, &f.utxo, height, &f.params),
            Err(BlockError::ExcessiveCoinbase { .. })
        ));
    }

    #[test]
    fn wrong_difficulty_rejected() {
        let f = fixture();
        let cb = Transaction::coinbase(
            0,
            b"m",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(BlockHash::GENESIS_PREV, 0, 2, vec![cb]);
        assert!(matches!(
            validate_block(&block, &f.utxo, 0, &f.params),
            Err(BlockError::WrongBits { claimed: 2, .. })
        ));
    }

    #[test]
    fn tampered_merkle_rejected() {
        let f = fixture();
        let cb = Transaction::coinbase(
            0,
            b"m",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        );
        let mut block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb.clone()],
        );
        block.transactions.push(Transaction::coinbase(
            1,
            b"x",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        ));
        let result = validate_block(&block, &f.utxo, 0, &f.params);
        assert!(
            matches!(result, Err(BlockError::BadMerkleRoot)),
            "{result:?}"
        );
    }

    #[test]
    fn intra_block_chains_validate() {
        let f = fixture();
        let height = spend_height(&f);
        let first = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: f.wallet.locking_script(),
            }],
            0,
        );
        let second = f.wallet.build_payment(
            vec![(
                OutPoint {
                    txid: first.txid(),
                    vout: 0,
                },
                f.wallet.locking_script(),
            )],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let cb = Transaction::coinbase(
            height,
            b"m",
            vec![TxOut {
                value: f.params.coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb, first, second],
        );
        assert_eq!(validate_block(&block, &f.utxo, height, &f.params), Ok(()));
    }
}
