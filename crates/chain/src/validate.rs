//! Transaction and block validation rules.

use crate::block::Block;
use crate::params::ChainParams;
use crate::tx::Transaction;
use crate::utxo::{UtxoSet, UtxoView};
use bcwan_script::interpreter::{verify_spend, DigestChecker, ExecContext};
use bcwan_script::ScriptError;
use std::collections::HashSet;
use std::fmt;

/// Why a transaction was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// No inputs or no outputs.
    Empty,
    /// Unexpected coinbase outside a block context.
    UnexpectedCoinbase,
    /// An input's referenced output is unknown or spent.
    MissingInput(crate::tx::OutPoint),
    /// The same output is spent twice within the transaction.
    DuplicateInput(crate::tx::OutPoint),
    /// Outputs exceed inputs.
    ValueOutOfRange {
        /// Sum of spent input values.
        input: u64,
        /// Sum of created output values.
        output: u64,
    },
    /// A coinbase output was spent before maturity.
    ImmatureCoinbase {
        /// Height the coinbase was created at.
        created: u64,
        /// Height of the attempted spend.
        spend: u64,
    },
    /// The transaction's lock time has not yet been reached.
    NotFinal {
        /// Transaction lock time.
        lock_time: u64,
        /// Current chain height.
        height: u64,
    },
    /// Script execution failed or evaluated false.
    ScriptFailed {
        /// The failing input index.
        input: usize,
        /// The underlying script error (`None` = clean false).
        error: Option<ScriptError>,
    },
    /// An OP_RETURN output carries a non-zero value (burns are banned to
    /// keep directory announcements free of accounting surprises).
    ValueInOpReturn,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Empty => write!(f, "transaction has no inputs or outputs"),
            TxError::UnexpectedCoinbase => write!(f, "coinbase not allowed here"),
            TxError::MissingInput(op) => write!(f, "missing input {op}"),
            TxError::DuplicateInput(op) => write!(f, "duplicate input {op}"),
            TxError::ValueOutOfRange { input, output } => {
                write!(f, "outputs {output} exceed inputs {input}")
            }
            TxError::ImmatureCoinbase { created, spend } => {
                write!(f, "coinbase from height {created} spent at {spend}")
            }
            TxError::NotFinal { lock_time, height } => {
                write!(f, "lock time {lock_time} not reached at height {height}")
            }
            TxError::ScriptFailed { input, error } => match error {
                Some(e) => write!(f, "script failed on input {input}: {e}"),
                None => write!(f, "script evaluated false on input {input}"),
            },
            TxError::ValueInOpReturn => write!(f, "op_return output carries value"),
        }
    }
}

impl std::error::Error for TxError {}

/// Why a block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Block has no transactions.
    Empty,
    /// First transaction is not a coinbase, or a later one is.
    BadCoinbasePlacement,
    /// Header does not meet the required difficulty.
    InsufficientWork {
        /// Bits achieved by the header hash.
        achieved: u32,
        /// Bits required by consensus.
        required: u32,
    },
    /// Header difficulty field does not match consensus parameters.
    WrongBits {
        /// Bits claimed in the header.
        claimed: u32,
        /// Bits required by consensus.
        required: u32,
    },
    /// Merkle root mismatch.
    BadMerkleRoot,
    /// Serialized size exceeds the consensus limit.
    TooLarge {
        /// Serialized block size.
        size: usize,
        /// Consensus limit.
        limit: usize,
    },
    /// Coinbase pays more than subsidy + fees.
    ExcessiveCoinbase {
        /// Coinbase output total.
        paid: u64,
        /// Subsidy plus collected fees.
        allowed: u64,
    },
    /// A transaction in the block is invalid.
    BadTransaction {
        /// Index within the block.
        index: usize,
        /// The underlying error.
        error: TxError,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Empty => write!(f, "block has no transactions"),
            BlockError::BadCoinbasePlacement => write!(f, "bad coinbase placement"),
            BlockError::InsufficientWork { achieved, required } => {
                write!(f, "pow {achieved} bits, need {required}")
            }
            BlockError::WrongBits { claimed, required } => {
                write!(
                    f,
                    "header claims {claimed} bits, consensus requires {required}"
                )
            }
            BlockError::BadMerkleRoot => write!(f, "merkle root mismatch"),
            BlockError::TooLarge { size, limit } => {
                write!(f, "block of {size} bytes exceeds {limit}")
            }
            BlockError::ExcessiveCoinbase { paid, allowed } => {
                write!(f, "coinbase pays {paid}, allowed {allowed}")
            }
            BlockError::BadTransaction { index, error } => {
                write!(f, "transaction {index} invalid: {error}")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// Validates a non-coinbase transaction against the UTXO set at `height`
/// and returns its fee.
///
/// Checks: structure, finality, input existence, coinbase maturity, value
/// balance, and full script verification on every input.
///
/// # Errors
///
/// The specific [`TxError`].
pub fn validate_transaction<V: UtxoView>(
    tx: &Transaction,
    utxo: &V,
    height: u64,
    params: &ChainParams,
) -> Result<u64, TxError> {
    if tx.inputs.is_empty() || tx.outputs.is_empty() {
        return Err(TxError::Empty);
    }
    if tx.is_coinbase() {
        return Err(TxError::UnexpectedCoinbase);
    }
    if !tx.is_final_at(height) {
        return Err(TxError::NotFinal {
            lock_time: tx.lock_time,
            height,
        });
    }
    for output in &tx.outputs {
        if output.script_pubkey.is_op_return() && output.value != 0 {
            return Err(TxError::ValueInOpReturn);
        }
    }

    let mut seen = HashSet::new();
    let mut input_value: u64 = 0;
    for input in &tx.inputs {
        if !seen.insert(input.prevout) {
            return Err(TxError::DuplicateInput(input.prevout));
        }
        let entry = utxo
            .view_get(&input.prevout)
            .ok_or(TxError::MissingInput(input.prevout))?;
        if entry.coinbase && height < entry.height + params.coinbase_maturity {
            return Err(TxError::ImmatureCoinbase {
                created: entry.height,
                spend: height,
            });
        }
        input_value += entry.output.value;
    }
    let output_value = tx.total_output();
    if output_value > input_value {
        return Err(TxError::ValueOutOfRange {
            input: input_value,
            output: output_value,
        });
    }

    // Script verification per input.
    for (i, input) in tx.inputs.iter().enumerate() {
        let entry = utxo.view_get(&input.prevout).expect("checked above");
        let digest = tx.sighash(i, &entry.output.script_pubkey);
        let checker = DigestChecker { digest };
        let ctx = ExecContext {
            checker: &checker,
            lock_time: tx.lock_time,
            input_final: input.is_final(),
        };
        match verify_spend(&input.script_sig, &entry.output.script_pubkey, &ctx) {
            Ok(true) => {}
            Ok(false) => {
                return Err(TxError::ScriptFailed {
                    input: i,
                    error: None,
                })
            }
            Err(e) => {
                return Err(TxError::ScriptFailed {
                    input: i,
                    error: Some(e),
                })
            }
        }
    }

    Ok(input_value - output_value)
}

/// Validates a block body against the UTXO state at `height` (the height
/// this block would occupy). Header linkage is the chain's job; this
/// checks PoW, merkle, size, coinbase rules and every transaction.
///
/// # Errors
///
/// The specific [`BlockError`].
pub fn validate_block(
    block: &Block,
    utxo: &UtxoSet,
    height: u64,
    params: &ChainParams,
) -> Result<(), BlockError> {
    if block.transactions.is_empty() {
        return Err(BlockError::Empty);
    }
    if block.header.bits != params.difficulty_bits {
        return Err(BlockError::WrongBits {
            claimed: block.header.bits,
            required: params.difficulty_bits,
        });
    }
    let achieved = block.hash().leading_zero_bits();
    if achieved < params.difficulty_bits {
        return Err(BlockError::InsufficientWork {
            achieved,
            required: params.difficulty_bits,
        });
    }
    if !block.merkle_root_valid() {
        return Err(BlockError::BadMerkleRoot);
    }
    let size = block.size();
    if size > params.max_block_size {
        return Err(BlockError::TooLarge {
            size,
            limit: params.max_block_size,
        });
    }
    if !block.transactions[0].is_coinbase() {
        return Err(BlockError::BadCoinbasePlacement);
    }
    if block.transactions[1..].iter().any(Transaction::is_coinbase) {
        return Err(BlockError::BadCoinbasePlacement);
    }

    // Validate body transactions against a rolling view so intra-block
    // chains (tx B spends tx A's output) work.
    let mut view = utxo.clone();
    let mut undo = crate::utxo::UndoData::default();
    let mut fees: u64 = 0;
    for (index, tx) in block.transactions.iter().enumerate().skip(1) {
        match validate_transaction(tx, &view, height, params) {
            Ok(fee) => fees += fee,
            Err(error) => return Err(BlockError::BadTransaction { index, error }),
        }
        view.apply_transaction(tx, height, &mut undo)
            .expect("validated transaction applies");
    }

    let allowed = params.coinbase_reward + fees;
    let paid = block.transactions[0].total_output();
    if paid > allowed {
        return Err(BlockError::ExcessiveCoinbase { paid, allowed });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockHash};
    use crate::tx::{OutPoint, TxIn, TxOut};
    use crate::wallet::Wallet;
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: ChainParams,
        utxo: UtxoSet,
        wallet: Wallet,
        coin: OutPoint,
        coin_script: Script,
    }

    /// UTXO with one mature 1000-value coin owned by `wallet`.
    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(42);
        let params = ChainParams::fast_test();
        let wallet = Wallet::generate(&mut rng);
        let cb = Transaction::coinbase(
            0,
            b"f",
            vec![TxOut {
                value: 1000,
                script_pubkey: wallet.locking_script(),
            }],
        );
        let mut utxo = UtxoSet::new();
        utxo.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        Fixture {
            params,
            utxo,
            coin: OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            coin_script: wallet.locking_script(),
            wallet,
        }
    }

    fn spend_height(f: &Fixture) -> u64 {
        f.params.coinbase_maturity // first height the coin is mature
    }

    #[test]
    fn valid_spend_passes_and_reports_fee() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 990,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let fee = validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params).unwrap();
        assert_eq!(fee, 10);
    }

    #[test]
    fn immature_coinbase_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let err = validate_transaction(&tx, &f.utxo, 1, &f.params).unwrap_err();
        assert!(matches!(
            err,
            TxError::ImmatureCoinbase {
                created: 0,
                spend: 1
            }
        ));
    }

    #[test]
    fn overspend_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 2000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::ValueOutOfRange {
                input: 1000,
                output: 2000
            })
        ));
    }

    #[test]
    fn missing_input_rejected() {
        let f = fixture();
        let ghost = OutPoint {
            txid: crate::tx::TxId([9; 32]),
            vout: 0,
        };
        let tx = f.wallet.build_payment(
            vec![(ghost, f.coin_script.clone())],
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::MissingInput(_))
        ));
    }

    #[test]
    fn wrong_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(99);
        let f = fixture();
        let thief = Wallet::generate(&mut rng);
        let tx = thief.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::ScriptFailed { input: 0, .. })
        ));
    }

    #[test]
    fn non_final_transaction_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            1_000, // lock_time in the future
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::NotFinal {
                lock_time: 1000,
                ..
            })
        ));
    }

    #[test]
    fn duplicate_input_rejected() {
        let f = fixture();
        let mut tx = f.wallet.build_payment(
            vec![
                (f.coin, f.coin_script.clone()),
                (f.coin, f.coin_script.clone()),
            ],
            vec![TxOut {
                value: 100,
                script_pubkey: Script::new(),
            }],
            0,
        );
        // keep both inputs identical
        tx.inputs[1] = TxIn {
            prevout: f.coin,
            script_sig: tx.inputs[0].script_sig.clone(),
            sequence: 0,
        };
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::DuplicateInput(_))
        ));
    }

    #[test]
    fn op_return_with_value_rejected() {
        let f = fixture();
        let tx = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 5,
                script_pubkey: bcwan_script::templates::op_return(b"data"),
            }],
            0,
        );
        assert!(matches!(
            validate_transaction(&tx, &f.utxo, spend_height(&f), &f.params),
            Err(TxError::ValueInOpReturn)
        ));
    }

    #[test]
    fn valid_block_accepted() {
        let f = fixture();
        let height = spend_height(&f);
        let spend = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 980,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let cb = Transaction::coinbase(
            height,
            b"miner",
            vec![TxOut {
                value: f.params.coinbase_reward + 20,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb, spend],
        );
        assert_eq!(validate_block(&block, &f.utxo, height, &f.params), Ok(()));
    }

    #[test]
    fn coinbase_overpay_rejected() {
        let f = fixture();
        let height = spend_height(&f);
        let cb = Transaction::coinbase(
            height,
            b"miner",
            vec![TxOut {
                value: f.params.coinbase_reward + 1, // no fees collected
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb],
        );
        assert!(matches!(
            validate_block(&block, &f.utxo, height, &f.params),
            Err(BlockError::ExcessiveCoinbase { .. })
        ));
    }

    #[test]
    fn wrong_difficulty_rejected() {
        let f = fixture();
        let cb = Transaction::coinbase(
            0,
            b"m",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(BlockHash::GENESIS_PREV, 0, 2, vec![cb]);
        assert!(matches!(
            validate_block(&block, &f.utxo, 0, &f.params),
            Err(BlockError::WrongBits { claimed: 2, .. })
        ));
    }

    #[test]
    fn tampered_merkle_rejected() {
        let f = fixture();
        let cb = Transaction::coinbase(
            0,
            b"m",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        );
        let mut block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb.clone()],
        );
        block.transactions.push(Transaction::coinbase(
            1,
            b"x",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        ));
        let result = validate_block(&block, &f.utxo, 0, &f.params);
        assert!(
            matches!(result, Err(BlockError::BadMerkleRoot)),
            "{result:?}"
        );
    }

    #[test]
    fn intra_block_chains_validate() {
        let f = fixture();
        let height = spend_height(&f);
        let first = f.wallet.build_payment(
            vec![(f.coin, f.coin_script.clone())],
            vec![TxOut {
                value: 1000,
                script_pubkey: f.wallet.locking_script(),
            }],
            0,
        );
        let second = f.wallet.build_payment(
            vec![(
                OutPoint {
                    txid: first.txid(),
                    vout: 0,
                },
                f.wallet.locking_script(),
            )],
            vec![TxOut {
                value: 1000,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let cb = Transaction::coinbase(
            height,
            b"m",
            vec![TxOut {
                value: f.params.coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(
            BlockHash::GENESIS_PREV,
            0,
            f.params.difficulty_bits,
            vec![cb, first, second],
        );
        assert_eq!(validate_block(&block, &f.utxo, height, &f.params), Ok(()));
    }
}
