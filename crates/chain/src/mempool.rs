//! The transaction memory pool.
//!
//! First-seen policy: a transaction conflicting with one already pooled is
//! rejected, which is exactly the window the paper's §6 double-spend
//! discussion turns on — whichever conflicting transaction reaches the
//! miner's pool first wins the block.

use crate::params::ChainParams;
use crate::tx::{OutPoint, Transaction, TxId};
use crate::utxo::UtxoSet;
use crate::validate::{validate_transaction_cached, SigCache, TxError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why the pool refused a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// Already pooled.
    Duplicate(TxId),
    /// Conflicts with a pooled transaction spending the same output.
    Conflict {
        /// The output contested.
        outpoint: OutPoint,
        /// The transaction already holding it.
        existing: TxId,
    },
    /// Failed stateless/stateful validation.
    Invalid(TxError),
}

impl fmt::Display for MempoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MempoolError::Duplicate(id) => write!(f, "duplicate transaction {id}"),
            MempoolError::Conflict { outpoint, existing } => {
                write!(f, "conflicts on {outpoint} with {existing}")
            }
            MempoolError::Invalid(e) => write!(f, "invalid transaction: {e}"),
        }
    }
}

impl std::error::Error for MempoolError {}

struct PoolEntry {
    tx: Transaction,
    fee: u64,
}

/// Lifetime counters of pool activity, read back into the metrics
/// registry at the end of a run (`mempool.*` rows in bench reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions admitted.
    pub accepted: u64,
    /// Rejections: already pooled.
    pub rejected_duplicate: u64,
    /// Rejections: double-spend of a pooled input (first-seen wins).
    pub rejected_conflict: u64,
    /// Rejections: failed validation.
    pub rejected_invalid: u64,
    /// Transactions removed because a block confirmed them (or a conflict).
    pub evicted: u64,
}

/// The UTXO state as the pool sees it: base set plus pooled outputs minus
/// pooled spends. A borrow-only overlay — no cloning.
struct PoolView<'a> {
    base: &'a UtxoSet,
    created: &'a HashMap<OutPoint, crate::utxo::UtxoEntry>,
    spent: &'a HashMap<OutPoint, TxId>,
}

impl crate::utxo::UtxoView for PoolView<'_> {
    fn view_get(&self, outpoint: &OutPoint) -> Option<&crate::utxo::UtxoEntry> {
        if self.spent.contains_key(outpoint) {
            return None;
        }
        self.created
            .get(outpoint)
            .or_else(|| self.base.view_get(outpoint))
    }
}

/// The memory pool.
///
/// Chained unconfirmed transactions are accepted (a child may spend a
/// pooled parent's output) — BcWAN's claim transaction spends the escrow
/// before it confirms, exactly the paper's §6 zero-confirmation choice.
#[derive(Default)]
pub struct Mempool {
    entries: HashMap<TxId, PoolEntry>,
    by_outpoint: HashMap<OutPoint, TxId>,
    /// Outputs created by pooled transactions, for the overlay view.
    created: HashMap<OutPoint, crate::utxo::UtxoEntry>,
    next_seq: u64,
    stats: MempoolStats,
    /// Shared signature cache populated at admission so block connect can
    /// skip re-verifying the same spends. `None` = caching disabled.
    sig_cache: Option<Arc<SigCache>>,
}

impl fmt::Debug for Mempool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mempool")
            .field("transactions", &self.entries.len())
            .finish()
    }
}

impl Mempool {
    /// An empty pool (no signature cache).
    pub fn new() -> Self {
        Mempool::default()
    }

    /// An empty pool sharing `cache` with the chain: script verifications
    /// done at admission are not repeated when a block later connects.
    pub fn with_cache(cache: Arc<SigCache>) -> Self {
        Mempool {
            sig_cache: Some(cache),
            ..Mempool::default()
        }
    }

    /// Lifetime accept/reject/evict counters.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }

    /// Number of pooled transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a transaction is pooled.
    pub fn contains(&self, txid: &TxId) -> bool {
        self.entries.contains_key(txid)
    }

    /// Fetches a pooled transaction.
    pub fn get(&self, txid: &TxId) -> Option<&Transaction> {
        self.entries.get(txid).map(|e| &e.tx)
    }

    /// Admits a transaction after validating it against `utxo` at `height`.
    /// Returns the fee on success.
    ///
    /// # Errors
    ///
    /// [`MempoolError`] on duplicates, conflicts, or validation failure.
    pub fn insert(
        &mut self,
        tx: Transaction,
        utxo: &UtxoSet,
        height: u64,
        params: &ChainParams,
    ) -> Result<u64, MempoolError> {
        let txid = tx.txid();
        if self.entries.contains_key(&txid) {
            self.stats.rejected_duplicate += 1;
            return Err(MempoolError::Duplicate(txid));
        }
        for input in &tx.inputs {
            if let Some(existing) = self.by_outpoint.get(&input.prevout) {
                self.stats.rejected_conflict += 1;
                return Err(MempoolError::Conflict {
                    outpoint: input.prevout,
                    existing: *existing,
                });
            }
        }
        // Validate against the UTXO view extended with pooled outputs, so
        // children of unconfirmed parents are admissible.
        let view = PoolView {
            base: utxo,
            created: &self.created,
            spent: &self.by_outpoint,
        };
        let fee = match validate_transaction_cached(
            &tx,
            &view,
            height,
            params,
            self.sig_cache.as_deref(),
        ) {
            Ok(fee) => fee,
            Err(e) => {
                self.stats.rejected_invalid += 1;
                return Err(MempoolError::Invalid(e));
            }
        };
        for input in &tx.inputs {
            self.by_outpoint.insert(input.prevout, txid);
        }
        for (vout, output) in tx.outputs.iter().enumerate() {
            self.created.insert(
                OutPoint {
                    txid,
                    vout: vout as u32,
                },
                crate::utxo::UtxoEntry {
                    output: output.clone(),
                    height,
                    coinbase: false,
                },
            );
        }
        self.next_seq += 1;
        self.stats.accepted += 1;
        self.entries.insert(txid, PoolEntry { tx, fee });
        Ok(fee)
    }

    /// Selects transactions for a block template, highest fee-rate first,
    /// within `max_bytes` (which should leave room for the coinbase).
    ///
    /// A dependent transaction is only selected once its pooled parents
    /// are, keeping the template topologically valid.
    pub fn block_template(&self, max_bytes: usize) -> Vec<Transaction> {
        self.block_template_excluding(max_bytes, |_| false)
    }

    /// [`Mempool::block_template`] with a censorship predicate: pooled
    /// transactions for which `exclude` returns true are silently left
    /// out of the template, as are (automatically, via the dependency
    /// rule) any pooled descendants spending their outputs. This is the
    /// hook a Byzantine miner uses to censor settlement transactions —
    /// the censored entries stay pooled and are *not* announced as
    /// rejected, which is exactly what makes censorship hard to observe
    /// directly and worth detecting statistically.
    pub fn block_template_excluding<F>(&self, max_bytes: usize, exclude: F) -> Vec<Transaction>
    where
        F: Fn(&Transaction) -> bool,
    {
        let mut candidates: Vec<&PoolEntry> =
            self.entries.values().filter(|e| !exclude(&e.tx)).collect();
        candidates.sort_by(|a, b| {
            let rate_a = a.fee as f64 / a.tx.size() as f64;
            let rate_b = b.fee as f64 / b.tx.size() as f64;
            rate_b
                .partial_cmp(&rate_a)
                .expect("finite rates")
                .then_with(|| a.tx.txid().cmp(&b.tx.txid()))
        });
        let mut out: Vec<Transaction> = Vec::new();
        let mut selected: std::collections::HashSet<TxId> = std::collections::HashSet::new();
        let mut used = 0usize;
        let mut progressed = true;
        while progressed {
            progressed = false;
            for entry in &candidates {
                let txid = entry.tx.txid();
                if selected.contains(&txid) {
                    continue;
                }
                // Parents must be confirmed (not pooled) or already chosen.
                let deps_ok = entry.tx.inputs.iter().all(|i| {
                    !self.entries.contains_key(&i.prevout.txid)
                        || selected.contains(&i.prevout.txid)
                });
                if !deps_ok {
                    continue;
                }
                let size = entry.tx.size();
                if used + size > max_bytes {
                    continue;
                }
                used += size;
                selected.insert(txid);
                out.push(entry.tx.clone());
                progressed = true;
            }
        }
        out
    }

    /// Total fees of all pooled transactions.
    pub fn total_fees(&self) -> u64 {
        self.entries.values().map(|e| e.fee).sum()
    }

    /// Removes transactions confirmed in a block, plus any pooled
    /// transaction conflicting with them and, recursively, the
    /// descendants of evicted conflicts. Returns how many left the pool.
    pub fn remove_confirmed(&mut self, confirmed: &[Transaction]) -> usize {
        let mut evicted = 0;
        for tx in confirmed {
            // Direct removal: descendants stay — they remain valid now
            // that the parent is confirmed.
            if self.remove_one(&tx.txid()) {
                evicted += 1;
            }
            // Conflict eviction: anything spending the same outputs, and
            // everything built on top of it.
            for input in &tx.inputs {
                if let Some(loser) = self.by_outpoint.get(&input.prevout).copied() {
                    evicted += self.remove_recursive(&loser);
                }
            }
        }
        self.stats.evicted += evicted as u64;
        evicted
    }

    /// Removes a transaction and every pooled descendant.
    fn remove_recursive(&mut self, txid: &TxId) -> usize {
        let Some(entry) = self.entries.remove(txid) else {
            return 0;
        };
        for input in &entry.tx.inputs {
            self.by_outpoint.remove(&input.prevout);
        }
        let mut removed = 1;
        // Children spend this tx's outputs.
        for vout in 0..entry.tx.outputs.len() as u32 {
            let op = OutPoint { txid: *txid, vout };
            self.created.remove(&op);
            if let Some(child) = self.by_outpoint.get(&op).copied() {
                removed += self.remove_recursive(&child);
            }
        }
        removed
    }

    fn remove_one(&mut self, txid: &TxId) -> bool {
        match self.entries.remove(txid) {
            Some(entry) => {
                for input in &entry.tx.inputs {
                    self.by_outpoint.remove(&input.prevout);
                }
                for vout in 0..entry.tx.outputs.len() as u32 {
                    self.created.remove(&OutPoint { txid: *txid, vout });
                }
                true
            }
            None => false,
        }
    }

    /// Re-validates every pooled transaction against `utxo` (which may
    /// just have been rewritten by a reorganization) and drops entries
    /// that no longer validate — inputs re-spent by the new branch,
    /// locktimes no longer satisfied at `height`, or parents that were
    /// themselves dropped. Returns how many left the pool.
    ///
    /// Bitcoin Core runs the same sweep (`removeForReorg`) after every
    /// reorg; without it the pool can hold transactions that can never
    /// be mined and block conflicting re-broadcasts forever.
    pub fn evict_invalid(&mut self, utxo: &UtxoSet, height: u64, params: &ChainParams) -> usize {
        let before = self.entries.len();
        if before == 0 {
            return 0;
        }
        let mut pending: Vec<Transaction> = self.entries.values().map(|e| e.tx.clone()).collect();
        pending.sort_by_key(|t| t.txid());
        // Rebuild the pool by re-admission: survivors re-validate against
        // the new UTXO view (cheap — the shared sig cache still holds
        // their script verdicts), everything else stays out.
        let saved_stats = self.stats;
        let cache = self.sig_cache.take();
        *self = Mempool {
            sig_cache: cache,
            ..Mempool::default()
        };
        // Fixpoint over dependency order: a child only re-admits after
        // its pooled parent, so loop until no transaction makes it in.
        let mut progressed = true;
        while progressed && !pending.is_empty() {
            progressed = false;
            let mut still_out = Vec::new();
            for tx in pending {
                let retry = tx.clone();
                if self.insert(tx, utxo, height, params).is_ok() {
                    progressed = true;
                } else {
                    still_out.push(retry);
                }
            }
            pending = still_out;
        }
        let dropped = before - self.entries.len();
        self.stats = saved_stats;
        self.stats.evicted += dropped as u64;
        dropped
    }

    /// Drops every pooled transaction — a crash restart losing volatile
    /// state. Returns how many were dropped. Lifetime stats survive (the
    /// metrics layer reads them at end of run).
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.by_outpoint.clear();
        self.created.clear();
        n
    }

    /// Iterates over pooled transactions (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.entries.values().map(|e| &e.tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxOut;
    use crate::wallet::Wallet;
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: ChainParams,
        utxo: UtxoSet,
        wallet: Wallet,
        coins: Vec<(OutPoint, Script)>,
        height: u64,
    }

    fn fixture(n_coins: usize) -> Fixture {
        let mut rng = StdRng::seed_from_u64(7);
        let params = ChainParams::fast_test();
        let wallet = Wallet::generate(&mut rng);
        let cb = Transaction::coinbase(
            0,
            b"m",
            (0..n_coins)
                .map(|_| TxOut {
                    value: 1000,
                    script_pubkey: wallet.locking_script(),
                })
                .collect(),
        );
        let mut utxo = UtxoSet::new();
        utxo.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        let coins = (0..n_coins as u32)
            .map(|vout| {
                (
                    OutPoint {
                        txid: cb.txid(),
                        vout,
                    },
                    wallet.locking_script(),
                )
            })
            .collect();
        Fixture {
            height: params.coinbase_maturity,
            params,
            utxo,
            wallet,
            coins,
        }
    }

    fn payment(f: &Fixture, coin: usize, fee: u64) -> Transaction {
        f.wallet.build_payment(
            vec![f.coins[coin].clone()],
            vec![TxOut {
                value: 1000 - fee,
                script_pubkey: Script::new(),
            }],
            0,
        )
    }

    #[test]
    fn insert_and_report_fee() {
        let f = fixture(1);
        let mut pool = Mempool::new();
        let tx = payment(&f, 0, 25);
        let fee = pool
            .insert(tx.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        assert_eq!(fee, 25);
        assert!(pool.contains(&tx.txid()));
        assert_eq!(pool.total_fees(), 25);
    }

    #[test]
    fn duplicate_rejected() {
        let f = fixture(1);
        let mut pool = Mempool::new();
        let tx = payment(&f, 0, 10);
        pool.insert(tx.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        assert!(matches!(
            pool.insert(tx, &f.utxo, f.height, &f.params),
            Err(MempoolError::Duplicate(_))
        ));
    }

    #[test]
    fn conflicting_double_spend_rejected_first_seen_wins() {
        let f = fixture(1);
        let mut pool = Mempool::new();
        let tx1 = payment(&f, 0, 10);
        let tx2 = payment(&f, 0, 500); // higher fee — still loses: first-seen
        pool.insert(tx1.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        let err = pool.insert(tx2, &f.utxo, f.height, &f.params).unwrap_err();
        assert!(matches!(err, MempoolError::Conflict { existing, .. } if existing == tx1.txid()));
    }

    #[test]
    fn invalid_transaction_rejected() {
        let f = fixture(1);
        let mut pool = Mempool::new();
        let mut tx = payment(&f, 0, 10);
        tx.outputs[0].value = 10_000; // overspend (also breaks the signature)
        assert!(matches!(
            pool.insert(tx, &f.utxo, f.height, &f.params),
            Err(MempoolError::Invalid(_))
        ));
    }

    #[test]
    fn block_template_orders_by_fee_rate() {
        let f = fixture(3);
        let mut pool = Mempool::new();
        let cheap = payment(&f, 0, 1);
        let rich = payment(&f, 1, 300);
        let mid = payment(&f, 2, 50);
        for tx in [&cheap, &rich, &mid] {
            pool.insert(tx.clone(), &f.utxo, f.height, &f.params)
                .unwrap();
        }
        let template = pool.block_template(1 << 20);
        assert_eq!(template.len(), 3);
        assert_eq!(template[0].txid(), rich.txid());
        assert_eq!(template[1].txid(), mid.txid());
        assert_eq!(template[2].txid(), cheap.txid());
    }

    #[test]
    fn block_template_respects_size() {
        let f = fixture(3);
        let mut pool = Mempool::new();
        for i in 0..3 {
            pool.insert(payment(&f, i, 10), &f.utxo, f.height, &f.params)
                .unwrap();
        }
        let one_tx_size = pool.iter().next().unwrap().size();
        let template = pool.block_template(one_tx_size + 10);
        assert_eq!(template.len(), 1);
    }

    #[test]
    fn excluding_template_censors_tx_and_its_descendants() {
        let f = fixture(2);
        let mut pool = Mempool::new();
        let honest = payment(&f, 1, 10);
        let censored = f.wallet.build_payment(
            vec![f.coins[0].clone()],
            vec![TxOut {
                value: 900,
                script_pubkey: f.wallet.locking_script(),
            }],
            0,
        );
        let child = f.wallet.build_payment(
            vec![(
                OutPoint {
                    txid: censored.txid(),
                    vout: 0,
                },
                f.wallet.locking_script(),
            )],
            vec![TxOut {
                value: 800,
                script_pubkey: Script::new(),
            }],
            0,
        );
        for tx in [&honest, &censored, &child] {
            pool.insert(tx.clone(), &f.utxo, f.height, &f.params)
                .unwrap();
        }
        let victim = censored.txid();
        let template = pool.block_template_excluding(1 << 20, |tx| tx.txid() == victim);
        // The censored parent is gone and the dependency rule silently
        // drags its pooled child out with it; the honest payment stays.
        assert_eq!(template.len(), 1);
        assert_eq!(template[0].txid(), honest.txid());
        // Censorship is not eviction: all three stay pooled.
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn remove_confirmed_evicts_tx_and_conflicts() {
        let f = fixture(2);
        let mut pool = Mempool::new();
        let tx_a = payment(&f, 0, 10);
        let tx_b = payment(&f, 1, 10);
        pool.insert(tx_a.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        pool.insert(tx_b.clone(), &f.utxo, f.height, &f.params)
            .unwrap();

        // A block confirms a *conflicting* spend of coin 0 plus tx_b itself.
        let conflict = f.wallet.build_payment(
            vec![f.coins[0].clone()],
            vec![TxOut {
                value: 500,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let evicted = pool.remove_confirmed(&[conflict, tx_b.clone()]);
        assert_eq!(evicted, 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn unconfirmed_chains_accepted_and_templated_in_order() {
        let f = fixture(1);
        let mut pool = Mempool::new();
        let parent = f.wallet.build_payment(
            vec![f.coins[0].clone()],
            vec![TxOut {
                value: 900,
                script_pubkey: f.wallet.locking_script(),
            }],
            0,
        );
        pool.insert(parent.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        // Child spends the parent's unconfirmed output — the BcWAN claim
        // transaction does exactly this to the unconfirmed escrow.
        let child = f.wallet.build_payment(
            vec![(
                OutPoint {
                    txid: parent.txid(),
                    vout: 0,
                },
                f.wallet.locking_script(),
            )],
            vec![TxOut {
                value: 800,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let fee = pool
            .insert(child.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        assert_eq!(fee, 100);
        // The template includes both, parent before child, despite the
        // parent's lower fee rate.
        let template = pool.block_template(1 << 20);
        assert_eq!(template.len(), 2);
        let parent_pos = template
            .iter()
            .position(|t| t.txid() == parent.txid())
            .unwrap();
        let child_pos = template
            .iter()
            .position(|t| t.txid() == child.txid())
            .unwrap();
        assert!(parent_pos < child_pos);
    }

    #[test]
    fn stats_count_accepts_rejects_evictions() {
        let f = fixture(2);
        let mut pool = Mempool::new();
        let tx1 = payment(&f, 0, 10);
        pool.insert(tx1.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        let _ = pool.insert(tx1.clone(), &f.utxo, f.height, &f.params); // duplicate
        let _ = pool.insert(payment(&f, 0, 99), &f.utxo, f.height, &f.params); // conflict
        let mut bad = payment(&f, 1, 10);
        bad.outputs[0].value = 10_000;
        let _ = pool.insert(bad, &f.utxo, f.height, &f.params); // invalid
        pool.remove_confirmed(&[tx1]);
        let s = pool.stats();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.rejected_duplicate, 1);
        assert_eq!(s.rejected_conflict, 1);
        assert_eq!(s.rejected_invalid, 1);
        assert_eq!(s.evicted, 1);
    }

    #[test]
    fn conflict_eviction_takes_descendants() {
        let f = fixture(1);
        let mut pool = Mempool::new();
        let parent = f.wallet.build_payment(
            vec![f.coins[0].clone()],
            vec![TxOut {
                value: 900,
                script_pubkey: f.wallet.locking_script(),
            }],
            0,
        );
        pool.insert(parent.clone(), &f.utxo, f.height, &f.params)
            .unwrap();
        let child = f.wallet.build_payment(
            vec![(
                OutPoint {
                    txid: parent.txid(),
                    vout: 0,
                },
                f.wallet.locking_script(),
            )],
            vec![TxOut {
                value: 800,
                script_pubkey: Script::new(),
            }],
            0,
        );
        pool.insert(child, &f.utxo, f.height, &f.params).unwrap();
        // A block confirms a conflicting spend of the original coin: the
        // parent is evicted and the now-orphaned child with it.
        let conflict = f.wallet.build_payment(
            vec![f.coins[0].clone()],
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let evicted = pool.remove_confirmed(&[conflict]);
        assert_eq!(evicted, 2);
        assert!(pool.is_empty());
    }
}
