//! The unspent-transaction-output set with per-block undo data for reorgs.

use crate::tx::{OutPoint, Transaction, TxOut};
use std::collections::HashMap;
use std::fmt;

/// One unspent output plus the metadata validation needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtxoEntry {
    /// The output itself.
    pub output: TxOut,
    /// Height of the block that created it.
    pub height: u64,
    /// Whether it came from a coinbase (maturity rules apply).
    pub coinbase: bool,
}

/// Undo data for one connected block: the entries its transactions spent,
/// in spend order.
#[derive(Debug, Clone, Default)]
pub struct UndoData {
    spent: Vec<(OutPoint, UtxoEntry)>,
}

impl UndoData {
    /// Rebuilds undo data from a spent-entry list, as read back from a
    /// persistent undo record (see [`crate::codec::decode_undo`]).
    pub fn from_spent(spent: Vec<(OutPoint, UtxoEntry)>) -> Self {
        UndoData { spent }
    }

    /// The entries this block's transactions spent, in spend order.
    pub fn spent_entries(&self) -> &[(OutPoint, UtxoEntry)] {
        &self.spent
    }
}

/// Read access to an unspent-output state: the concrete [`UtxoSet`] or a
/// cheap overlay such as the mempool's pool-extended view.
pub trait UtxoView {
    /// Looks up an unspent output.
    fn view_get(&self, outpoint: &OutPoint) -> Option<&UtxoEntry>;
}

/// The UTXO set.
#[derive(Debug, Clone, Default)]
pub struct UtxoSet {
    map: HashMap<OutPoint, UtxoEntry>,
}

impl UtxoView for UtxoSet {
    fn view_get(&self, outpoint: &OutPoint) -> Option<&UtxoEntry> {
        self.map.get(outpoint)
    }
}

/// Errors applying transactions to the UTXO set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxoError {
    /// Input refers to a missing (unknown or already spent) output.
    MissingInput(OutPoint),
    /// A transaction tried to create an output that already exists.
    DuplicateOutput(OutPoint),
}

impl fmt::Display for UtxoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtxoError::MissingInput(op) => write!(f, "missing input {op}"),
            UtxoError::DuplicateOutput(op) => write!(f, "duplicate output {op}"),
        }
    }
}

impl std::error::Error for UtxoError {}

impl UtxoSet {
    /// An empty set.
    pub fn new() -> Self {
        UtxoSet::default()
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up an unspent output.
    pub fn get(&self, outpoint: &OutPoint) -> Option<&UtxoEntry> {
        self.map.get(outpoint)
    }

    /// Whether an output is unspent.
    pub fn contains(&self, outpoint: &OutPoint) -> bool {
        self.map.contains_key(outpoint)
    }

    /// Total value of all unspent outputs.
    pub fn total_value(&self) -> u64 {
        self.map.values().map(|e| e.output.value).sum()
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&OutPoint, &UtxoEntry)> {
        self.map.iter()
    }

    /// All outpoints locked by scripts matching `predicate` — used by
    /// wallets to find their spendable coins.
    pub fn find<'a>(
        &'a self,
        mut predicate: impl FnMut(&UtxoEntry) -> bool + 'a,
    ) -> impl Iterator<Item = (&'a OutPoint, &'a UtxoEntry)> {
        self.map.iter().filter(move |(_, e)| predicate(e))
    }

    /// Applies one transaction, recording what it spent into `undo`.
    ///
    /// # Errors
    ///
    /// [`UtxoError`] if an input is missing or an output collides; the set
    /// is left unchanged on error.
    pub fn apply_transaction(
        &mut self,
        tx: &Transaction,
        height: u64,
        undo: &mut UndoData,
    ) -> Result<(), UtxoError> {
        let txid = tx.txid();
        // Validate fully before mutating.
        if !tx.is_coinbase() {
            for input in &tx.inputs {
                if !self.map.contains_key(&input.prevout) {
                    return Err(UtxoError::MissingInput(input.prevout));
                }
            }
        }
        for vout in 0..tx.outputs.len() as u32 {
            let op = OutPoint { txid, vout };
            if self.map.contains_key(&op) {
                return Err(UtxoError::DuplicateOutput(op));
            }
        }
        // Spend.
        if !tx.is_coinbase() {
            for input in &tx.inputs {
                let entry = self.map.remove(&input.prevout).expect("checked above");
                undo.spent.push((input.prevout, entry));
            }
        }
        // Create.
        let coinbase = tx.is_coinbase();
        for (vout, output) in tx.outputs.iter().enumerate() {
            self.map.insert(
                OutPoint {
                    txid,
                    vout: vout as u32,
                },
                UtxoEntry {
                    output: output.clone(),
                    height,
                    coinbase,
                },
            );
        }
        Ok(())
    }

    /// Applies a whole block (transactions in order), returning its undo
    /// data.
    ///
    /// # Errors
    ///
    /// On failure the set is restored to its pre-block state.
    pub fn apply_block(
        &mut self,
        transactions: &[Transaction],
        height: u64,
    ) -> Result<UndoData, UtxoError> {
        let mut undo = UndoData::default();
        let mut applied = 0;
        for tx in transactions {
            match self.apply_transaction(tx, height, &mut undo) {
                Ok(()) => applied += 1,
                Err(e) => {
                    // Roll back the partially applied prefix.
                    self.undo_transactions(&transactions[..applied], &undo);
                    return Err(e);
                }
            }
        }
        Ok(undo)
    }

    /// Inserts an entry as loaded from persistent storage — bypasses
    /// spend/create bookkeeping, for the store's cache layer only.
    pub(crate) fn insert_loaded(&mut self, op: OutPoint, entry: UtxoEntry) {
        self.map.insert(op, entry);
    }

    /// Evicts an entry without spending it — the store's cache layer
    /// trimming a clean, disk-backed entry from memory.
    pub(crate) fn remove_loaded(&mut self, op: &OutPoint) {
        self.map.remove(op);
    }

    /// Disconnects a block previously applied with [`UtxoSet::apply_block`].
    ///
    /// `transactions` must be the same list, and `undo` its undo data.
    pub fn undo_block(&mut self, transactions: &[Transaction], undo: &UndoData) {
        self.undo_transactions(transactions, undo);
    }

    fn undo_transactions(&mut self, transactions: &[Transaction], undo: &UndoData) {
        // Per transaction, newest first: drop its created outputs, then
        // restore what it spent. The interleaving matters when a block
        // contains an intra-block spend chain (escrow created and claimed
        // in the same block): restoring the claim's inputs resurrects the
        // escrow output, and only the escrow's own undo step — which runs
        // *after* under reverse order — removes it again. Undoing all
        // creates first and all spends second leaves such outputs behind.
        let mut tail = undo.spent.len();
        for tx in transactions.iter().rev() {
            let txid = tx.txid();
            for vout in 0..tx.outputs.len() as u32 {
                self.map.remove(&OutPoint { txid, vout });
            }
            let spent = if tx.is_coinbase() { 0 } else { tx.inputs.len() };
            for (outpoint, entry) in undo.spent[tail - spent..tail].iter().rev() {
                self.map.insert(*outpoint, entry.clone());
            }
            tail -= spent;
        }
        debug_assert_eq!(tail, 0, "undo data covers exactly these transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{TxId, TxIn, SEQUENCE_FINAL};
    use bcwan_script::Script;

    fn coinbase(height: u64, value: u64) -> Transaction {
        Transaction::coinbase(
            height,
            b"t",
            vec![TxOut {
                value,
                script_pubkey: Script::new(),
            }],
        )
    }

    fn spend(prev: OutPoint, values: &[u64]) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: prev,
                script_sig: Script::new(),
                sequence: SEQUENCE_FINAL,
            }],
            outputs: values
                .iter()
                .map(|&value| TxOut {
                    value,
                    script_pubkey: Script::new(),
                })
                .collect(),
            lock_time: 0,
        }
    }

    #[test]
    fn apply_coinbase_creates_outputs() {
        let mut set = UtxoSet::new();
        let cb = coinbase(0, 100);
        let undo = set.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_value(), 100);
        let entry = set
            .get(&OutPoint {
                txid: cb.txid(),
                vout: 0,
            })
            .unwrap();
        assert!(entry.coinbase);
        assert_eq!(entry.height, 0);
        assert!(undo.spent.is_empty());
    }

    #[test]
    fn spend_moves_value() {
        let mut set = UtxoSet::new();
        let cb = coinbase(0, 100);
        set.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        let tx = spend(
            OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            &[60, 40],
        );
        set.apply_block(std::slice::from_ref(&tx), 1).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_value(), 100);
        assert!(!set.contains(&OutPoint {
            txid: cb.txid(),
            vout: 0
        }));
    }

    #[test]
    fn double_spend_rejected() {
        let mut set = UtxoSet::new();
        let cb = coinbase(0, 100);
        set.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        let prev = OutPoint {
            txid: cb.txid(),
            vout: 0,
        };
        set.apply_block(&[spend(prev, &[100])], 1).unwrap();
        let err = set.apply_block(&[spend(prev, &[1])], 2).unwrap_err();
        assert_eq!(err, UtxoError::MissingInput(prev));
    }

    #[test]
    fn failed_block_leaves_set_unchanged() {
        let mut set = UtxoSet::new();
        let cb = coinbase(0, 100);
        set.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        let before: Vec<_> = set.iter().map(|(k, _)| *k).collect();
        let good = spend(
            OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            &[100],
        );
        let bad = spend(
            OutPoint {
                txid: TxId([0xde; 32]),
                vout: 0,
            },
            &[5],
        );
        assert!(set.apply_block(&[good, bad], 1).is_err());
        let after: Vec<_> = set.iter().map(|(k, _)| *k).collect();
        assert_eq!(before.len(), after.len());
        assert_eq!(set.total_value(), 100);
    }

    #[test]
    fn undo_block_restores_exactly() {
        let mut set = UtxoSet::new();
        let cb = coinbase(0, 100);
        set.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        let snapshot_value = set.total_value();
        let snapshot_len = set.len();

        let txs = vec![spend(
            OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            &[70, 30],
        )];
        let undo = set.apply_block(&txs, 1).unwrap();
        assert_eq!(set.len(), 2);

        set.undo_block(&txs, &undo);
        assert_eq!(set.len(), snapshot_len);
        assert_eq!(set.total_value(), snapshot_value);
        assert!(set.contains(&OutPoint {
            txid: cb.txid(),
            vout: 0
        }));
    }

    #[test]
    fn undo_block_with_intra_block_spend_chain() {
        // Regression: a block holding both a transaction and a spend of
        // its output (escrow + claim mined together). Disconnecting the
        // block must not leave the intermediate output behind: the
        // claim's undo resurrects it, and the escrow's own undo step must
        // then remove it again.
        let mut set = UtxoSet::new();
        let cb = coinbase(0, 100);
        set.apply_block(std::slice::from_ref(&cb), 0).unwrap();
        let snapshot_len = set.len();
        let snapshot_value = set.total_value();

        let escrow = spend(
            OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            &[100],
        );
        let escrow_out = OutPoint {
            txid: escrow.txid(),
            vout: 0,
        };
        let claim = spend(escrow_out, &[100]);
        let txs = vec![escrow, claim.clone()];
        let undo = set.apply_block(&txs, 1).unwrap();
        assert!(!set.contains(&escrow_out), "claimed inside the block");

        set.undo_block(&txs, &undo);
        assert!(!set.contains(&escrow_out), "must not resurrect");
        assert!(!set.contains(&OutPoint {
            txid: claim.txid(),
            vout: 0
        }));
        assert_eq!(set.len(), snapshot_len);
        assert_eq!(set.total_value(), snapshot_value);
    }

    #[test]
    fn value_conservation_across_chain() {
        let mut set = UtxoSet::new();
        let mut minted = 0u64;
        let mut prev: Option<OutPoint> = None;
        for h in 0..10 {
            let cb = coinbase(h, 50);
            minted += 50;
            let mut txs = vec![cb.clone()];
            if let Some(p) = prev {
                txs.push(spend(p, &[25, 25]));
            }
            set.apply_block(&txs, h).unwrap();
            prev = Some(OutPoint {
                txid: cb.txid(),
                vout: 0,
            });
            assert_eq!(set.total_value(), minted, "height {h}");
        }
    }
}
