//! # bcwan-chain
//!
//! The blockchain substrate: a UTXO chain with Bitcoin-style transactions
//! and Multichain-style tunable consensus, standing in for the Multichain
//! daemon the paper's proof of concept ran (§5.1).
//!
//! - [`tx`] — transactions, txids, SIGHASH_ALL signature hashes,
//! - [`wallet`] — single-key wallets and `HASH160` addresses (the BcWAN
//!   blockchain identity `@R`),
//! - [`merkle`] — merkle roots and inclusion proofs,
//! - [`block`] — headers, proof-of-work, block assembly,
//! - [`params`] — the tunable consensus knobs Multichain advertises
//!   (block interval, block size) and the **block-verification stall
//!   model** behind the paper's Fig. 6,
//! - [`utxo`] — the UTXO set with reorg-grade undo data,
//! - [`validate`] — transaction and block validation (full script
//!   verification, BIP-65 lock-time finality, coinbase maturity),
//! - [`mempool`] — first-seen transaction pool with fee-ordered templates,
//! - [`chainstate`] — best-chain selection and reorganization,
//! - [`codec`] — canonical binary decoding shared by the wire layer and
//!   the store (txids survive every round-trip),
//! - [`store`] — persistent chain storage: append-only block/undo
//!   files, a write-back coins cache over a flat on-disk table, and a
//!   crash-safe manifest (see `Chain::create_with_store` /
//!   `Chain::open_store`),
//! - [`pos`] — stake-weighted leader election for the §6 consensus
//!   ablation.
//!
//! ## Example
//!
//! ```
//! use bcwan_chain::chainstate::Chain;
//! use bcwan_chain::params::ChainParams;
//! use bcwan_chain::wallet::Wallet;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let wallet = Wallet::generate(&mut rng);
//! let params = ChainParams::multichain_like();
//! let genesis = Chain::make_genesis(&params, &[(wallet.address(), 1_000_000)]);
//! let chain = Chain::new(params, genesis);
//! assert_eq!(chain.height(), 0);
//! assert_eq!(chain.utxo().total_value(), 1_000_000);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod chainstate;
pub mod codec;
pub mod mempool;
pub mod merkle;
pub mod params;
pub mod pos;
pub mod store;
pub mod tx;
pub mod utxo;
pub mod validate;
pub mod wallet;

pub use block::{Block, BlockHash, BlockHeader};
pub use chainstate::{
    BlockAction, Chain, ChainError, ChainStats, OpenedChain, ReorgInfo, StoreSummary,
};
pub use codec::CodecError;
pub use mempool::{Mempool, MempoolError, MempoolStats};
pub use params::{ChainParams, StallModel};
pub use store::{CoinsCache, StoreConfig, StoreError};
pub use tx::{OutPoint, Transaction, TxId, TxIn, TxOut, SEQUENCE_FINAL};
pub use utxo::{UtxoEntry, UtxoSet};
pub use validate::{
    validate_block, validate_block_with, validate_transaction, validate_transaction_cached,
    BlockError, BlockValidationOptions, SigCache, SigKind, TxError,
};
pub use wallet::{Address, Wallet};
