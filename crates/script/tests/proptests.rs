//! Property tests: codec round trips and interpreter robustness.

// QUARANTINED (see ROADMAP "Open items"): the proptest crate cannot be
// fetched in the offline build environment, so this suite only compiles
// with `--features proptest-tests` after restoring the proptest
// dev-dependency in Cargo.toml. The properties themselves are still the
// reference spec for this crate's invariants.
#![cfg(feature = "proptest-tests")]

use bcwan_script::interpreter::{run_script, verify_spend, ExecContext, RejectAllChecker};
use bcwan_script::{decode_num, encode_num, Instruction, Opcode, Script};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    // OP_0 is canonically an empty push: the codec normalizes Op(Op0) to
    // Push([]), so it is generated via the push arm instead.
    let ops: Vec<Opcode> = Opcode::ALL
        .into_iter()
        .filter(|op| *op != Opcode::Op0)
        .collect();
    proptest::sample::select(ops)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..80).prop_map(Instruction::Push),
        arb_opcode().prop_map(Instruction::Op),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn script_wire_round_trip(instrs in proptest::collection::vec(arb_instruction(), 0..24)) {
        let script = Script::from_instructions(instrs);
        let bytes = script.to_bytes();
        let parsed = Script::from_bytes(&bytes).unwrap();
        // Push(empty) encodes as OP_0 and parses back to Push(empty), so
        // equality holds including that case.
        prop_assert_eq!(parsed, script);
    }

    #[test]
    fn script_num_round_trip(n in any::<i64>()) {
        // Full 8-byte range round-trips except i64::MIN (whose magnitude
        // overflows); Bitcoin's CScriptNum has the same carve-out.
        prop_assume!(n != i64::MIN);
        prop_assert_eq!(decode_num(&encode_num(n)), Some(n));
    }

    #[test]
    fn script_num_encoding_is_minimal(n in any::<i32>()) {
        let n = i64::from(n);
        let enc = encode_num(n);
        if n == 0 {
            prop_assert!(enc.is_empty());
        } else {
            // No redundant trailing byte: the encoding of n must be the
            // shortest that still round-trips.
            prop_assert!(enc.len() <= 5);
            let shorter = &enc[..enc.len() - 1];
            prop_assert_ne!(decode_num(shorter), Some(n));
        }
    }

    #[test]
    fn interpreter_never_panics(instrs in proptest::collection::vec(arb_instruction(), 0..32)) {
        let script = Script::from_instructions(instrs);
        let checker = RejectAllChecker;
        let ctx = ExecContext { checker: &checker, lock_time: 50, input_final: false };
        // Result content is arbitrary; absence of panic is the property.
        let _ = run_script(&script, &ctx);
    }

    #[test]
    fn verify_spend_never_panics(
        sig_pushes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..6),
        lock in proptest::collection::vec(arb_instruction(), 0..24),
        lock_time in any::<u64>(),
    ) {
        let script_sig = Script::from_instructions(
            sig_pushes.into_iter().map(Instruction::Push).collect(),
        );
        let script_pubkey = Script::from_instructions(lock);
        let checker = RejectAllChecker;
        let ctx = ExecContext { checker: &checker, lock_time, input_final: false };
        let _ = verify_spend(&script_sig, &script_pubkey, &ctx);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Script::from_bytes(&bytes);
    }

    #[test]
    fn arithmetic_ops_match_reference(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let checker = RejectAllChecker;
        let ctx = ExecContext { checker: &checker, lock_time: 0, input_final: false };
        for (op, expect) in [
            (Opcode::Add, a + b),
            (Opcode::Sub, a - b),
            (Opcode::Min, a.min(b)),
            (Opcode::Max, a.max(b)),
        ] {
            let script = Script::builder()
                .push_num(a)
                .push_num(b)
                .op(op)
                .push_num(expect)
                .op(Opcode::NumEqual)
                .build();
            prop_assert_eq!(run_script(&script, &ctx), Ok(true), "{} {} {}", a, op, b);
        }
    }
}
