//! The script interpreter.
//!
//! Evaluation follows Bitcoin's model: the unlocking script (scriptSig)
//! runs first on an empty stack, then the locking script (scriptPubKey)
//! runs on the resulting stack; the spend is authorized iff execution
//! succeeds and the final top-of-stack is truthy.
//!
//! Two operators need transaction context, supplied via [`ExecContext`]:
//! `OP_CHECKSIG` (the signature hash of the spending transaction) and
//! `OP_CHECKLOCKTIMEVERIFY` (the spending transaction's lock time, per
//! BIP-65). `OP_CHECKRSA512PAIR` is self-contained: it parses the two
//! stack items as RSA keys and verifies the pair relation.

use crate::opcode::Opcode;
use crate::script::{decode_num, Instruction, Script};
use bcwan_crypto::ecdsa::{EcdsaPublicKey, Signature};
use bcwan_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use bcwan_crypto::{hash160, ripemd160, sha256, sha256d};
use std::fmt;

/// Stack item limit (Bitcoin's is 1000).
const MAX_STACK: usize = 1000;
/// Executed non-push operation limit (Bitcoin's is 201).
const MAX_OPS: usize = 201;
/// Maximum script size in bytes (Bitcoin's is 10000).
const MAX_SCRIPT_BYTES: usize = 10_000;
/// Maximum pushed element size (Bitcoin's is 520) — relaxed enough for a
/// serialized RSA-2048 private key in the key-size ablation.
const MAX_ELEMENT_BYTES: usize = 1600;

/// Verifies ECDSA signatures against the spending transaction.
///
/// The chain crate implements this over its signature-hash algorithm; unit
/// tests use simple closures via [`DigestChecker`].
pub trait SignatureChecker {
    /// Returns whether `sig` by `pubkey` authorizes the spending
    /// transaction. Both arguments arrive as raw stack bytes.
    fn check_signature(&self, pubkey: &[u8], sig: &[u8]) -> bool;
}

/// A [`SignatureChecker`] that validates signatures over a fixed digest —
/// the common case, where the digest is the transaction sighash.
#[derive(Debug, Clone)]
pub struct DigestChecker {
    /// The 32-byte message digest signatures must cover.
    pub digest: [u8; 32],
}

impl SignatureChecker for DigestChecker {
    fn check_signature(&self, pubkey: &[u8], sig: &[u8]) -> bool {
        let Ok(pk) = EcdsaPublicKey::from_bytes(pubkey) else {
            return false;
        };
        let Ok(sig) = Signature::from_bytes(sig) else {
            return false;
        };
        pk.verify_digest(&self.digest, &sig)
    }
}

/// A [`SignatureChecker`] that *defers* ECDSA verification for batching.
///
/// Parseable `(pubkey, signature)` pairs are recorded and optimistically
/// reported valid; malformed bytes are rejected exactly as
/// [`DigestChecker`] would (parsing needs no elliptic-curve work, so that
/// verdict is exact). After the run, [`into_recorded`] yields the pairs
/// for bulk verification — the chain crate feeds them to
/// `bcwan_crypto::batch_verify` across many spends at once.
///
/// An optimistic run is only authoritative when *every* recorded
/// signature later proves valid: a deferred `true` may have steered
/// execution down a different branch than the real verdict would (e.g. a
/// `CHECKSIG` result consumed by `OP_NOT`), so on any batch failure the
/// script must be re-executed with a real checker.
///
/// [`into_recorded`]: DeferringChecker::into_recorded
#[derive(Debug, Default)]
pub struct DeferringChecker {
    recorded: std::cell::RefCell<Vec<(EcdsaPublicKey, Signature)>>,
}

impl DeferringChecker {
    /// A fresh checker with nothing recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(pubkey, signature)` pairs recorded during execution, in
    /// evaluation order.
    pub fn into_recorded(self) -> Vec<(EcdsaPublicKey, Signature)> {
        self.recorded.into_inner()
    }
}

impl SignatureChecker for DeferringChecker {
    fn check_signature(&self, pubkey: &[u8], sig: &[u8]) -> bool {
        match (
            EcdsaPublicKey::from_bytes(pubkey),
            Signature::from_bytes(sig),
        ) {
            (Ok(pk), Ok(sig)) => {
                self.recorded.borrow_mut().push((pk, sig));
                true
            }
            _ => false,
        }
    }
}

/// A checker that rejects everything (for scripts without signatures).
#[derive(Debug, Clone, Default)]
pub struct RejectAllChecker;

impl SignatureChecker for RejectAllChecker {
    fn check_signature(&self, _pubkey: &[u8], _sig: &[u8]) -> bool {
        false
    }
}

/// Transaction context for context-dependent operators.
pub struct ExecContext<'a> {
    /// Signature verification against the spending transaction.
    pub checker: &'a dyn SignatureChecker,
    /// The spending transaction's lock time (block height in this chain).
    pub lock_time: u64,
    /// Whether the spending input's sequence is final (`0xffffffff`), which
    /// disables lock-time semantics per BIP-65.
    pub input_final: bool,
}

impl fmt::Debug for ExecContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecContext")
            .field("lock_time", &self.lock_time)
            .field("input_final", &self.input_final)
            .finish()
    }
}

/// Script execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// An operation needed more stack items than present.
    StackUnderflow(Opcode),
    /// The stack grew beyond the 1000-item limit.
    StackOverflow,
    /// More than the 201-operation limit executed.
    TooManyOps,
    /// Script exceeds the 10 000-byte limit.
    ScriptTooLarge(usize),
    /// A pushed element exceeds the 1600-byte limit.
    ElementTooLarge(usize),
    /// `OP_VERIFY`/`OP_EQUALVERIFY`/… failed.
    VerifyFailed(Opcode),
    /// `OP_RETURN` executed (output is unspendable by design).
    OpReturn,
    /// Unbalanced `OP_IF`/`OP_ELSE`/`OP_ENDIF`.
    UnbalancedConditional,
    /// A stack item was not a valid script number.
    BadNumber,
    /// `OP_CHECKLOCKTIMEVERIFY` requirements not met.
    LockTimeNotSatisfied {
        /// Height required by the script.
        required: i64,
        /// Lock time carried by the spending transaction.
        actual: u64,
    },
    /// Unlocking scripts may only contain pushes (Bitcoin's `SIGPUSHONLY`).
    SigScriptNotPushOnly,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::StackUnderflow(op) => write!(f, "stack underflow at {op}"),
            ScriptError::StackOverflow => write!(f, "stack overflow"),
            ScriptError::TooManyOps => write!(f, "operation limit exceeded"),
            ScriptError::ScriptTooLarge(n) => write!(f, "script of {n} bytes too large"),
            ScriptError::ElementTooLarge(n) => write!(f, "element of {n} bytes too large"),
            ScriptError::VerifyFailed(op) => write!(f, "{op} failed"),
            ScriptError::OpReturn => write!(f, "op_return executed"),
            ScriptError::UnbalancedConditional => write!(f, "unbalanced conditional"),
            ScriptError::BadNumber => write!(f, "malformed script number"),
            ScriptError::LockTimeNotSatisfied { required, actual } => {
                write!(f, "lock time {required} not satisfied by {actual}")
            }
            ScriptError::SigScriptNotPushOnly => {
                write!(f, "unlocking script contains non-push operations")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

fn truthy(item: &[u8]) -> bool {
    // Bitcoin semantics: all-zero (with optional sign bit on last byte) is false.
    for (i, &b) in item.iter().enumerate() {
        if b != 0 {
            return !(i == item.len() - 1 && b == 0x80);
        }
    }
    false
}

fn bool_item(b: bool) -> Vec<u8> {
    if b {
        vec![1]
    } else {
        Vec::new()
    }
}

/// Verifies a spend: runs `script_sig` then `script_pubkey`.
///
/// # Errors
///
/// Any [`ScriptError`] raised during execution; a clean run that leaves a
/// falsy top-of-stack returns `Ok(false)`.
pub fn verify_spend(
    script_sig: &Script,
    script_pubkey: &Script,
    ctx: &ExecContext<'_>,
) -> Result<bool, ScriptError> {
    if script_sig
        .instructions()
        .iter()
        .any(|i| matches!(i, Instruction::Op(_)))
    {
        return Err(ScriptError::SigScriptNotPushOnly);
    }
    let mut machine = Machine::new(ctx);
    machine.execute(script_sig)?;
    machine.execute(script_pubkey)?;
    Ok(machine.stack.last().map(|top| truthy(top)).unwrap_or(false))
}

/// Executes a single script on an empty stack and reports the final truth
/// value (useful for tests and diagnostics).
pub fn run_script(script: &Script, ctx: &ExecContext<'_>) -> Result<bool, ScriptError> {
    let mut machine = Machine::new(ctx);
    machine.execute(script)?;
    Ok(machine.stack.last().map(|top| truthy(top)).unwrap_or(false))
}

struct Machine<'a, 'c> {
    stack: Vec<Vec<u8>>,
    ops_executed: usize,
    ctx: &'a ExecContext<'c>,
}

impl<'a, 'c> Machine<'a, 'c> {
    fn new(ctx: &'a ExecContext<'c>) -> Self {
        Machine {
            stack: Vec::new(),
            ops_executed: 0,
            ctx,
        }
    }

    fn pop(&mut self, op: Opcode) -> Result<Vec<u8>, ScriptError> {
        self.stack.pop().ok_or(ScriptError::StackUnderflow(op))
    }

    fn pop_num(&mut self, op: Opcode) -> Result<i64, ScriptError> {
        let item = self.pop(op)?;
        decode_num(&item).ok_or(ScriptError::BadNumber)
    }

    fn push(&mut self, item: Vec<u8>) -> Result<(), ScriptError> {
        if item.len() > MAX_ELEMENT_BYTES {
            return Err(ScriptError::ElementTooLarge(item.len()));
        }
        if self.stack.len() >= MAX_STACK {
            return Err(ScriptError::StackOverflow);
        }
        self.stack.push(item);
        Ok(())
    }

    fn execute(&mut self, script: &Script) -> Result<(), ScriptError> {
        let size = script.byte_len();
        if size > MAX_SCRIPT_BYTES {
            return Err(ScriptError::ScriptTooLarge(size));
        }
        // Conditional execution state: one bool per nested OP_IF; an entry
        // is true when the current branch executes.
        let mut cond: Vec<bool> = Vec::new();

        for instr in script.instructions() {
            let executing = cond.iter().all(|&c| c);
            match instr {
                Instruction::Push(data) => {
                    if executing {
                        self.push(data.clone())?;
                    }
                }
                Instruction::Op(op) => {
                    // Flow control ops run even in skipped branches to keep
                    // nesting balanced.
                    match op {
                        Opcode::If | Opcode::NotIf => {
                            if executing {
                                let v = self.pop(*op)?;
                                let taken = truthy(&v);
                                cond.push(if *op == Opcode::If { taken } else { !taken });
                            } else {
                                cond.push(false);
                            }
                            continue;
                        }
                        Opcode::Else => {
                            if cond.is_empty() {
                                return Err(ScriptError::UnbalancedConditional);
                            }
                            // Only flip if the enclosing scope executes.
                            let outer = cond.len() - 1;
                            if cond[..outer].iter().all(|&c| c) {
                                cond[outer] = !cond[outer];
                            }
                            continue;
                        }
                        Opcode::EndIf => {
                            if cond.pop().is_none() {
                                return Err(ScriptError::UnbalancedConditional);
                            }
                            continue;
                        }
                        _ => {}
                    }
                    if !executing {
                        continue;
                    }
                    self.ops_executed += 1;
                    if self.ops_executed > MAX_OPS {
                        return Err(ScriptError::TooManyOps);
                    }
                    self.execute_op(*op)?;
                }
            }
        }
        if !cond.is_empty() {
            return Err(ScriptError::UnbalancedConditional);
        }
        Ok(())
    }

    fn execute_op(&mut self, op: Opcode) -> Result<(), ScriptError> {
        match op {
            // Flow control handled by the caller.
            Opcode::If | Opcode::NotIf | Opcode::Else | Opcode::EndIf => unreachable!(),

            Opcode::Op0 => self.push(Vec::new())?,
            Opcode::Op1 | Opcode::Op2 | Opcode::Op3 | Opcode::Op16 => {
                let n = op.small_int().expect("small int opcode");
                self.push(crate::script::encode_num(n))?;
            }
            Opcode::Nop => {}
            Opcode::Verify => {
                let v = self.pop(op)?;
                if !truthy(&v) {
                    return Err(ScriptError::VerifyFailed(op));
                }
            }
            Opcode::Return => return Err(ScriptError::OpReturn),

            Opcode::Dup => {
                let top = self.pop(op)?;
                self.push(top.clone())?;
                self.push(top)?;
            }
            Opcode::Drop => {
                self.pop(op)?;
            }
            Opcode::Nip => {
                let top = self.pop(op)?;
                self.pop(op)?;
                self.push(top)?;
            }
            Opcode::Over => {
                let a = self.pop(op)?;
                let b = self.pop(op)?;
                self.push(b.clone())?;
                self.push(a)?;
                self.push(b)?;
            }
            Opcode::Swap => {
                let a = self.pop(op)?;
                let b = self.pop(op)?;
                self.push(a)?;
                self.push(b)?;
            }
            Opcode::Rot => {
                let c = self.pop(op)?;
                let b = self.pop(op)?;
                let a = self.pop(op)?;
                self.push(b)?;
                self.push(c)?;
                self.push(a)?;
            }
            Opcode::Depth => {
                let n = self.stack.len() as i64;
                self.push(crate::script::encode_num(n))?;
            }
            Opcode::Size => {
                let top = self.stack.last().ok_or(ScriptError::StackUnderflow(op))?;
                let n = top.len() as i64;
                self.push(crate::script::encode_num(n))?;
            }

            Opcode::Equal | Opcode::EqualVerify => {
                let a = self.pop(op)?;
                let b = self.pop(op)?;
                let eq = a == b;
                if op == Opcode::EqualVerify {
                    if !eq {
                        return Err(ScriptError::VerifyFailed(op));
                    }
                } else {
                    self.push(bool_item(eq))?;
                }
            }

            Opcode::Add1 => {
                let a = self.pop_num(op)?;
                self.push(crate::script::encode_num(a + 1))?;
            }
            Opcode::Sub1 => {
                let a = self.pop_num(op)?;
                self.push(crate::script::encode_num(a - 1))?;
            }
            Opcode::Not => {
                let a = self.pop(op)?;
                self.push(bool_item(!truthy(&a)))?;
            }
            Opcode::Add => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                self.push(crate::script::encode_num(a + b))?;
            }
            Opcode::Sub => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                self.push(crate::script::encode_num(a - b))?;
            }
            Opcode::BoolAnd => {
                let b = self.pop(op)?;
                let a = self.pop(op)?;
                self.push(bool_item(truthy(&a) && truthy(&b)))?;
            }
            Opcode::BoolOr => {
                let b = self.pop(op)?;
                let a = self.pop(op)?;
                self.push(bool_item(truthy(&a) || truthy(&b)))?;
            }
            Opcode::NumEqual | Opcode::NumEqualVerify => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                let eq = a == b;
                if op == Opcode::NumEqualVerify {
                    if !eq {
                        return Err(ScriptError::VerifyFailed(op));
                    }
                } else {
                    self.push(bool_item(eq))?;
                }
            }
            Opcode::LessThan => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                self.push(bool_item(a < b))?;
            }
            Opcode::GreaterThan => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                self.push(bool_item(a > b))?;
            }
            Opcode::Min => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                self.push(crate::script::encode_num(a.min(b)))?;
            }
            Opcode::Max => {
                let b = self.pop_num(op)?;
                let a = self.pop_num(op)?;
                self.push(crate::script::encode_num(a.max(b)))?;
            }
            Opcode::Within => {
                let max = self.pop_num(op)?;
                let min = self.pop_num(op)?;
                let x = self.pop_num(op)?;
                self.push(bool_item(min <= x && x < max))?;
            }

            Opcode::Ripemd160 => {
                let a = self.pop(op)?;
                self.push(ripemd160(&a).to_vec())?;
            }
            Opcode::Sha256 => {
                let a = self.pop(op)?;
                self.push(sha256(&a).to_vec())?;
            }
            Opcode::Hash160 => {
                let a = self.pop(op)?;
                self.push(hash160(&a).to_vec())?;
            }
            Opcode::Hash256 => {
                let a = self.pop(op)?;
                self.push(sha256d(&a).to_vec())?;
            }

            Opcode::CheckSig | Opcode::CheckSigVerify => {
                let pubkey = self.pop(op)?;
                let sig = self.pop(op)?;
                let ok = self.ctx.checker.check_signature(&pubkey, &sig);
                if op == Opcode::CheckSigVerify {
                    if !ok {
                        return Err(ScriptError::VerifyFailed(op));
                    }
                } else {
                    self.push(bool_item(ok))?;
                }
            }

            Opcode::CheckLockTimeVerify => {
                // BIP-65: peek (do not pop) the required height.
                let item = self
                    .stack
                    .last()
                    .ok_or(ScriptError::StackUnderflow(op))?
                    .clone();
                let required = decode_num(&item).ok_or(ScriptError::BadNumber)?;
                if required < 0 || self.ctx.input_final || (self.ctx.lock_time as i64) < required {
                    return Err(ScriptError::LockTimeNotSatisfied {
                        required,
                        actual: self.ctx.lock_time,
                    });
                }
            }

            Opcode::CheckRsa512Pair => {
                // Stack: ... <rsaPrivKey> <rsaPubKey> (pubkey pushed last by
                // the locking script, per paper Listing 1 line 1-2).
                let pub_bytes = self.pop(op)?;
                let priv_bytes = self.pop(op)?;
                let matches = match (
                    RsaPublicKey::from_bytes(&pub_bytes),
                    RsaPrivateKey::from_bytes(&priv_bytes),
                ) {
                    (Ok(pk), Ok(sk)) => pk.matches_private(&sk),
                    _ => false,
                };
                self.push(bool_item(matches))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;

    fn ctx_with<'a>(checker: &'a dyn SignatureChecker) -> ExecContext<'a> {
        ExecContext {
            checker,
            lock_time: 0,
            input_final: false,
        }
    }

    fn reject() -> RejectAllChecker {
        RejectAllChecker
    }

    #[test]
    fn truthiness_rules() {
        assert!(!truthy(&[]));
        assert!(!truthy(&[0]));
        assert!(!truthy(&[0, 0]));
        assert!(!truthy(&[0, 0x80])); // negative zero
        assert!(truthy(&[1]));
        assert!(truthy(&[0, 1]));
        assert!(truthy(&[0x80, 0]));
    }

    #[test]
    fn push_and_equal() {
        let checker = reject();
        let s = Script::builder()
            .push(vec![1, 2])
            .push(vec![1, 2])
            .op(Opcode::Equal)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(true));
    }

    #[test]
    fn arithmetic_ops() {
        let checker = reject();
        let s = Script::builder()
            .push_num(5)
            .push_num(3)
            .op(Opcode::Sub) // 2
            .push_num(2)
            .op(Opcode::NumEqual)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(true));
    }

    #[test]
    fn within_bounds() {
        let checker = reject();
        for (x, lo, hi, expect) in [(5, 1, 10, true), (1, 1, 10, true), (10, 1, 10, false)] {
            let s = Script::builder()
                .push_num(x)
                .push_num(lo)
                .push_num(hi)
                .op(Opcode::Within)
                .build();
            assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(expect), "{x}");
        }
    }

    #[test]
    fn conditionals_take_correct_branch() {
        let checker = reject();
        // IF … pushes 0xAA, ELSE pushes 0xBB.
        for (guard, expect) in [(1i64, vec![0xaa]), (0, vec![0xbb])] {
            let s = Script::builder()
                .push_num(guard)
                .op(Opcode::If)
                .push(vec![0xaa])
                .op(Opcode::Else)
                .push(vec![0xbb])
                .op(Opcode::EndIf)
                .push(expect.clone())
                .op(Opcode::Equal)
                .build();
            assert_eq!(
                run_script(&s, &ctx_with(&checker)),
                Ok(true),
                "guard={guard}"
            );
        }
    }

    #[test]
    fn nested_conditionals() {
        let checker = reject();
        let s = Script::builder()
            .push_num(1)
            .op(Opcode::If)
            .push_num(0)
            .op(Opcode::If)
            .push(vec![0x01])
            .op(Opcode::Else)
            .push(vec![0x02])
            .op(Opcode::EndIf)
            .op(Opcode::Else)
            .push(vec![0x03])
            .op(Opcode::EndIf)
            .push(vec![0x02])
            .op(Opcode::Equal)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(true));
    }

    #[test]
    fn unbalanced_conditionals_rejected() {
        let checker = reject();
        let dangling_if = Script::builder().push_num(1).op(Opcode::If).build();
        assert_eq!(
            run_script(&dangling_if, &ctx_with(&checker)),
            Err(ScriptError::UnbalancedConditional)
        );
        let stray_endif = Script::builder().op(Opcode::EndIf).build();
        assert_eq!(
            run_script(&stray_endif, &ctx_with(&checker)),
            Err(ScriptError::UnbalancedConditional)
        );
        let stray_else = Script::builder().op(Opcode::Else).build();
        assert_eq!(
            run_script(&stray_else, &ctx_with(&checker)),
            Err(ScriptError::UnbalancedConditional)
        );
    }

    #[test]
    fn op_return_fails_execution() {
        let checker = reject();
        let s = Script::builder().op(Opcode::Return).push(vec![1]).build();
        assert_eq!(
            run_script(&s, &ctx_with(&checker)),
            Err(ScriptError::OpReturn)
        );
    }

    #[test]
    fn stack_underflow_reported() {
        let checker = reject();
        let s = Script::builder().op(Opcode::Dup).build();
        assert_eq!(
            run_script(&s, &ctx_with(&checker)),
            Err(ScriptError::StackUnderflow(Opcode::Dup))
        );
    }

    #[test]
    fn hash_opcodes() {
        let checker = reject();
        let s = Script::builder()
            .push(b"abc".to_vec())
            .op(Opcode::Sha256)
            .push(
                bcwan_crypto::hex::decode(
                    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
                )
                .unwrap(),
            )
            .op(Opcode::Equal)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(true));
    }

    #[test]
    fn checksig_uses_context() {
        struct AlwaysOk;
        impl SignatureChecker for AlwaysOk {
            fn check_signature(&self, _p: &[u8], _s: &[u8]) -> bool {
                true
            }
        }
        let ok = AlwaysOk;
        let s = Script::builder()
            .push(vec![1; 64])
            .push(vec![2; 33])
            .op(Opcode::CheckSig)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&ok)), Ok(true));
        let no = reject();
        assert_eq!(run_script(&s, &ctx_with(&no)), Ok(false));
    }

    #[test]
    fn cltv_semantics() {
        let checker = reject();
        let script = Script::builder()
            .push_num(100)
            .op(Opcode::CheckLockTimeVerify)
            .op(Opcode::Verify)
            .push_num(1)
            .build();
        // Lock time too small → error.
        let early = ExecContext {
            checker: &checker,
            lock_time: 99,
            input_final: false,
        };
        assert!(matches!(
            run_script(&script, &early),
            Err(ScriptError::LockTimeNotSatisfied {
                required: 100,
                actual: 99
            })
        ));
        // Exactly at the height → OK (CLTV leaves the number; Verify pops it).
        let at = ExecContext {
            checker: &checker,
            lock_time: 100,
            input_final: false,
        };
        assert_eq!(run_script(&script, &at), Ok(true));
        // Final input disables lock time.
        let final_input = ExecContext {
            checker: &checker,
            lock_time: 500,
            input_final: true,
        };
        assert!(run_script(&script, &final_input).is_err());
    }

    #[test]
    fn checkrsa512pair_accepts_matching_pair() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (pk, sk) = bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let checker = reject();
        let good = Script::builder()
            .push(sk.to_bytes())
            .push(pk.to_bytes())
            .op(Opcode::CheckRsa512Pair)
            .build();
        assert_eq!(run_script(&good, &ctx_with(&checker)), Ok(true));

        // Wrong private key.
        let (_, other_sk) =
            bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let bad = Script::builder()
            .push(other_sk.to_bytes())
            .push(pk.to_bytes())
            .op(Opcode::CheckRsa512Pair)
            .build();
        assert_eq!(run_script(&bad, &ctx_with(&checker)), Ok(false));

        // Garbage bytes → false, not an execution error.
        let garbage = Script::builder()
            .push(vec![0xff; 8])
            .push(pk.to_bytes())
            .op(Opcode::CheckRsa512Pair)
            .build();
        assert_eq!(run_script(&garbage, &ctx_with(&checker)), Ok(false));
    }

    #[test]
    fn verify_spend_requires_push_only_sig() {
        let checker = reject();
        let bad_sig = Script::builder().op(Opcode::Dup).build();
        let pubkey = Script::builder().push_num(1).build();
        assert_eq!(
            verify_spend(&bad_sig, &pubkey, &ctx_with(&checker)),
            Err(ScriptError::SigScriptNotPushOnly)
        );
    }

    #[test]
    fn verify_spend_joins_stacks() {
        let checker = reject();
        let sig = Script::builder().push(vec![7; 4]).build();
        let pubkey = Script::builder().push(vec![7; 4]).op(Opcode::Equal).build();
        assert_eq!(verify_spend(&sig, &pubkey, &ctx_with(&checker)), Ok(true));
    }

    #[test]
    fn empty_scripts_fail_cleanly() {
        let checker = reject();
        assert_eq!(
            verify_spend(&Script::new(), &Script::new(), &ctx_with(&checker)),
            Ok(false)
        );
    }

    #[test]
    fn ops_limit_enforced() {
        let checker = reject();
        let mut builder = Script::builder().push_num(1);
        for _ in 0..300 {
            builder = builder.op(Opcode::Dup).op(Opcode::Drop);
        }
        let s = builder.build();
        assert_eq!(
            run_script(&s, &ctx_with(&checker)),
            Err(ScriptError::TooManyOps)
        );
    }

    #[test]
    fn stack_ops() {
        let checker = reject();
        // 1 2 3 ROT  → 2 3 1 ; SWAP → 2 1 3 ; DROP → 2 1 ; NIP → 1
        let s = Script::builder()
            .push_num(1)
            .push_num(2)
            .push_num(3)
            .op(Opcode::Rot)
            .op(Opcode::Swap)
            .op(Opcode::Drop)
            .op(Opcode::Nip)
            .push_num(1)
            .op(Opcode::NumEqual)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(true));
    }

    #[test]
    fn depth_and_size() {
        let checker = reject();
        let s = Script::builder()
            .push(vec![0xaa; 5])
            .op(Opcode::Size) // pushes 5
            .push_num(5)
            .op(Opcode::NumEqualVerify)
            .op(Opcode::Depth) // stack: [aa×5] → depth 1
            .push_num(1)
            .op(Opcode::NumEqual)
            .build();
        assert_eq!(run_script(&s, &ctx_with(&checker)), Ok(true));
    }
}
