//! Script representation, builder, and wire serialization.

use crate::opcode::Opcode;
use std::fmt;

/// One element of a script: a data push or an operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Pushes literal bytes onto the stack.
    Push(Vec<u8>),
    /// Executes an operator.
    Op(Opcode),
}

/// A script: an ordered list of instructions.
///
/// # Examples
///
/// Building the paper's Listing 1 manually (the canonical constructor is
/// [`crate::templates::ephemeral_key_release`]):
///
/// ```
/// use bcwan_script::{Opcode, Script};
///
/// let script = Script::builder()
///     .push(vec![1, 2, 3])          // <rsaPubKey>
///     .op(Opcode::CheckRsa512Pair)
///     .op(Opcode::If)
///     // ...
///     .op(Opcode::EndIf)
///     .op(Opcode::CheckSig)
///     .build();
/// assert_eq!(script.instructions().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Script {
    instructions: Vec<Instruction>,
}

/// Error from parsing script bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseScriptError {
    /// A push declared more bytes than remained.
    TruncatedPush {
        /// Bytes declared by the push prefix.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// An undefined opcode byte.
    UnknownOpcode(u8),
    /// Input ended inside a length prefix.
    TruncatedPrefix,
}

impl fmt::Display for ParseScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseScriptError::TruncatedPush {
                declared,
                available,
            } => {
                write!(f, "push of {declared} bytes but only {available} remain")
            }
            ParseScriptError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            ParseScriptError::TruncatedPrefix => write!(f, "truncated push length prefix"),
        }
    }
}

impl std::error::Error for ParseScriptError {}

// Direct pushes cover 1..=75 bytes, as in Bitcoin.
const MAX_DIRECT_PUSH: usize = 75;
const OP_PUSHDATA1: u8 = 0x4c;
const OP_PUSHDATA2: u8 = 0x4d;

impl Script {
    /// An empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Starts a builder.
    pub fn builder() -> ScriptBuilder {
        ScriptBuilder {
            instructions: Vec::new(),
        }
    }

    /// Builds a script from instructions.
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Script { instructions }
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Whether the script starts with `OP_RETURN` (an unspendable data
    /// carrier — BcWAN's IP-directory announcements use this form).
    pub fn is_op_return(&self) -> bool {
        matches!(
            self.instructions.first(),
            Some(Instruction::Op(Opcode::Return))
        )
    }

    /// Whether any instruction is the given opcode. Push data is not
    /// decoded — only literal opcodes match — which is what validation
    /// wants when classifying a locking script (e.g. spotting the
    /// `OP_CHECKRSA512PAIR` escrow branches for sigcache accounting).
    pub fn contains_op(&self, op: Opcode) -> bool {
        self.instructions
            .iter()
            .any(|i| matches!(i, Instruction::Op(o) if *o == op))
    }

    /// Extracts the data payload of an `OP_RETURN` script, if it is one.
    pub fn op_return_data(&self) -> Option<&[u8]> {
        match self.instructions.as_slice() {
            [Instruction::Op(Opcode::Return), Instruction::Push(data)] => Some(data),
            _ => None,
        }
    }

    /// Serializes to wire bytes (Bitcoin-style push prefixes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for instr in &self.instructions {
            match instr {
                Instruction::Op(op) => out.push(op.to_byte()),
                Instruction::Push(data) => {
                    if data.is_empty() {
                        out.push(Opcode::Op0.to_byte());
                    } else if data.len() <= MAX_DIRECT_PUSH {
                        out.push(data.len() as u8);
                        out.extend_from_slice(data);
                    } else if data.len() <= u8::MAX as usize {
                        out.push(OP_PUSHDATA1);
                        out.push(data.len() as u8);
                        out.extend_from_slice(data);
                    } else {
                        out.push(OP_PUSHDATA2);
                        out.extend_from_slice(&(data.len() as u16).to_le_bytes());
                        out.extend_from_slice(data);
                    }
                }
            }
        }
        out
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// [`ParseScriptError`] on truncated pushes or unknown opcodes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseScriptError> {
        let mut instructions = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            i += 1;
            let push_len = match b {
                1..=75 => Some(b as usize),
                OP_PUSHDATA1 => {
                    if i >= bytes.len() {
                        return Err(ParseScriptError::TruncatedPrefix);
                    }
                    let len = bytes[i] as usize;
                    i += 1;
                    Some(len)
                }
                OP_PUSHDATA2 => {
                    if i + 1 >= bytes.len() {
                        return Err(ParseScriptError::TruncatedPrefix);
                    }
                    let len = u16::from_le_bytes([bytes[i], bytes[i + 1]]) as usize;
                    i += 2;
                    Some(len)
                }
                _ => None,
            };
            match push_len {
                Some(len) => {
                    if i + len > bytes.len() {
                        return Err(ParseScriptError::TruncatedPush {
                            declared: len,
                            available: bytes.len() - i,
                        });
                    }
                    instructions.push(Instruction::Push(bytes[i..i + len].to_vec()));
                    i += len;
                }
                None => match Opcode::from_byte(b) {
                    Some(Opcode::Op0) => instructions.push(Instruction::Push(Vec::new())),
                    Some(op) => instructions.push(Instruction::Op(op)),
                    None => return Err(ParseScriptError::UnknownOpcode(b)),
                },
            }
        }
        Ok(Script { instructions })
    }

    /// Wire size in bytes.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Concatenates two scripts (scriptSig ‖ scriptPubKey evaluation order
    /// is handled by the interpreter; this is for assembling templates).
    pub fn concat(&self, other: &Script) -> Script {
        let mut instructions = self.instructions.clone();
        instructions.extend(other.instructions.iter().cloned());
        Script { instructions }
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for instr in &self.instructions {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match instr {
                Instruction::Op(op) => write!(f, "{op}")?,
                Instruction::Push(data) => write!(f, "<{}>", bcwan_crypto::hex::encode(data))?,
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Incremental script builder.
#[derive(Debug, Clone, Default)]
pub struct ScriptBuilder {
    instructions: Vec<Instruction>,
}

impl ScriptBuilder {
    /// Appends a data push.
    pub fn push(mut self, data: Vec<u8>) -> Self {
        self.instructions.push(Instruction::Push(data));
        self
    }

    /// Appends a minimal push of a script number (Bitcoin CScriptNum).
    pub fn push_num(mut self, n: i64) -> Self {
        self.instructions.push(Instruction::Push(encode_num(n)));
        self
    }

    /// Appends an operator.
    pub fn op(mut self, op: Opcode) -> Self {
        self.instructions.push(Instruction::Op(op));
        self
    }

    /// Finishes the script.
    pub fn build(self) -> Script {
        Script {
            instructions: self.instructions,
        }
    }
}

/// Encodes a script number: little-endian, minimal, sign-magnitude top bit.
pub fn encode_num(n: i64) -> Vec<u8> {
    if n == 0 {
        return Vec::new();
    }
    let negative = n < 0;
    let mut abs = n.unsigned_abs();
    let mut out = Vec::new();
    while abs > 0 {
        out.push((abs & 0xff) as u8);
        abs >>= 8;
    }
    if out.last().expect("non-zero") & 0x80 != 0 {
        out.push(if negative { 0x80 } else { 0x00 });
    } else if negative {
        *out.last_mut().expect("non-zero") |= 0x80;
    }
    out
}

/// Decodes a script number (inverse of [`encode_num`]); `None` if longer
/// than 8 bytes.
pub fn decode_num(bytes: &[u8]) -> Option<i64> {
    if bytes.is_empty() {
        return Some(0);
    }
    if bytes.len() > 8 {
        return None;
    }
    let mut value: i64 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let byte = if i == bytes.len() - 1 { b & 0x7f } else { b };
        value |= (byte as i64) << (8 * i);
    }
    if bytes.last().expect("non-empty") & 0x80 != 0 {
        value = -value;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_round_trip() {
        let s = Script::new();
        assert!(s.is_empty());
        assert_eq!(Script::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(s.to_string(), "(empty)");
    }

    #[test]
    fn serialize_round_trip_with_all_push_sizes() {
        let s = Script::builder()
            .push(vec![])
            .push(vec![1])
            .push(vec![2; 75])
            .push(vec![3; 76])
            .push(vec![4; 255])
            .push(vec![5; 256])
            .op(Opcode::Dup)
            .op(Opcode::CheckRsa512Pair)
            .build();
        let round = Script::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Script::from_bytes(&[5, 1, 2]),
            Err(ParseScriptError::TruncatedPush {
                declared: 5,
                available: 2
            })
        ));
        assert!(matches!(
            Script::from_bytes(&[0x4c]),
            Err(ParseScriptError::TruncatedPrefix)
        ));
        assert!(matches!(
            Script::from_bytes(&[0xfe]),
            Err(ParseScriptError::UnknownOpcode(0xfe))
        ));
    }

    #[test]
    fn op_return_detection() {
        let data = b"ip=192.168.1.10:9000".to_vec();
        let s = Script::builder()
            .op(Opcode::Return)
            .push(data.clone())
            .build();
        assert!(s.is_op_return());
        assert_eq!(s.op_return_data(), Some(data.as_slice()));
        let not = Script::builder().op(Opcode::Dup).build();
        assert!(!not.is_op_return());
        assert_eq!(not.op_return_data(), None);
    }

    #[test]
    fn script_num_round_trip() {
        for n in [
            0i64,
            1,
            -1,
            127,
            128,
            -128,
            255,
            256,
            0x7fffffff,
            -0x7fffffff,
            100_000,
        ] {
            let enc = encode_num(n);
            assert_eq!(decode_num(&enc), Some(n), "n={n}, enc={enc:?}");
        }
    }

    #[test]
    fn script_num_encoding_is_minimal() {
        assert_eq!(encode_num(0), Vec::<u8>::new());
        assert_eq!(encode_num(1), vec![1]);
        assert_eq!(encode_num(127), vec![0x7f]);
        assert_eq!(encode_num(128), vec![0x80, 0x00]); // needs sign-clear byte
        assert_eq!(encode_num(-1), vec![0x81]);
        assert_eq!(encode_num(520), vec![0x08, 0x02]);
    }

    #[test]
    fn decode_num_rejects_oversized() {
        assert_eq!(decode_num(&[0u8; 9]), None);
    }

    #[test]
    fn display_format() {
        let s = Script::builder()
            .push(vec![0xde, 0xad])
            .op(Opcode::Hash160)
            .build();
        assert_eq!(s.to_string(), "<dead> OP_HASH160");
    }

    #[test]
    fn concat_appends() {
        let a = Script::builder().op(Opcode::Dup).build();
        let b = Script::builder().op(Opcode::Drop).build();
        let c = a.concat(&b);
        assert_eq!(c.instructions().len(), 2);
    }
}
