//! Standard script templates.
//!
//! [`ephemeral_key_release`] is the paper's Listing 1 verbatim:
//!
//! ```text
//! <rsaPubKey>
//! OP_CHECKRSA512PAIR
//! OP_IF
//!     OP_DUP OP_HASH160 <pubKeyHash> OP_EQUALVERIFY
//! OP_ELSE
//!     <block_height+100> OP_CHECKLOCKTIMEVERIFY OP_VERIFY
//!     OP_DUP OP_HASH160 <buyerPubkeyHash> OP_EQUALVERIFY
//! OP_ENDIF
//! OP_CHECKSIG
//! ```
//!
//! The reveal path pays the gateway when it discloses the ephemeral RSA
//! private key; the refund path returns the escrow to the buyer (the
//! recipient) after the lock height passes.

use crate::opcode::Opcode;
use crate::script::Script;
use bcwan_crypto::rsa::{RsaPrivateKey, RsaPublicKey};

/// A 20-byte `HASH160` of a compressed ECDSA public key — the address form
/// used throughout the chain.
pub type PubKeyHash = [u8; 20];

/// Standard pay-to-pubkey-hash locking script.
pub fn p2pkh(pubkey_hash: &PubKeyHash) -> Script {
    Script::builder()
        .op(Opcode::Dup)
        .op(Opcode::Hash160)
        .push(pubkey_hash.to_vec())
        .op(Opcode::EqualVerify)
        .op(Opcode::CheckSig)
        .build()
}

/// Unlocking script for [`p2pkh`]: `<sig> <pubkey>`.
pub fn p2pkh_sig(signature: &[u8], pubkey: &[u8]) -> Script {
    Script::builder()
        .push(signature.to_vec())
        .push(pubkey.to_vec())
        .build()
}

/// `OP_RETURN <data>` — an unspendable data-carrier output. BcWAN's IP
/// directory publishes gateway addresses this way (paper §5.1).
pub fn op_return(data: &[u8]) -> Script {
    Script::builder()
        .op(Opcode::Return)
        .push(data.to_vec())
        .build()
}

/// The paper's Listing 1: ephemeral-private-key-release escrow.
///
/// * `rsa_pubkey` — the gateway's ephemeral public key `ePk`,
/// * `gateway_pubkey_hash` — `HASH160` of the gateway wallet key (paid on
///   key reveal),
/// * `buyer_pubkey_hash` — `HASH160` of the recipient wallet key (refund),
/// * `refund_height` — the paper uses `block_height + 100`.
pub fn ephemeral_key_release(
    rsa_pubkey: &RsaPublicKey,
    gateway_pubkey_hash: &PubKeyHash,
    buyer_pubkey_hash: &PubKeyHash,
    refund_height: u64,
) -> Script {
    Script::builder()
        .push(rsa_pubkey.to_bytes())
        .op(Opcode::CheckRsa512Pair)
        .op(Opcode::If)
        .op(Opcode::Dup)
        .op(Opcode::Hash160)
        .push(gateway_pubkey_hash.to_vec())
        .op(Opcode::EqualVerify)
        .op(Opcode::Else)
        .push_num(refund_height as i64)
        .op(Opcode::CheckLockTimeVerify)
        .op(Opcode::Verify)
        .op(Opcode::Dup)
        .op(Opcode::Hash160)
        .push(buyer_pubkey_hash.to_vec())
        .op(Opcode::EqualVerify)
        .op(Opcode::EndIf)
        .op(Opcode::CheckSig)
        .build()
}

/// Unlocking script for the **reveal path** of [`ephemeral_key_release`]:
/// `<sig> <pubkey> <rsaPrivKey>`. Publishing this on chain is what hands
/// the recipient the decryption key — the fair-exchange payoff.
pub fn key_reveal_sig(signature: &[u8], pubkey: &[u8], rsa_privkey: &RsaPrivateKey) -> Script {
    Script::builder()
        .push(signature.to_vec())
        .push(pubkey.to_vec())
        .push(rsa_privkey.to_bytes())
        .build()
}

/// Unlocking script for the **refund path** of [`ephemeral_key_release`]:
/// `<sig> <pubkey> <dummy>` where the dummy deliberately fails the RSA
/// pair check, steering execution into the time-locked branch.
pub fn refund_sig(signature: &[u8], pubkey: &[u8]) -> Script {
    Script::builder()
        .push(signature.to_vec())
        .push(pubkey.to_vec())
        .push(Vec::new())
        .build()
}

/// Extracts the revealed RSA private key from a reveal-path unlocking
/// script, if present and well-formed. This is how the recipient learns
/// `eSk` from the gateway's claim transaction (paper step 10).
pub fn extract_revealed_key(script_sig: &Script) -> Option<RsaPrivateKey> {
    use crate::script::Instruction;
    match script_sig.instructions() {
        [Instruction::Push(_sig), Instruction::Push(_pk), Instruction::Push(priv_bytes)] => {
            RsaPrivateKey::from_bytes(priv_bytes).ok()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::{verify_spend, DigestChecker, ExecContext, ScriptError};
    use bcwan_crypto::ecdsa::EcdsaPrivateKey;
    use bcwan_crypto::hash160;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Party {
        key: EcdsaPrivateKey,
        pubkey: Vec<u8>,
        pkh: PubKeyHash,
    }

    fn party(rng: &mut StdRng) -> Party {
        let key = EcdsaPrivateKey::generate(rng);
        let pubkey = key.public_key().to_bytes().to_vec();
        let pkh = hash160(&pubkey);
        Party { key, pubkey, pkh }
    }

    const DIGEST: [u8; 32] = [0x5a; 32];

    fn ctx(checker: &DigestChecker, lock_time: u64) -> ExecContext<'_> {
        ExecContext {
            checker,
            lock_time,
            input_final: false,
        }
    }

    #[test]
    fn p2pkh_spend_succeeds_with_right_key() {
        let mut rng = StdRng::seed_from_u64(1);
        let owner = party(&mut rng);
        let lock = p2pkh(&owner.pkh);
        let sig = owner.key.sign_digest(&DIGEST).to_bytes().to_vec();
        let unlock = p2pkh_sig(&sig, &owner.pubkey);
        let checker = DigestChecker { digest: DIGEST };
        assert_eq!(verify_spend(&unlock, &lock, &ctx(&checker, 0)), Ok(true));
    }

    #[test]
    fn p2pkh_spend_fails_with_wrong_key() {
        let mut rng = StdRng::seed_from_u64(2);
        let owner = party(&mut rng);
        let thief = party(&mut rng);
        let lock = p2pkh(&owner.pkh);
        let sig = thief.key.sign_digest(&DIGEST).to_bytes().to_vec();
        let unlock = p2pkh_sig(&sig, &thief.pubkey);
        let checker = DigestChecker { digest: DIGEST };
        // Thief's pubkey hash does not match → EQUALVERIFY fails.
        assert_eq!(
            verify_spend(&unlock, &lock, &ctx(&checker, 0)),
            Err(ScriptError::VerifyFailed(Opcode::EqualVerify))
        );
    }

    #[test]
    fn listing1_reveal_path_pays_gateway() {
        let mut rng = StdRng::seed_from_u64(3);
        let gateway = party(&mut rng);
        let buyer = party(&mut rng);
        let (e_pk, e_sk) =
            bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);

        let lock = ephemeral_key_release(&e_pk, &gateway.pkh, &buyer.pkh, 100);
        let sig = gateway.key.sign_digest(&DIGEST).to_bytes().to_vec();
        let unlock = key_reveal_sig(&sig, &gateway.pubkey, &e_sk);
        let checker = DigestChecker { digest: DIGEST };
        // Reveal path needs no lock time at all.
        assert_eq!(verify_spend(&unlock, &lock, &ctx(&checker, 0)), Ok(true));
    }

    #[test]
    fn listing1_reveal_with_wrong_rsa_key_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let gateway = party(&mut rng);
        let buyer = party(&mut rng);
        let (e_pk, _) = bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let (_, wrong_sk) =
            bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);

        let lock = ephemeral_key_release(&e_pk, &gateway.pkh, &buyer.pkh, 100);
        let sig = gateway.key.sign_digest(&DIGEST).to_bytes().to_vec();
        let unlock = key_reveal_sig(&sig, &gateway.pubkey, &wrong_sk);
        let checker = DigestChecker { digest: DIGEST };
        // Pair check false → refund branch → CLTV with lock_time 0 fails.
        assert!(matches!(
            verify_spend(&unlock, &lock, &ctx(&checker, 0)),
            Err(ScriptError::LockTimeNotSatisfied { .. })
        ));
    }

    #[test]
    fn listing1_gateway_cannot_take_refund_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let gateway = party(&mut rng);
        let buyer = party(&mut rng);
        let (e_pk, _) = bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);

        let lock = ephemeral_key_release(&e_pk, &gateway.pkh, &buyer.pkh, 100);
        let sig = gateway.key.sign_digest(&DIGEST).to_bytes().to_vec();
        // Gateway signs the refund path — but the buyer hash won't match.
        let unlock = refund_sig(&sig, &gateway.pubkey);
        let checker = DigestChecker { digest: DIGEST };
        assert_eq!(
            verify_spend(&unlock, &lock, &ctx(&checker, 150)),
            Err(ScriptError::VerifyFailed(Opcode::EqualVerify))
        );
    }

    #[test]
    fn listing1_refund_path_after_lock_height() {
        let mut rng = StdRng::seed_from_u64(6);
        let gateway = party(&mut rng);
        let buyer = party(&mut rng);
        let (e_pk, _) = bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);

        let lock = ephemeral_key_release(&e_pk, &gateway.pkh, &buyer.pkh, 100);
        let sig = buyer.key.sign_digest(&DIGEST).to_bytes().to_vec();
        let unlock = refund_sig(&sig, &buyer.pubkey);
        let checker = DigestChecker { digest: DIGEST };
        // Before the lock height: refused.
        assert!(matches!(
            verify_spend(&unlock, &lock, &ctx(&checker, 99)),
            Err(ScriptError::LockTimeNotSatisfied { .. })
        ));
        // At/after the lock height: the buyer recovers the escrow.
        assert_eq!(verify_spend(&unlock, &lock, &ctx(&checker, 100)), Ok(true));
        assert_eq!(verify_spend(&unlock, &lock, &ctx(&checker, 5000)), Ok(true));
    }

    #[test]
    fn extract_revealed_key_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let gateway = party(&mut rng);
        let (e_pk, e_sk) =
            bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let sig = gateway.key.sign_digest(&DIGEST).to_bytes().to_vec();
        let unlock = key_reveal_sig(&sig, &gateway.pubkey, &e_sk);
        let extracted = extract_revealed_key(&unlock).expect("key present");
        assert!(e_pk.matches_private(&extracted));
        // Refund path has no key.
        let refund = refund_sig(&sig, &gateway.pubkey);
        assert!(extract_revealed_key(&refund).is_none());
    }

    #[test]
    fn op_return_scripts_are_unspendable_data() {
        let s = op_return(b"ip=10.0.0.1:7000");
        assert!(s.is_op_return());
        assert_eq!(s.op_return_data(), Some(&b"ip=10.0.0.1:7000"[..]));
        let checker = DigestChecker { digest: DIGEST };
        let any_sig = Script::builder().push(vec![1]).build();
        assert_eq!(
            verify_spend(&any_sig, &s, &ctx(&checker, 1000)),
            Err(ScriptError::OpReturn)
        );
    }

    #[test]
    fn listing1_wire_round_trip() {
        let mut rng = StdRng::seed_from_u64(8);
        let gateway = party(&mut rng);
        let buyer = party(&mut rng);
        let (e_pk, _) = bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let lock = ephemeral_key_release(&e_pk, &gateway.pkh, &buyer.pkh, 100);
        let parsed = Script::from_bytes(&lock.to_bytes()).unwrap();
        assert_eq!(parsed, lock);
        // Exactly the shape of paper Listing 1.
        let display = lock.to_string();
        assert!(display.contains("OP_CHECKRSA512PAIR"));
        assert!(display.contains("OP_CHECKLOCKTIMEVERIFY"));
        assert!(display.contains("OP_ENDIF OP_CHECKSIG"));
    }
}
