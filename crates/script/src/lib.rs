//! # bcwan-script
//!
//! A Bitcoin-style, non-Turing-complete, stack-based script language with
//! the two operators BcWAN's fair exchange hinges on (paper §4.4):
//!
//! - `OP_CHECKLOCKTIMEVERIFY` (BIP-65) — the refund branch's time lock,
//! - `OP_CHECKRSA512PAIR` — the paper's custom operator, which "checks
//!   that a private RSA-512 key matches a public RSA-512 key", allowing a
//!   transaction output to *pay for the disclosure of a private key*.
//!
//! The crate provides the opcode set ([`opcode`]), script container and
//! wire codec ([`script`]), the interpreter ([`interpreter`]), and the
//! standard templates ([`templates`]) including the paper's Listing 1
//! escrow script.
//!
//! ## Example: running Listing 1's reveal path
//!
//! ```
//! use bcwan_script::templates::{ephemeral_key_release, key_reveal_sig};
//! use bcwan_script::interpreter::{verify_spend, DigestChecker, ExecContext};
//! use bcwan_crypto::{generate_keypair, hash160, RsaKeySize};
//! use bcwan_crypto::ecdsa::EcdsaPrivateKey;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let wallet = EcdsaPrivateKey::generate(&mut rng);
//! let pubkey = wallet.public_key().to_bytes();
//! let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
//!
//! let escrow = ephemeral_key_release(&e_pk, &hash160(&pubkey), &[0u8; 20], 100);
//! let digest = [7u8; 32]; // stand-in for the sighash
//! let sig = wallet.sign_digest(&digest).to_bytes();
//! let unlock = key_reveal_sig(&sig, &pubkey, &e_sk);
//!
//! let checker = DigestChecker { digest };
//! let ctx = ExecContext { checker: &checker, lock_time: 0, input_final: false };
//! assert_eq!(verify_spend(&unlock, &escrow, &ctx), Ok(true));
//! ```

#![warn(missing_docs)]

pub mod interpreter;
pub mod opcode;
pub mod script;
pub mod templates;

pub use interpreter::{
    run_script, verify_spend, DeferringChecker, DigestChecker, ExecContext, RejectAllChecker,
    ScriptError, SignatureChecker,
};
pub use opcode::Opcode;
pub use script::{decode_num, encode_num, Instruction, ParseScriptError, Script, ScriptBuilder};
pub use templates::PubKeyHash;
