//! Script opcodes.
//!
//! A subset of Bitcoin script sufficient for BcWAN, plus the paper's
//! custom operator [`Opcode::CheckRsa512Pair`] and the time-lock operator
//! [`Opcode::CheckLockTimeVerify`] that together implement the
//! ephemeral-key-release contract of paper Listing 1.

use std::fmt;

/// A script operator.
///
/// Byte values follow Bitcoin where an equivalent exists;
/// `OP_CHECKRSA512PAIR` takes `0xc0` from the unassigned range (the paper
/// patched it into Multichain the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Push an empty byte string (false).
    Op0 = 0x00,
    /// Push the number 1 (true).
    Op1 = 0x51,
    /// Push 2.
    Op2 = 0x52,
    /// Push 3.
    Op3 = 0x53,
    /// Push 16.
    Op16 = 0x60,

    /// No operation.
    Nop = 0x61,
    /// Conditional: pops a bool, executes the branch.
    If = 0x63,
    /// Negated conditional.
    NotIf = 0x64,
    /// Alternative branch.
    Else = 0x67,
    /// Ends a conditional.
    EndIf = 0x68,
    /// Pops top; fails the script unless it is truthy.
    Verify = 0x69,
    /// Marks the output unspendable; the rest of the script is data.
    Return = 0x6a,

    /// Duplicates the top item.
    Dup = 0x76,
    /// Removes the top item.
    Drop = 0x75,
    /// Removes the second item.
    Nip = 0x77,
    /// Copies the second item to the top.
    Over = 0x78,
    /// Swaps the top two items.
    Swap = 0x7c,
    /// Rotates the top three items.
    Rot = 0x7b,
    /// Pushes the stack depth.
    Depth = 0x74,
    /// Pushes the byte length of the top item.
    Size = 0x82,

    /// Pops two; pushes whether they are byte-equal.
    Equal = 0x87,
    /// `Equal` then `Verify`.
    EqualVerify = 0x88,

    /// Adds one to the top number.
    Add1 = 0x8b,
    /// Subtracts one from the top number.
    Sub1 = 0x8c,
    /// Boolean negation of the top item.
    Not = 0x91,
    /// Pops two numbers; pushes their sum.
    Add = 0x93,
    /// Pops two numbers; pushes `a - b`.
    Sub = 0x94,
    /// Logical AND of two numbers.
    BoolAnd = 0x9a,
    /// Logical OR of two numbers.
    BoolOr = 0x9b,
    /// Numeric equality.
    NumEqual = 0x9c,
    /// `NumEqual` then `Verify`.
    NumEqualVerify = 0x9d,
    /// `a < b`.
    LessThan = 0x9f,
    /// `a > b`.
    GreaterThan = 0xa0,
    /// Minimum of two numbers.
    Min = 0xa3,
    /// Maximum of two numbers.
    Max = 0xa4,
    /// `min <= x < max`.
    Within = 0xa5,

    /// RIPEMD-160 of the top item.
    Ripemd160 = 0xa6,
    /// SHA-256 of the top item.
    Sha256 = 0xa8,
    /// RIPEMD-160 ∘ SHA-256 (Bitcoin address hash).
    Hash160 = 0xa9,
    /// Double SHA-256.
    Hash256 = 0xaa,
    /// Pops pubkey and signature; pushes signature validity.
    CheckSig = 0xac,
    /// `CheckSig` then `Verify`.
    CheckSigVerify = 0xad,

    /// BIP-65 absolute time lock: fails unless the spending transaction's
    /// lock time is at least the top stack number. Leaves the stack intact.
    CheckLockTimeVerify = 0xb1,

    /// **BcWAN custom operator** (paper §4.4): pops an RSA private key and
    /// an RSA public key; pushes whether they form a valid pair. The name
    /// keeps the paper's "512" but the check works for any modulus size,
    /// enabling the key-size ablation.
    CheckRsa512Pair = 0xc0,
}

impl Opcode {
    /// All opcodes (for table-driven decode).
    pub const ALL: [Opcode; 44] = [
        Opcode::Op0,
        Opcode::Op1,
        Opcode::Op2,
        Opcode::Op3,
        Opcode::Op16,
        Opcode::Nop,
        Opcode::If,
        Opcode::NotIf,
        Opcode::Else,
        Opcode::EndIf,
        Opcode::Verify,
        Opcode::Return,
        Opcode::Dup,
        Opcode::Drop,
        Opcode::Nip,
        Opcode::Over,
        Opcode::Swap,
        Opcode::Rot,
        Opcode::Depth,
        Opcode::Size,
        Opcode::Equal,
        Opcode::EqualVerify,
        Opcode::Add1,
        Opcode::Sub1,
        Opcode::Not,
        Opcode::Add,
        Opcode::Sub,
        Opcode::BoolAnd,
        Opcode::BoolOr,
        Opcode::NumEqual,
        Opcode::NumEqualVerify,
        Opcode::LessThan,
        Opcode::GreaterThan,
        Opcode::Min,
        Opcode::Max,
        Opcode::Within,
        Opcode::Ripemd160,
        Opcode::Sha256,
        Opcode::Hash160,
        Opcode::Hash256,
        Opcode::CheckSig,
        Opcode::CheckSigVerify,
        Opcode::CheckLockTimeVerify,
        Opcode::CheckRsa512Pair,
    ];

    /// The wire byte.
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte into an opcode.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        Self::ALL.into_iter().find(|op| op.to_byte() == b)
    }

    /// Canonical `OP_*` name.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Op0 => "OP_0",
            Opcode::Op1 => "OP_1",
            Opcode::Op2 => "OP_2",
            Opcode::Op3 => "OP_3",
            Opcode::Op16 => "OP_16",
            Opcode::Nop => "OP_NOP",
            Opcode::If => "OP_IF",
            Opcode::NotIf => "OP_NOTIF",
            Opcode::Else => "OP_ELSE",
            Opcode::EndIf => "OP_ENDIF",
            Opcode::Verify => "OP_VERIFY",
            Opcode::Return => "OP_RETURN",
            Opcode::Dup => "OP_DUP",
            Opcode::Drop => "OP_DROP",
            Opcode::Nip => "OP_NIP",
            Opcode::Over => "OP_OVER",
            Opcode::Swap => "OP_SWAP",
            Opcode::Rot => "OP_ROT",
            Opcode::Depth => "OP_DEPTH",
            Opcode::Size => "OP_SIZE",
            Opcode::Equal => "OP_EQUAL",
            Opcode::EqualVerify => "OP_EQUALVERIFY",
            Opcode::Add1 => "OP_1ADD",
            Opcode::Sub1 => "OP_1SUB",
            Opcode::Not => "OP_NOT",
            Opcode::Add => "OP_ADD",
            Opcode::Sub => "OP_SUB",
            Opcode::BoolAnd => "OP_BOOLAND",
            Opcode::BoolOr => "OP_BOOLOR",
            Opcode::NumEqual => "OP_NUMEQUAL",
            Opcode::NumEqualVerify => "OP_NUMEQUALVERIFY",
            Opcode::LessThan => "OP_LESSTHAN",
            Opcode::GreaterThan => "OP_GREATERTHAN",
            Opcode::Min => "OP_MIN",
            Opcode::Max => "OP_MAX",
            Opcode::Within => "OP_WITHIN",
            Opcode::Ripemd160 => "OP_RIPEMD160",
            Opcode::Sha256 => "OP_SHA256",
            Opcode::Hash160 => "OP_HASH160",
            Opcode::Hash256 => "OP_HASH256",
            Opcode::CheckSig => "OP_CHECKSIG",
            Opcode::CheckSigVerify => "OP_CHECKSIGVERIFY",
            Opcode::CheckLockTimeVerify => "OP_CHECKLOCKTIMEVERIFY",
            Opcode::CheckRsa512Pair => "OP_CHECKRSA512PAIR",
        }
    }

    /// Small-integer value for `OP_0`–`OP_16` pushes, if this is one.
    pub fn small_int(self) -> Option<i64> {
        match self {
            Opcode::Op0 => Some(0),
            Opcode::Op1 => Some(1),
            Opcode::Op2 => Some(2),
            Opcode::Op3 => Some(3),
            Opcode::Op16 => Some(16),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip_for_all() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.to_byte()), Some(op), "{op}");
        }
    }

    #[test]
    fn unknown_bytes_rejected() {
        assert_eq!(Opcode::from_byte(0xff), None);
        assert_eq!(Opcode::from_byte(0x50), None); // OP_RESERVED
    }

    #[test]
    fn bitcoin_compatible_bytes() {
        assert_eq!(Opcode::Dup.to_byte(), 0x76);
        assert_eq!(Opcode::Hash160.to_byte(), 0xa9);
        assert_eq!(Opcode::EqualVerify.to_byte(), 0x88);
        assert_eq!(Opcode::CheckSig.to_byte(), 0xac);
        assert_eq!(Opcode::CheckLockTimeVerify.to_byte(), 0xb1);
        assert_eq!(Opcode::Return.to_byte(), 0x6a);
    }

    #[test]
    fn names_match_convention() {
        assert_eq!(Opcode::CheckRsa512Pair.name(), "OP_CHECKRSA512PAIR");
        assert_eq!(
            Opcode::CheckLockTimeVerify.to_string(),
            "OP_CHECKLOCKTIMEVERIFY"
        );
    }

    #[test]
    fn small_ints() {
        assert_eq!(Opcode::Op0.small_int(), Some(0));
        assert_eq!(Opcode::Op16.small_int(), Some(16));
        assert_eq!(Opcode::Dup.small_int(), None);
    }
}
