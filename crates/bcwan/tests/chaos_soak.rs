//! Chaos soak: seeded fault schedules against the full testbed world.
//!
//! Three focused scenarios pin the recovery paths the fair exchange must
//! survive (ISSUE 4 acceptance): a gateway that crashes after Deliver, a
//! claim orphaned by a chain reorganization, and a gateway that withholds
//! its claim until the `OP_CHECKLOCKTIMEVERIFY` refund branch fires. The
//! soak then runs generated [`ChaosPlan`]s and asserts the global
//! invariants: no coin created or destroyed, every escrow terminates in
//! exactly one of Claimed/Refunded, and the final UTXO set is identical
//! across reruns of the same seed.

use bcwan::world::{WorkloadConfig, World};
use bcwan_sim::{ChaosFault, ChaosPlan, ChaosProfile, SimDuration, SimRng, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn counter(result: &bcwan::ExperimentResult, name: &str) -> u64 {
    result
        .metrics
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing counter {name}"))
}

#[test]
fn gateway_crash_after_deliver_recovers() {
    // Host 2 (the gateway for host 1's sensors) crashes shortly after
    // the first exchanges deliver, missing the escrow gossip, and
    // restarts cold 40 s later. The late-claim path must settle every
    // escrow once the gateway has resynced the chain.
    let plan = ChaosPlan {
        faults: vec![ChaosFault::HostCrash {
            host: 2,
            from: secs(3),
            until: secs(43),
        }],
    };
    let mut cfg = WorkloadConfig::tiny(6, 91).with_chaos(plan);
    cfg.refund_delta = 12; // if even the late claim fails, refund quickly
    let result = World::new(cfg).run();

    assert!(counter(&result, "chaos.crash_drops_total") > 0, "crash bit");
    assert!(result.completed >= 1, "exchanges outside the crash window");
    assert_eq!(result.escrows_open, 0, "every escrow settled");
    assert_eq!(result.invariant_violations, 0);
    assert_eq!(
        counter(&result, "chaos.invariant.violation_total"),
        0,
        "registry mirrors the result field"
    );
}

#[test]
fn claim_orphaned_by_reorg_reconfirms() {
    // A depth-3 fork at t=50s orphans the blocks holding the early
    // escrows and claims. Mempool repair re-pools them, the settlement
    // watchdog re-broadcasts anything the miner lost, and every claim
    // must re-confirm on the winning branch.
    let plan = ChaosPlan {
        faults: vec![ChaosFault::Fork {
            at: secs(50),
            depth: 3,
        }],
    };
    let cfg = WorkloadConfig::tiny(5, 17).with_chaos(plan);
    let result = World::new(cfg).run();

    assert_eq!(counter(&result, "chaos.forks_total"), 1, "fork fired");
    assert_eq!(result.completed, 5, "reorg does not lose readings");
    assert_eq!(result.escrows_open, 0);
    assert!(result.escrows_claimed >= 1, "claims settled on new branch");
    assert_eq!(result.escrows_refunded, 0, "no CLTV branch needed");
    assert_eq!(result.invariant_violations, 0);
}

#[test]
fn withheld_claim_falls_back_to_cltv_refund() {
    // Both gateways withhold every claim for the whole run: the
    // recipient's refund driver must reclaim each escrow through the
    // CLTV branch once the chain passes the refund height.
    let forever = secs(1_000_000);
    let plan = ChaosPlan {
        faults: vec![
            ChaosFault::ClaimWithhold {
                host: 1,
                from: SimTime::ZERO,
                until: forever,
            },
            ChaosFault::ClaimWithhold {
                host: 2,
                from: SimTime::ZERO,
                until: forever,
            },
        ],
    };
    let mut cfg = WorkloadConfig::tiny(4, 23).with_chaos(plan);
    cfg.refund_delta = 8;
    let result = World::new(cfg).run();

    assert!(counter(&result, "chaos.claims_withheld_total") > 0);
    assert_eq!(result.completed, 0, "no key disclosed, no reading");
    assert!(result.escrows_refunded >= 1, "CLTV branch exercised");
    assert_eq!(result.escrows_claimed, 0, "withheld means withheld");
    assert_eq!(result.escrows_open, 0);
    assert_eq!(result.invariant_violations, 0);
    assert!(counter(&result, "fsm.refunds_submitted_total") >= result.escrows_refunded as u64);
}

#[test]
fn soak_generated_plans_keep_invariants() {
    for seed in [101u64, 202] {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xc4a0_5eed);
        let plan = ChaosPlan::generate(
            &mut rng,
            &ChaosProfile::soak(),
            SimDuration::from_secs(240),
            2,
        );
        assert!(!plan.is_empty());
        let mut cfg = WorkloadConfig::tiny(10, seed).with_chaos(plan);
        cfg.refund_delta = 12;
        let result = World::new(cfg).run();

        assert_eq!(result.invariant_violations, 0, "seed {seed}");
        assert_eq!(
            result.escrows_open, 0,
            "seed {seed}: every escrow must end Claimed or Refunded"
        );
        assert_eq!(
            result.escrows_claimed + result.escrows_refunded,
            counter(&result, "world.escrows_claimed_total") as usize
                + counter(&result, "world.escrows_refunded_total") as usize,
            "seed {seed}: registry mirrors the census"
        );
    }
}

#[test]
fn master_crash_fails_over_to_standby_miner() {
    // A generated master-failover plan: host 0 (the miner) crashes
    // mid-run, the tallest live standby must take over block
    // production, and the restarted master must catch back up from a
    // standby and finish the run with every invariant intact.
    let mut rng = SimRng::seed_from_u64(0xfa11);
    let plan = ChaosPlan::generate(
        &mut rng,
        &ChaosProfile::master_failover(),
        SimDuration::from_secs(240),
        2,
    );
    assert!(
        plan.faults
            .iter()
            .any(|f| matches!(f, ChaosFault::HostCrash { host: 0, .. })),
        "the profile must schedule a master crash"
    );
    let mut cfg = WorkloadConfig::tiny(10, 314).with_chaos(plan);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();

    assert!(
        result.standby_blocks_mined > 0,
        "a standby mined during the master outage"
    );
    assert_eq!(
        counter(&result, "world.standby_blocks_mined_total"),
        result.standby_blocks_mined,
        "registry mirrors the failover census"
    );
    assert!(
        result.blocks_mined > result.standby_blocks_mined,
        "the master still mines outside its crash window"
    );
    assert!(result.completed >= 1, "exchanges survive the failover");
    assert_eq!(result.escrows_open, 0, "every escrow settled");
    assert_eq!(result.invariant_violations, 0);
}

#[test]
fn crashed_gateway_restarts_warm_from_its_store() {
    // Same crash schedule as `gateway_crash_after_deliver_recovers`, but
    // every host persists its chain. The restarted gateway must reopen
    // its block files instead of rebuilding from genesis (a *warm*
    // restart), then catch up to the fleet tip headers-first and settle
    // every escrow with the invariants intact.
    let dir = std::env::temp_dir().join(format!(
        "bcwan-warm-restart-{}-{:x}",
        std::process::id(),
        0x5704u32
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = ChaosPlan {
        faults: vec![ChaosFault::HostCrash {
            host: 2,
            from: secs(3),
            until: secs(43),
        }],
    };
    let mut cfg = WorkloadConfig::tiny(6, 91)
        .with_chaos(plan)
        .with_store_dir(&dir);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(result.restarts_warm > 0, "restart must reload from disk");
    assert_eq!(result.restarts_cold, 0, "no store fell back to cold");
    assert_eq!(
        counter(&result, "world.restart.warm_total"),
        result.restarts_warm,
        "registry mirrors the restart census"
    );
    assert!(counter(&result, "store.flush_total") > 0, "stores flushed");
    assert!(
        counter(&result, "store.blocks_appended_total") > 0,
        "blocks hit the block files"
    );
    assert!(result.completed >= 1, "exchanges outside the crash window");
    assert_eq!(result.escrows_open, 0, "every escrow settled");
    assert_eq!(result.invariant_violations, 0);
}

#[test]
fn stored_soak_matches_in_memory_soak() {
    // A persisted run must be byte-identical (in outcome) to the same
    // seed run purely in memory: the store is a durability layer, not a
    // consensus participant.
    let plan = || {
        let mut rng = SimRng::seed_from_u64(0x570a);
        ChaosPlan::generate(
            &mut rng,
            &ChaosProfile::soak(),
            SimDuration::from_secs(240),
            2,
        )
    };
    let mut mem_cfg = WorkloadConfig::tiny(8, 55).with_chaos(plan());
    mem_cfg.refund_delta = 12;
    let mem = World::new(mem_cfg).run();

    let dir = std::env::temp_dir().join(format!("bcwan-stored-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut disk_cfg = WorkloadConfig::tiny(8, 55)
        .with_chaos(plan())
        .with_store_dir(&dir);
    disk_cfg.refund_delta = 12;
    let disk = World::new(disk_cfg).run();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(mem.utxo_fingerprint, disk.utxo_fingerprint);
    assert_eq!(mem.utxo_total, disk.utxo_total);
    assert_eq!(mem.completed, disk.completed);
    assert_eq!(mem.escrows_claimed, disk.escrows_claimed);
    assert_eq!(mem.escrows_refunded, disk.escrows_refunded);
    assert_eq!(mem.blocks_mined, disk.blocks_mined);
    assert_eq!(disk.invariant_violations, 0);
    assert!(
        disk.restarts_warm + disk.restarts_cold > 0,
        "soak restarted hosts"
    );
    assert_eq!(disk.restarts_cold, 0, "every restart reopened its store");
}

#[test]
fn equivocating_gateway_is_detected_and_recipient_made_whole() {
    // Host 2 signs two conflicting claims (different fee → different
    // txid, both revealing the true key) against every escrow it
    // settles. First-seen mempools keep exactly one; the recipient-side
    // detector must flag every injected double-claim, and no escrow may
    // end ambiguous or open.
    let forever = secs(1_000_000);
    let plan = ChaosPlan {
        faults: vec![ChaosFault::Equivocate {
            host: 2,
            from: SimTime::ZERO,
            until: forever,
        }],
    };
    let mut cfg = WorkloadConfig::tiny(6, 47).with_chaos(plan);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();

    let injected = counter(&result, "chaos.equivocations_injected_total");
    let detected = counter(&result, "byzantine.equivocation_detected_total");
    assert!(injected > 0, "the equivocation window covered claims");
    assert_eq!(detected, injected, "every double-claim was caught");
    assert!(result.completed >= 1, "readings still flow — equivocation");
    assert_eq!(result.escrows_open, 0, "every recipient made whole");
    assert_eq!(result.invariant_violations, 0);
    // Exactly one of the two rival claims settles each escrow: the
    // auditor's double-settlement row stays zero.
    assert_eq!(
        counter(&result, "invariant.double_settlement_violations"),
        0
    );
    // The equivocator still earns exactly once per escrow — its revenue
    // is tracked in the adversarial bucket, and double-claiming never
    // pays more than honest claiming would have (in the symmetric
    // two-gateway tiny world the buckets tie; strict honest dominance
    // over a mixed fleet is the `byzantine_soak` gate).
    assert!(result.adversarial_revenue > 0, "equivocator paid only once");
    assert!(result.honest_revenue >= result.adversarial_revenue);
}

#[test]
fn censoring_miner_is_suspected_and_routed_around() {
    // The master miner silently excludes claim/refund transactions from
    // its templates for most of the run. The per-exchange suspicion
    // counter must demote it, mining must rotate to a clean standby,
    // and every escrow must still settle.
    let plan = ChaosPlan {
        faults: vec![ChaosFault::CensorClaims {
            miner: 0,
            from: secs(5),
            until: secs(600),
        }],
    };
    let mut cfg = WorkloadConfig::fleet(3, 12, 59).with_chaos(plan);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();

    assert!(
        counter(&result, "chaos.claims_censored_total") > 0,
        "templates actually excluded settlements"
    );
    assert!(
        counter(&result, "byzantine.censorship_suspected_total") >= 1,
        "the stuck-claim detector fired"
    );
    assert!(
        result.standby_blocks_mined > 0,
        "mining rotated away from the suspect"
    );
    assert_eq!(result.escrows_open, 0, "censorship cannot strand escrows");
    assert_eq!(result.invariant_violations, 0);
}

#[test]
fn three_way_partition_heals_and_settles() {
    // A three-cell split — master alone, each actor alone — for 20 s
    // mid-run: cross-cell traffic drops, then the partition heals and
    // sync failover must reconverge every chain and settle everything.
    let plan = ChaosPlan {
        faults: vec![ChaosFault::PartitionGroups {
            groups: vec![vec![0], vec![1], vec![2]],
            from: secs(15),
            until: secs(35),
        }],
    };
    let mut cfg = WorkloadConfig::tiny(8, 67).with_chaos(plan);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();

    assert!(
        counter(&result, "chaos.partition_drops_total") > 0,
        "the three-way cut actually dropped traffic"
    );
    assert!(result.completed >= 1, "exchanges survive the split");
    assert_eq!(result.escrows_open, 0, "reconvergence settles everything");
    assert_eq!(result.invariant_violations, 0);
}

#[test]
fn withheld_claim_recovers_after_warm_restart() {
    // ISSUE 9 satellite: a gateway withholds its claims, crashes inside
    // the withhold window, and restarts *warm* from its persistent
    // store. Once the window lapses the reopened gateway must settle
    // late (or the CLTV refund fires) — either way no escrow stays open
    // and the restart reloads from disk rather than genesis.
    let dir = std::env::temp_dir().join(format!(
        "bcwan-byz-warm-{}-{:x}",
        std::process::id(),
        0x9b1du32
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = ChaosPlan {
        faults: vec![
            ChaosFault::ClaimWithhold {
                host: 2,
                from: SimTime::ZERO,
                until: secs(60),
            },
            ChaosFault::HostCrash {
                host: 2,
                from: secs(20),
                until: secs(50),
            },
        ],
    };
    let mut cfg = WorkloadConfig::tiny(6, 83)
        .with_chaos(plan)
        .with_store_dir(&dir);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        counter(&result, "chaos.claims_withheld_total") > 0,
        "claims were withheld before the crash"
    );
    assert!(result.restarts_warm > 0, "the gateway reopened its store");
    assert_eq!(result.restarts_cold, 0, "no cold rebuild");
    assert!(
        result.escrows_claimed >= 1,
        "post-window exchanges settle normally"
    );
    assert_eq!(result.escrows_open, 0, "claim-or-refund made whole");
    assert_eq!(result.invariant_violations, 0);
}

#[test]
fn invariant_counters_are_explicit_zeros_on_clean_runs() {
    // ISSUE 9 satellite: the auditor registers every invariant and
    // Byzantine counter at world construction, so a clean run's
    // snapshot carries explicit zero rows — dashboards can tell
    // "checked and clean" from "never checked".
    let result = World::new(WorkloadConfig::tiny(4, 29)).run();
    for name in [
        "chaos.invariant.violation_total",
        "invariant.value_conservation_violations",
        "invariant.double_settlement_violations",
        "invariant.fsm_chain_mismatch_violations",
        "byzantine.equivocation_detected_total",
        "byzantine.censorship_suspected_total",
        "byzantine.adversarial_revenue_total",
    ] {
        assert_eq!(counter(&result, name), 0, "{name} must be an explicit 0");
    }
    assert!(
        counter(&result, "audit.blocks_audited_total") > 0,
        "the auditor ran continuously, not just at exit"
    );
    assert!(
        result.honest_revenue > 0,
        "clean-run claim revenue is all honest"
    );
    assert_eq!(result.adversarial_revenue, 0);
}

#[test]
fn soak_same_seed_same_final_utxo() {
    let run = || {
        let mut rng = SimRng::seed_from_u64(0x50a0);
        let plan = ChaosPlan::generate(
            &mut rng,
            &ChaosProfile::soak(),
            SimDuration::from_secs(240),
            2,
        );
        let mut cfg = WorkloadConfig::tiny(8, 77).with_chaos(plan);
        cfg.refund_delta = 12;
        World::new(cfg).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.utxo_fingerprint, b.utxo_fingerprint, "UTXO set differs");
    assert_eq!(a.utxo_total, b.utxo_total);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.escrows_claimed, b.escrows_claimed);
    assert_eq!(a.escrows_refunded, b.escrows_refunded);
    assert_eq!(a.blocks_mined, b.blocks_mined);
}
