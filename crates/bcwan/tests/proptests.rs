//! Property tests over the protocol layer: sealing/opening, escrow
//! construction, and the directory codec.

// QUARANTINED (see ROADMAP "Open items"): the proptest crate cannot be
// fetched in the offline build environment, so this suite only compiles
// with `--features proptest-tests` after restoring the proptest
// dev-dependency in Cargo.toml. The properties themselves are still the
// reference spec for this crate's invariants.
#![cfg(feature = "proptest-tests")]

use bcwan::directory::{IpAnnouncement, NetAddr};
use bcwan::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan_chain::{Address, OutPoint, TxId, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

// RSA keygen is the expensive part; share one environment per process.
thread_local! {
    static ENV: RefCell<Option<Env>> = const { RefCell::new(None) };
}

struct Env {
    registry: DeviceRegistry,
    creds: bcwan::provisioning::DeviceCredentials,
    e_pk: bcwan_crypto::RsaPublicKey,
    e_sk: bcwan_crypto::RsaPrivateKey,
    recipient: Wallet,
    gateway: Wallet,
}

fn with_env<T>(f: impl FnOnce(&mut Env) -> T) -> T {
    ENV.with(|cell| {
        let mut slot = cell.borrow_mut();
        let env = slot.get_or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(0xE0);
            let mut registry = DeviceRegistry::new();
            let creds = registry.provision(&mut rng, DeviceId(1), Address([9; 20]));
            let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
            Env {
                registry,
                creds,
                e_pk,
                e_sk,
                recipient: Wallet::generate(&mut rng),
                gateway: Wallet::generate(&mut rng),
            }
        });
        f(env)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any reading within the RSA capacity survives the full seal → open
    /// path, and its signature verifies.
    #[test]
    fn seal_open_round_trip(reading in proptest::collection::vec(any::<u8>(), 0..32), seed in any::<u64>()) {
        with_env(|env| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sealed = seal_reading(&mut rng, &env.creds, &env.e_pk, &reading).unwrap();
            let record = env.registry.get(&DeviceId(1)).unwrap();
            prop_assert!(verify_uplink(record, &env.e_pk, &sealed));
            prop_assert_eq!(open_reading(record, &env.e_sk, &sealed.em).unwrap(), reading);
            Ok(())
        })?;
    }

    /// Any single corrupted byte in Em breaks the signature.
    #[test]
    fn any_tamper_detected(
        reading in proptest::collection::vec(any::<u8>(), 1..16),
        byte in 0usize..64,
        flip in 1u8..=255,
        seed in any::<u64>(),
    ) {
        with_env(|env| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sealed = seal_reading(&mut rng, &env.creds, &env.e_pk, &reading).unwrap();
            let idx = byte % sealed.em.len();
            sealed.em[idx] ^= flip;
            let record = env.registry.get(&DeviceId(1)).unwrap();
            prop_assert!(!verify_uplink(record, &env.e_pk, &sealed));
            Ok(())
        })?;
    }

    /// Escrow construction balances value for arbitrary reward/fee/coins,
    /// and the claim always recovers a matching key.
    #[test]
    fn escrow_value_balance(
        coin_value in 20u64..100_000,
        reward_frac in 1u64..100,
        fee in 0u64..10,
        height in 0u64..10_000,
    ) {
        with_env(|env| {
            let reward = (coin_value - fee).min(reward_frac.max(1));
            prop_assume!(coin_value >= reward + fee);
            let coin = (
                OutPoint { txid: TxId([3; 32]), vout: 0 },
                env.recipient.locking_script(),
                coin_value,
            );
            let escrow = build_escrow(
                &env.recipient,
                &[coin],
                &env.e_pk,
                &env.gateway.address(),
                reward,
                fee,
                height,
            );
            // Outputs: escrow + optional change; total = coin - fee.
            prop_assert_eq!(escrow.tx.total_output(), coin_value - fee);
            prop_assert_eq!(escrow.tx.outputs[0].value, reward);
            prop_assert_eq!(escrow.refund_height, height + bcwan::escrow::REFUND_DELTA);
            let found = find_escrow_for_key(&escrow.tx, &env.e_pk);
            prop_assert_eq!(found, Some((0, reward)));

            let claim = build_claim(
                &env.gateway,
                escrow.outpoint(),
                &escrow.script,
                reward,
                &env.e_sk,
                fee.min(reward),
            );
            let revealed = extract_key_from_claim(&claim, &escrow.outpoint()).unwrap();
            prop_assert!(env.e_pk.matches_private(&revealed));
            Ok(())
        })?;
    }

    /// The directory announcement codec round-trips any field values.
    #[test]
    fn announcement_codec_round_trip(
        addr in any::<[u8; 20]>(),
        ip in any::<[u8; 4]>(),
        port in any::<u16>(),
        seq in any::<u32>(),
    ) {
        let ann = IpAnnouncement {
            address: Address(addr),
            endpoint: NetAddr { ip, port },
            seq,
        };
        prop_assert_eq!(IpAnnouncement::from_payload(&ann.to_payload()), Some(ann));
        // And through the script embedding.
        let script = ann.to_script();
        prop_assert_eq!(
            IpAnnouncement::from_payload(script.op_return_data().unwrap()),
            Some(ann)
        );
    }

    /// Garbage never parses as an announcement (wrong magic/length).
    #[test]
    fn garbage_announcements_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(bytes.len() != 34 || &bytes[..4] != b"BCIP");
        prop_assert_eq!(IpAnnouncement::from_payload(&bytes), None);
    }
}
