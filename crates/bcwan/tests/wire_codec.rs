//! Deterministic round-trip fuzz for the `WanMessage` wire codec.
//!
//! Random messages drawn from a seeded `StdRng` must encode→decode to an
//! identical value; every truncated prefix must be rejected; byte
//! corruption must never panic (it may decode to a different message —
//! the frame layer's CRC catches corruption in transit; this layer only
//! guarantees totality).

use bcwan::exchange::SealedUplink;
use bcwan::provisioning::DeviceId;
use bcwan::wire::WanMessage;
use bcwan_chain::{Block, BlockHash, BlockHeader, OutPoint, Transaction, TxId, TxIn, TxOut};
use bcwan_p2p::ChainMessage;
use bcwan_script::{Opcode, Script};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn random_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    bytes
}

fn random_hash(rng: &mut StdRng) -> [u8; 32] {
    let mut hash = [0u8; 32];
    rng.fill_bytes(&mut hash);
    hash
}

// Pushes only (1–120 bytes, exercising both direct-push and PUSHDATA1
// prefixes) plus opcodes whose byte form round-trips unambiguously.
// Empty pushes are excluded: `to_bytes` canonicalizes them to `OP_0`,
// which parses back as the opcode, so they are not wire-stable.
fn random_script(rng: &mut StdRng) -> Script {
    let mut builder = Script::builder();
    for _ in 0..rng.gen_range(0..4usize) {
        if rng.gen_range(0..3u8) == 0 {
            let op = [Opcode::Dup, Opcode::CheckSig][rng.gen_range(0..2usize)];
            builder = builder.op(op);
        } else {
            let len = rng.gen_range(1..120usize);
            builder = builder.push(random_bytes(rng, len));
        }
    }
    builder.build()
}

fn random_tx(rng: &mut StdRng) -> Transaction {
    let inputs = (0..rng.gen_range(0..3usize))
        .map(|_| TxIn {
            prevout: OutPoint {
                txid: TxId(random_hash(rng)),
                vout: rng.gen(),
            },
            script_sig: random_script(rng),
            sequence: rng.gen(),
        })
        .collect();
    let outputs = (0..rng.gen_range(0..3usize))
        .map(|_| TxOut {
            value: rng.gen(),
            script_pubkey: random_script(rng),
        })
        .collect();
    Transaction {
        version: rng.gen(),
        inputs,
        outputs,
        lock_time: rng.gen(),
    }
}

fn random_block(rng: &mut StdRng) -> Block {
    Block {
        header: BlockHeader {
            version: rng.gen(),
            prev_hash: BlockHash(random_hash(rng)),
            merkle_root: random_hash(rng),
            time_us: rng.gen(),
            bits: rng.gen(),
            nonce: rng.gen(),
        },
        transactions: (0..rng.gen_range(0..3usize))
            .map(|_| random_tx(rng))
            .collect(),
    }
}

fn random_message(rng: &mut StdRng) -> WanMessage {
    match rng.gen_range(0..6u8) {
        0 => WanMessage::Chain(ChainMessage::Tx(random_tx(rng))),
        1 => WanMessage::Chain(ChainMessage::Block(random_block(rng))),
        2 => WanMessage::Chain(ChainMessage::GetBlock(BlockHash(random_hash(rng)))),
        3 => WanMessage::Chain(ChainMessage::GetBlocksFrom(rng.gen())),
        4 => WanMessage::Chain(ChainMessage::TipAnnounce {
            hash: BlockHash(random_hash(rng)),
            height: rng.gen(),
        }),
        _ => {
            let pk_len = rng.gen_range(0..200usize);
            let em_len = rng.gen_range(0..300usize);
            let sig_len = rng.gen_range(0..100usize);
            WanMessage::Deliver {
                device_id: DeviceId(rng.gen()),
                e_pk_bytes: random_bytes(rng, pk_len),
                uplink: SealedUplink {
                    em: random_bytes(rng, em_len),
                    sig: random_bytes(rng, sig_len),
                },
            }
        }
    }
}

#[test]
fn random_messages_round_trip_identically() {
    let mut rng = StdRng::seed_from_u64(0xb0c4);
    for i in 0..300 {
        let msg = random_message(&mut rng);
        let bytes = msg.encode();
        let decoded = WanMessage::decode(&bytes)
            .unwrap_or_else(|e| panic!("iteration {i}: decode failed: {e} for {msg:?}"));
        assert_eq!(decoded, msg, "iteration {i}");
        // Determinism: re-encoding the decoded value is byte-identical.
        assert_eq!(decoded.encode(), bytes, "iteration {i}");
    }
}

#[test]
fn every_truncated_prefix_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    for _ in 0..30 {
        let bytes = random_message(&mut rng).encode();
        for cut in 0..bytes.len() {
            assert!(
                WanMessage::decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn corrupted_bytes_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for _ in 0..150 {
        let mut bytes = random_message(&mut rng).encode();
        if bytes.is_empty() {
            continue;
        }
        let at = rng.gen_range(0..bytes.len());
        let mask = (rng.gen_range(0..255u8)) + 1; // never a no-op flip
        bytes[at] ^= mask;
        // Either error or a (different) valid message — but never a panic
        // and never an oversized allocation.
        let _ = WanMessage::decode(&bytes);
    }
}

#[test]
fn pure_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x9a4b);
    for _ in 0..300 {
        let len = rng.gen_range(0..200usize);
        let bytes = random_bytes(&mut rng, len);
        let _ = WanMessage::decode(&bytes);
    }
}
