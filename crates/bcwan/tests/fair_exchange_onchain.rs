//! On-chain fair-exchange settlement, end to end on a real [`Chain`].
//!
//! The paper's §6 escrow has two spend paths: the gateway's key-reveal
//! claim, and the recipient's `OP_CHECKLOCKTIMEVERIFY` refund once the
//! lock height passes. This test drives the refund branch with actual
//! blocks — no simulator, no mempool shortcuts: the gateway never
//! claims, a premature refund is rejected by consensus, the refund
//! confirms once the locktime passes, and a late claim of the now-spent
//! escrow is rejected. The recipient ends the run with every satoshi it
//! started with (fees are zero throughout).

use bcwan::escrow;
use bcwan_chain::{
    validate_transaction, Block, BlockAction, Chain, ChainParams, OutPoint, Transaction, TxOut,
    UtxoSet, Wallet,
};
use bcwan_crypto::{generate_keypair, RsaKeySize};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mines a block of `txs` (after a fee-burning coinbase) on `parent`.
fn mine_on(
    chain: &Chain,
    parent: bcwan_chain::BlockHash,
    height: u64,
    txs: Vec<Transaction>,
) -> Block {
    let mut transactions = vec![Transaction::coinbase(
        height,
        &height.to_le_bytes(),
        vec![TxOut {
            value: chain.params().coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    transactions.extend(txs);
    Block::mine(parent, height, chain.params().difficulty_bits, transactions)
}

/// Sum of UTXO value locked to `wallet`'s address.
fn wallet_balance(utxo: &UtxoSet, wallet: &Wallet) -> u64 {
    let script = wallet.locking_script();
    utxo.iter()
        .filter(|(_, e)| e.output.script_pubkey == script)
        .map(|(_, e)| e.output.value)
        .sum()
}

#[test]
fn unclaimed_escrow_refunds_after_locktime_and_rejects_late_claim() {
    let mut rng = StdRng::seed_from_u64(42);
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);

    const FUND: u64 = 100_000;
    const REWARD: u64 = 60_000;

    let params = ChainParams::fast_test();
    let maturity = params.coinbase_maturity;
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), FUND)]);
    let funding = OutPoint {
        txid: genesis.transactions[0].txid(),
        vout: 0,
    };
    let mut chain = Chain::new(params, genesis);

    // Mine the genesis allocation to maturity before spending it.
    for h in 1..=maturity {
        let b = mine_on(&chain, chain.tip(), h, vec![]);
        assert_eq!(chain.add_block(b).unwrap(), BlockAction::Extended(h));
    }

    // The escrow confirms in the next block; its CLTV branch opens four
    // blocks later.
    let escrow_height = maturity + 1;
    let escrow = escrow::build_escrow_with_delta(
        &recipient,
        &[(funding, recipient.locking_script(), FUND)],
        &e_pk,
        &gateway.address(),
        REWARD,
        0,
        escrow_height,
        4,
    );
    let b = mine_on(&chain, chain.tip(), escrow_height, vec![escrow.tx.clone()]);
    assert_eq!(
        chain.add_block(b).unwrap(),
        BlockAction::Extended(escrow_height)
    );
    assert_eq!(
        wallet_balance(chain.utxo(), &recipient),
        FUND - REWARD,
        "only the change output is the recipient's while escrowed"
    );

    // The gateway never claims. A refund before the lock height must be
    // rejected, both as a lone transaction and inside a block.
    let refund = escrow::build_refund(&recipient, &escrow, REWARD, 0);
    let early_height = chain.height() + 1;
    assert!(early_height < escrow.refund_height, "still inside the lock");
    assert!(
        validate_transaction(&refund, chain.utxo(), early_height, chain.params()).is_err(),
        "CLTV refund invalid before the lock height"
    );
    let premature = mine_on(&chain, chain.tip(), early_height, vec![refund.clone()]);
    assert!(
        chain.add_block(premature).is_err(),
        "consensus rejects a block confirming a premature refund"
    );
    assert_eq!(
        chain.height(),
        escrow_height,
        "rejected block changed nothing"
    );

    // Let the lock height pass with empty blocks…
    for h in chain.height() + 1..escrow.refund_height {
        let b = mine_on(&chain, chain.tip(), h, vec![]);
        assert_eq!(chain.add_block(b).unwrap(), BlockAction::Extended(h));
    }

    // …after which the same refund transaction confirms.
    assert!(
        validate_transaction(&refund, chain.utxo(), escrow.refund_height, chain.params()).is_ok()
    );
    let b = mine_on(
        &chain,
        chain.tip(),
        escrow.refund_height,
        vec![refund.clone()],
    );
    assert_eq!(
        chain.add_block(b).unwrap(),
        BlockAction::Extended(escrow.refund_height)
    );

    // A late claim spends an outpoint that no longer exists: rejected as
    // a transaction and as a block.
    let claim = escrow::build_claim(
        &gateway,
        escrow.outpoint(),
        &escrow.script,
        REWARD,
        &e_sk,
        0,
    );
    let late_height = chain.height() + 1;
    assert!(
        validate_transaction(&claim, chain.utxo(), late_height, chain.params()).is_err(),
        "escrow outpoint already spent by the refund"
    );
    let late = mine_on(&chain, chain.tip(), late_height, vec![claim]);
    assert!(chain.add_block(late).is_err(), "late claim block rejected");

    // The recipient is whole again, and the gateway earned nothing.
    assert_eq!(wallet_balance(chain.utxo(), &recipient), FUND);
    assert_eq!(wallet_balance(chain.utxo(), &gateway), 0);
}
