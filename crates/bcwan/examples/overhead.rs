//! Wall-clock timing harness for `World::run`, used to bound the
//! overhead of the observability instrumentation (tracing disabled must
//! cost ≤ 5 % vs. the uninstrumented baseline).
//!
//! ```text
//! cargo run --release -p bcwan --example overhead [exchanges] [reps]
//! ```

use bcwan::world::{WorkloadConfig, World};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let exchanges: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    // Warm-up run (page in code, allocator).
    let _ = World::new(WorkloadConfig::tiny(exchanges, 1)).run();

    let mut times = Vec::with_capacity(reps);
    for rep in 0..reps {
        let cfg = WorkloadConfig::tiny(exchanges, 42 + rep as u64);
        let world = World::new(cfg);
        let start = Instant::now();
        let result = world.run();
        let elapsed = start.elapsed();
        times.push(elapsed.as_secs_f64());
        println!(
            "rep {rep}: {:.3} ms ({} completed)",
            elapsed.as_secs_f64() * 1e3,
            result.completed
        );
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "exchanges={exchanges} reps={reps} median={:.3} ms mean={:.3} ms",
        median * 1e3,
        mean * 1e3
    );
}
