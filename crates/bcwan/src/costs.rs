//! Processing-cost model for edge hardware.
//!
//! The paper measures wall-clock latency on a Nucleo node, Raspberry Pi
//! gateways and small PlanetLab VMs (4 cores / 512 MB). Our simulator runs
//! on a workstation, so the CPU component of each protocol step is charged
//! from this table instead of measured. The `pi_class` preset is
//! calibrated so a full no-stall exchange lands at the paper's Fig. 5
//! scale (mean ≈ 1.6 s); `zero` isolates pure network/radio time.

use bcwan_sim::SimDuration;

/// CPU time charged per protocol operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Gateway: generate the ephemeral RSA keypair (step 1). Dominated by
    /// prime search; hundreds of ms on a Pi-class core for RSA-512.
    pub rsa_keygen: SimDuration,
    /// Node: AES-CBC + RSA-encrypt the Fig. 4 frame (step 3).
    pub node_encrypt: SimDuration,
    /// Node: RSA-sign `Em ‖ ePk` (step 4). The Nucleo is the slowest CPU
    /// in the chain.
    pub node_sign: SimDuration,
    /// Recipient: verify the node signature (step 8).
    pub verify_signature: SimDuration,
    /// Recipient/gateway: assemble and sign a transaction via the daemon
    /// ("create, sign, send" JSON-RPC round trips in the paper's PoC).
    pub tx_build: SimDuration,
    /// Daemon: validate one incoming transaction.
    pub tx_validate: SimDuration,
    /// Recipient: RSA-decrypt `Em` with the revealed key and AES-decrypt
    /// (step 10).
    pub open_reading: SimDuration,
    /// Gateway: directory lookup (local scan of its chain index).
    pub directory_lookup: SimDuration,
}

impl CostModel {
    /// Calibrated to the paper's testbed classes (Nucleo-144 node,
    /// Raspberry Pi gateway, small VM daemons).
    pub fn pi_class() -> Self {
        CostModel {
            rsa_keygen: SimDuration::from_millis(260),
            node_encrypt: SimDuration::from_millis(80),
            // 512-bit private-key modexp on the 216 MHz Cortex-M7 Nucleo.
            node_sign: SimDuration::from_millis(390),
            verify_signature: SimDuration::from_millis(50),
            // "Create, sign, send" JSON-RPC round trips into the
            // Multichain daemon (§5.1) on a 512 MB PlanetLab VM.
            tx_build: SimDuration::from_millis(120),
            tx_validate: SimDuration::from_millis(20),
            open_reading: SimDuration::from_millis(80),
            directory_lookup: SimDuration::from_millis(8),
        }
    }

    /// Free CPU — isolates radio + network time in ablations.
    pub fn zero() -> Self {
        CostModel {
            rsa_keygen: SimDuration::ZERO,
            node_encrypt: SimDuration::ZERO,
            node_sign: SimDuration::ZERO,
            verify_signature: SimDuration::ZERO,
            tx_build: SimDuration::ZERO,
            tx_validate: SimDuration::ZERO,
            open_reading: SimDuration::ZERO,
            directory_lookup: SimDuration::ZERO,
        }
    }

    /// Scales every cost by `factor` (e.g. RSA-2048 keygen in the
    /// key-size ablation).
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |d: SimDuration| SimDuration::from_secs_f64(d.as_secs_f64() * factor);
        CostModel {
            rsa_keygen: scale(self.rsa_keygen),
            node_encrypt: scale(self.node_encrypt),
            node_sign: scale(self.node_sign),
            verify_signature: scale(self.verify_signature),
            tx_build: scale(self.tx_build),
            tx_validate: scale(self.tx_validate),
            open_reading: scale(self.open_reading),
            directory_lookup: scale(self.directory_lookup),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::pi_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_class_totals_sub_second_cpu() {
        let c = CostModel::pi_class();
        let total = c.rsa_keygen
            + c.node_encrypt
            + c.node_sign
            + c.verify_signature
            + c.tx_build
            + c.tx_validate
            + c.open_reading
            + c.directory_lookup;
        // CPU alone is well under the 1.6 s exchange; radio + WAN add the rest.
        let s = total.as_secs_f64();
        assert!((0.3..1.2).contains(&s), "cpu total {s}");
    }

    #[test]
    fn zero_is_zero() {
        let c = CostModel::zero();
        assert_eq!(c.rsa_keygen, SimDuration::ZERO);
        assert_eq!(c.open_reading, SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        let c = CostModel::pi_class().scaled(2.0);
        assert_eq!(c.rsa_keygen.as_millis(), 520);
        let half = CostModel::pi_class().scaled(0.5);
        assert_eq!(half.tx_build.as_millis(), 60);
    }
}
