//! The §6 double-spend attack and its confirmation-depth counter-measure.
//!
//! "If the recipient double spends the first transaction, the recipient
//! can retrieve the ephemeral private key necessary to decipher the
//! encrypted data without rewarding the foreign gateway."
//!
//! Two tools live here:
//!
//! - [`play_double_spend_mechanics`] drives the *real* chain, mempool and
//!   scripts through the attack once, proving each step's outcome
//!   (escrow admitted at the gateway, conflict admitted at the miner,
//!   escrow rejected there, claim orphaned, key nevertheless revealed);
//! - [`simulate_attack_rates`] Monte-Carlos the race between the
//!   conflicting transaction (recipient → miner, one hop) and the honest
//!   escrow relay (recipient → gateway → miner, two hops plus daemon
//!   work), and prices the defence: waiting `D` confirmations costs
//!   `≈ D` block intervals of latency (the §6 Bitcoin analogy:
//!   6 × 10 min = 60 min).

use crate::costs::CostModel;
use crate::escrow::{build_claim, build_escrow, extract_key_from_claim};
use bcwan_chain::{Chain, ChainParams, Mempool, OutPoint, TxOut, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_sim::{LatencyModel, SimRng};

/// The verdict of one mechanics run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleSpendMechanics {
    /// The gateway's mempool accepted the (doomed) escrow.
    pub gateway_accepted_escrow: bool,
    /// The miner accepted the conflicting spend first.
    pub miner_accepted_conflict: bool,
    /// The miner then rejected the honest escrow as a conflict.
    pub miner_rejected_escrow: bool,
    /// The gateway's claim cannot enter the miner's pool (orphan).
    pub claim_orphaned_at_miner: bool,
    /// The recipient still extracted the ephemeral key from the claim
    /// broadcast — the theft.
    pub recipient_got_key: bool,
    /// After mining, the gateway holds no reward on chain.
    pub gateway_unpaid: bool,
}

impl DoubleSpendMechanics {
    /// Whether the §6 attack succeeded end to end.
    pub fn attack_succeeded(&self) -> bool {
        self.recipient_got_key && self.gateway_unpaid
    }
}

/// Plays the zero-confirmation double spend against the real substrate.
pub fn play_double_spend_mechanics(seed: u64) -> DoubleSpendMechanics {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let params = ChainParams::fast_test();
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let miner_wallet = Wallet::generate(&mut rng);

    // Shared bootstrap chain: recipient holds one coin.
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 1_000)]);
    let mut miner_chain = Chain::new(params.clone(), genesis.clone());
    let mut gateway_chain = Chain::new(params.clone(), genesis);
    // Mature the allocation.
    for h in 1..=params.coinbase_maturity {
        let cb = bcwan_chain::Transaction::coinbase(
            h,
            b"w",
            vec![TxOut {
                value: params.coinbase_reward,
                script_pubkey: miner_wallet.locking_script(),
            }],
        );
        let block =
            bcwan_chain::Block::mine(miner_chain.tip(), h, params.difficulty_bits, vec![cb]);
        miner_chain.add_block(block.clone()).expect("warmup");
        gateway_chain.add_block(block).expect("warmup");
    }
    let coin_outpoint = OutPoint {
        txid: miner_chain.block_at(0).unwrap().transactions[0].txid(),
        vout: 0,
    };
    let coin = (coin_outpoint, recipient.locking_script(), 1_000u64);

    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);

    // The recipient crafts both transactions.
    let escrow = build_escrow(
        &recipient,
        std::slice::from_ref(&coin),
        &e_pk,
        &gateway.address(),
        100,
        10,
        miner_chain.height(),
    );
    let conflict = recipient.build_payment(
        vec![(coin.0, coin.1.clone())],
        vec![TxOut {
            value: 990,
            script_pubkey: recipient.locking_script(),
        }],
        0,
    );

    let mut miner_pool = Mempool::new();
    let mut gateway_pool = Mempool::new();
    let height = miner_chain.height() + 1;

    // Conflict reaches the miner first (one hop); escrow goes to the
    // gateway directly.
    let miner_accepted_conflict = miner_pool
        .insert(conflict.clone(), miner_chain.utxo(), height, &params)
        .is_ok();
    let gateway_accepted_escrow = gateway_pool
        .insert(escrow.tx.clone(), gateway_chain.utxo(), height, &params)
        .is_ok();
    // Gateway relays the escrow to the miner — too late.
    let miner_rejected_escrow = miner_pool
        .insert(escrow.tx.clone(), miner_chain.utxo(), height, &params)
        .is_err();

    // Zero-conf gateway claims immediately, revealing eSk.
    let claim = build_claim(&gateway, escrow.outpoint(), &escrow.script, 100, &e_sk, 5);
    let claim_in_gateway_pool = gateway_pool
        .insert(claim.clone(), gateway_chain.utxo(), height, &params)
        .is_ok();
    debug_assert!(claim_in_gateway_pool);
    // The claim floods; the recipient reads the key out of it.
    let recipient_key = extract_key_from_claim(&claim, &escrow.outpoint());
    let recipient_got_key = recipient_key
        .map(|k| e_pk.matches_private(&k))
        .unwrap_or(false);
    // At the miner the claim is an orphan (its escrow parent was refused).
    let claim_orphaned_at_miner = miner_pool
        .insert(claim, miner_chain.utxo(), height, &params)
        .is_err();

    // The miner mines its pool; the gateway's reward never materializes.
    let template = miner_pool.block_template(params.max_block_size);
    let cb = bcwan_chain::Transaction::coinbase(
        height,
        b"m",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: miner_wallet.locking_script(),
        }],
    );
    let mut txs = vec![cb];
    txs.extend(template);
    let block = bcwan_chain::Block::mine(miner_chain.tip(), height, params.difficulty_bits, txs);
    miner_chain.add_block(block.clone()).expect("valid block");
    gateway_chain.add_block(block).expect("gateway follows");

    let gateway_script = gateway.locking_script();
    let gateway_unpaid = gateway_chain
        .utxo()
        .find(|e| e.output.script_pubkey == gateway_script)
        .count()
        == 0;

    DoubleSpendMechanics {
        gateway_accepted_escrow,
        miner_accepted_conflict,
        miner_rejected_escrow,
        claim_orphaned_at_miner,
        recipient_got_key,
        gateway_unpaid,
    }
}

/// Configuration for the Monte-Carlo race model.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// WAN latency model between hosts.
    pub latency: LatencyModel,
    /// Daemon processing before the gateway relays the escrow.
    pub costs: CostModel,
    /// Mean block interval of the chain.
    pub block_interval_s: f64,
    /// Confirmations the gateway demands before revealing the key.
    pub confirmation_depth: u64,
}

/// Monte-Carlo outcome for one confirmation depth.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Confirmations demanded.
    pub confirmation_depth: u64,
    /// Fraction of trials where the recipient stole the key.
    pub theft_rate: f64,
    /// Mean extra latency an *honest* exchange pays for this depth (s).
    pub honest_extra_latency_s: f64,
}

/// Runs `trials` double-spend races at the given depth.
///
/// Depth 0: theft succeeds whenever the conflicting transaction beats the
/// two-hop escrow relay to the miner (the gateway has already revealed).
/// Depth ≥ 1: the gateway reveals only after the escrow confirms, which a
/// successful conflict prevents entirely — theft requires losing the race
/// *and* is then impossible; honest latency grows by the confirmation
/// wait.
pub fn simulate_attack_rates(cfg: &AttackConfig, trials: usize, rng: &mut SimRng) -> AttackOutcome {
    let mut thefts = 0usize;
    let mut honest_latency = 0.0f64;
    for _ in 0..trials {
        // Race to the miner.
        let conflict_arrival = cfg.latency.sample(rng).as_secs_f64();
        let escrow_arrival = cfg.latency.sample(rng).as_secs_f64()
            + cfg.costs.tx_validate.as_secs_f64()
            + cfg.latency.sample(rng).as_secs_f64();
        let conflict_wins = conflict_arrival < escrow_arrival;

        if cfg.confirmation_depth == 0 {
            // Gateway revealed on first sight; theft iff the conflict
            // confirms instead of the escrow.
            if conflict_wins {
                thefts += 1;
            }
            // Honest baseline has no added wait.
        } else {
            // The gateway waits for confirmations; if the conflict won,
            // the escrow never confirms and no key is revealed (theft
            // fails; the exchange aborts). If the escrow won, the
            // confirmation wait applies.
            let mut wait = 0.0;
            for _ in 0..cfg.confirmation_depth {
                wait += rng.exponential(cfg.block_interval_s);
            }
            honest_latency += wait;
        }
    }
    AttackOutcome {
        confirmation_depth: cfg.confirmation_depth,
        theft_rate: thefts as f64 / trials as f64,
        honest_extra_latency_s: honest_latency / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanics_reproduce_the_paper_scenario() {
        let outcome = play_double_spend_mechanics(1);
        assert!(outcome.gateway_accepted_escrow);
        assert!(outcome.miner_accepted_conflict);
        assert!(outcome.miner_rejected_escrow);
        assert!(outcome.claim_orphaned_at_miner);
        assert!(outcome.recipient_got_key, "the thief obtains eSk");
        assert!(outcome.gateway_unpaid, "the gateway's reward evaporates");
        assert!(outcome.attack_succeeded());
    }

    #[test]
    fn mechanics_deterministic() {
        assert_eq!(
            play_double_spend_mechanics(7),
            play_double_spend_mechanics(7)
        );
    }

    #[test]
    fn zero_conf_theft_rate_is_high() {
        let cfg = AttackConfig {
            latency: LatencyModel::planetlab(),
            costs: CostModel::pi_class(),
            block_interval_s: 15.0,
            confirmation_depth: 0,
        };
        let mut rng = SimRng::seed_from_u64(1);
        let out = simulate_attack_rates(&cfg, 5000, &mut rng);
        assert!(out.theft_rate > 0.8, "theft rate {}", out.theft_rate);
        assert_eq!(out.honest_extra_latency_s, 0.0);
    }

    #[test]
    fn one_confirmation_stops_theft_but_costs_a_block() {
        let cfg = AttackConfig {
            latency: LatencyModel::planetlab(),
            costs: CostModel::pi_class(),
            block_interval_s: 15.0,
            confirmation_depth: 1,
        };
        let mut rng = SimRng::seed_from_u64(2);
        let out = simulate_attack_rates(&cfg, 5000, &mut rng);
        assert_eq!(out.theft_rate, 0.0);
        assert!(
            (10.0..20.0).contains(&out.honest_extra_latency_s),
            "≈ one 15 s block, got {}",
            out.honest_extra_latency_s
        );
    }

    #[test]
    fn latency_grows_linearly_with_depth() {
        let mut rng = SimRng::seed_from_u64(3);
        let at = |d: u64, rng: &mut SimRng| {
            simulate_attack_rates(
                &AttackConfig {
                    latency: LatencyModel::planetlab(),
                    costs: CostModel::pi_class(),
                    block_interval_s: 15.0,
                    confirmation_depth: d,
                },
                4000,
                rng,
            )
            .honest_extra_latency_s
        };
        let one = at(1, &mut rng);
        let six = at(6, &mut rng);
        // The paper's Bitcoin analogy: 6 confirmations ≈ 6× one.
        assert!((5.0..7.0).contains(&(six / one)), "ratio {}", six / one);
    }
}
