//! Glue between BcWAN's message vocabulary, the on-chain directory, and
//! the real TCP transport in `bcwan-p2p`.
//!
//! Three pieces:
//!
//! - [`WanCodec`] — [`WanMessage`]'s binary encoding packaged as the
//!   transport layer's [`Codec`], with per-kind metric labels,
//! - [`NetAddr`]↔[`SocketAddr`] conversions, so the endpoint format the
//!   chain stores in `OP_RETURN` outputs plugs directly into `std::net`,
//! - [`OverlayDialer`] — the paper's §4.3 delivery step as code: resolve
//!   the recipient's published endpoint in the [`Directory`] scanned off
//!   the chain, then send over whatever `SocketAddr` transport it wraps.

use crate::directory::{Directory, NetAddr};
use crate::wire::{WanMessage, KIND_COUNT};
use bcwan_chain::Address;
use bcwan_p2p::transport::{Codec, CodecError, Transport, TransportError};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, SocketAddrV4};

/// [`WanMessage`]'s binary encoding as a transport [`Codec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WanCodec;

impl Codec<WanMessage> for WanCodec {
    fn encode(&self, msg: &WanMessage) -> Vec<u8> {
        msg.encode()
    }

    fn decode(&self, bytes: &[u8]) -> Result<WanMessage, CodecError> {
        WanMessage::decode(bytes).map_err(CodecError::new)
    }

    fn kind_count(&self) -> usize {
        KIND_COUNT
    }

    fn kind_index(&self, msg: &WanMessage) -> usize {
        msg.kind_index()
    }

    fn kind_label(&self, index: usize) -> &'static str {
        ["tx", "block", "sync", "deliver"][index.min(KIND_COUNT - 1)]
    }
}

impl NetAddr {
    /// The `std::net` socket address this endpoint names.
    pub fn to_socket_addr(self) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(
            Ipv4Addr::new(self.ip[0], self.ip[1], self.ip[2], self.ip[3]),
            self.port,
        ))
    }

    /// Builds an endpoint from a socket address (`None` for IPv6 — the
    /// on-chain payload format only carries IPv4 octets).
    pub fn from_socket_addr(addr: SocketAddr) -> Option<Self> {
        match addr.ip() {
            IpAddr::V4(v4) => Some(NetAddr {
                ip: v4.octets(),
                port: addr.port(),
            }),
            IpAddr::V6(_) => None,
        }
    }
}

/// Why a directory-driven delivery failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DialError {
    /// The recipient's blockchain address has no published endpoint.
    NotInDirectory(Address),
    /// The transport gave up after its retry policy.
    Transport(TransportError),
}

impl std::fmt::Display for DialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DialError::NotInDirectory(addr) => {
                write!(f, "no directory entry for {addr}")
            }
            DialError::Transport(e) => write!(f, "delivery failed: {e}"),
        }
    }
}

impl std::error::Error for DialError {}

/// Directory-driven dialing: the lookup-then-connect a foreign gateway
/// performs to deliver a sensor's data (paper §4.3, Fig. 3 step 7).
#[derive(Debug, Clone)]
pub struct OverlayDialer<T> {
    transport: T,
    directory: Directory,
}

impl<T: Transport<SocketAddr, WanMessage>> OverlayDialer<T> {
    /// Wraps a `SocketAddr` transport with a directory view.
    pub fn new(transport: T, directory: Directory) -> Self {
        OverlayDialer {
            transport,
            directory,
        }
    }

    /// Replaces the directory view (after scanning newly arrived blocks).
    pub fn update_directory(&mut self, directory: Directory) {
        self.directory = directory;
    }

    /// The current directory view.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Resolves `recipient`'s published endpoint and sends `msg` there.
    ///
    /// # Errors
    ///
    /// [`DialError::NotInDirectory`] when the address never announced, or
    /// the transport's error once its retries are exhausted.
    pub fn deliver(&self, recipient: &Address, msg: &WanMessage) -> Result<SocketAddr, DialError> {
        let endpoint = self
            .directory
            .lookup(recipient)
            .ok_or(DialError::NotInDirectory(*recipient))?
            .to_socket_addr();
        self.transport
            .send(endpoint, msg)
            .map_err(DialError::Transport)?;
        Ok(endpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::IpAnnouncement;
    use bcwan_p2p::ChainMessage;
    use std::sync::Mutex;

    #[test]
    fn netaddr_socket_addr_round_trip() {
        let net = NetAddr {
            ip: [127, 0, 0, 1],
            port: 4433,
        };
        let sock = net.to_socket_addr();
        assert_eq!(sock.to_string(), "127.0.0.1:4433");
        assert_eq!(NetAddr::from_socket_addr(sock), Some(net));
        let v6: SocketAddr = "[::1]:80".parse().unwrap();
        assert_eq!(NetAddr::from_socket_addr(v6), None);
    }

    #[test]
    fn codec_labels_cover_all_kinds() {
        let codec = WanCodec;
        let msg = WanMessage::Chain(ChainMessage::GetBlocksFrom(0));
        assert_eq!(codec.kind_label(codec.kind_index(&msg)), "sync");
        let decoded = codec.decode(&codec.encode(&msg)).unwrap();
        assert_eq!(decoded, msg);
        assert!(codec.decode(b"junk").is_err());
    }

    /// Transport stub that records where messages were sent.
    struct Recorder(Mutex<Vec<SocketAddr>>);

    impl Transport<SocketAddr, WanMessage> for Recorder {
        fn send(&self, to: SocketAddr, _msg: &WanMessage) -> Result<(), TransportError> {
            self.0.lock().unwrap().push(to);
            Ok(())
        }
    }

    #[test]
    fn dialer_resolves_through_directory() {
        let recipient = Address([0xbb; 20]);
        let mut directory = Directory::new();
        directory.absorb(IpAnnouncement {
            address: recipient,
            endpoint: NetAddr {
                ip: [127, 0, 0, 1],
                port: 9111,
            },
            seq: 1,
        });
        let dialer = OverlayDialer::new(Recorder(Mutex::new(Vec::new())), directory);
        let msg = WanMessage::Chain(ChainMessage::GetBlocksFrom(0));
        let endpoint = dialer.deliver(&recipient, &msg).unwrap();
        assert_eq!(endpoint.to_string(), "127.0.0.1:9111");
        assert_eq!(dialer.transport.0.lock().unwrap().as_slice(), &[endpoint]);

        let unknown = Address([0xcc; 20]);
        assert_eq!(
            dialer.deliver(&unknown, &msg),
            Err(DialError::NotInDirectory(unknown))
        );
    }
}
