//! The per-exchange fault-tolerance state machine.
//!
//! Every Fig. 3 exchange progresses through named phases; the machine
//! makes the legal transitions explicit, drives per-phase deadlines
//! (bounded retry with exponential backoff for delivery, an unbounded
//! settlement watchdog for published escrows), and survives reorgs: a
//! claim or refund that confirms can be *orphaned* back to
//! [`Phase::Escrowed`], after which the watchdog re-broadcasts until the
//! chain settles it again.
//!
//! ```text
//!                 Sealed        Delivered      EscrowPublished
//!   Created ───────────▶ Sealed ────────▶ Delivered ─────────▶ Escrowed
//!      │                   │                  │                 │     ▲▲
//!      │ Abort             │ Abort            │ Abort           │     ││
//!      ▼                   ▼                  ▼   ClaimConfirmed│     ││ClaimOrphaned
//!   Abandoned ◀────────────┴──────────────────┘      ┌──────────┤     ││
//!                                                    ▼          ▼     ││RefundOrphaned
//!                                                 Claimed    Refunded ┘│
//!                                                    └─────────────────┘
//! ```
//!
//! `Escrowed` deliberately has **no** `Abort` edge: once coins sit in the
//! Listing 1 output, the only exits are on-chain (the gateway's claim or
//! the recipient's CLTV refund). Abandoning there would strand value,
//! which the chaos soak's conservation invariant would flag.

use bcwan_sim::{SimDuration, SimTime};

/// Named lifecycle phases of one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The sensor fired; radio negotiation (request/key/data) under way.
    Created,
    /// The node sealed the reading; the gateway holds the uplink and is
    /// delivering it to the recipient over the WAN.
    Sealed,
    /// The recipient verified the uplink (Fig. 3 step 8) and is building
    /// the escrow.
    Delivered,
    /// The escrow transaction is published; settlement is now the
    /// chain's business (claim or refund).
    Escrowed,
    /// The gateway's claim confirmed: the key is public, the reward paid.
    Claimed,
    /// The recipient's CLTV refund confirmed: the gateway never claimed.
    Refunded,
    /// The exchange died before any money moved (radio exhaustion,
    /// verification failure, delivery retries exhausted).
    Abandoned,
}

/// Events that move an exchange between phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmEvent {
    /// The node sealed and transmitted the reading to the gateway.
    Sealed,
    /// The recipient verified the delivery.
    Delivered,
    /// The recipient published the escrow transaction.
    EscrowPublished,
    /// A block confirmed the gateway's claim.
    ClaimConfirmed,
    /// A block confirmed the recipient's refund.
    RefundConfirmed,
    /// A reorg disconnected the block holding the claim.
    ClaimOrphaned,
    /// A reorg disconnected the block holding the refund.
    RefundOrphaned,
    /// The exchange is given up (only legal before money moved).
    Abort,
}

/// An attempted transition that the machine does not allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The phase the machine was in.
    pub from: Phase,
    /// The event that does not apply there.
    pub event: FsmEvent,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event {:?} is illegal in phase {:?}",
            self.event, self.from
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// Exponential-backoff retry schedule for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Ceiling the doubling never exceeds.
    pub max: SimDuration,
    /// Retries allowed before the phase gives up (`u32::MAX` = never).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): `base · 2ⁿ`,
    /// capped at `max`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << attempt.min(16);
        let raw = self.base.as_secs_f64() * factor as f64;
        SimDuration::from_secs_f64(raw.min(self.max.as_secs_f64()))
    }

    /// Whether `attempt` retries exhaust the budget.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_retries
    }
}

/// Deadline configuration for the machine's driven phases.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmConfig {
    /// Re-delivery schedule while `Sealed` (gateway → recipient): bounded,
    /// so a dead recipient eventually abandons the exchange.
    pub deliver_retry: RetryPolicy,
    /// Settlement watchdog while `Escrowed`: re-broadcasts vanished
    /// escrow/claim transactions and drives the CLTV refund. Unbounded —
    /// escrowed money must terminate on chain.
    pub settle_check: RetryPolicy,
    /// Consecutive settlement sweeps that find our claim/refund pooled
    /// at the acting miner yet still unconfirmed before that miner is
    /// suspected of censorship and routed around. The default backoff
    /// (10+20+40+60 s) spans several block intervals, so an honest miner
    /// essentially never trips it — and a spurious trip only rotates
    /// mining duty, it never loses money.
    pub censor_suspect_sweeps: u32,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig {
            deliver_retry: RetryPolicy {
                base: SimDuration::from_secs(5),
                max: SimDuration::from_secs(40),
                max_retries: 4,
            },
            settle_check: RetryPolicy {
                base: SimDuration::from_secs(10),
                max: SimDuration::from_secs(60),
                max_retries: u32::MAX,
            },
            censor_suspect_sweeps: 4,
        }
    }
}

/// The state machine for one exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeFsm {
    phase: Phase,
    /// When the current phase was entered.
    entered_at: SimTime,
    /// When the current deadline window was armed: phase entry, or the
    /// last retry. Anchoring here (not at phase entry) keeps capped
    /// backoff from scheduling deadlines in the past once a phase has
    /// outlived its maximum backoff.
    armed_at: SimTime,
    /// Retries burned inside the current phase.
    retries: u32,
    /// Monotonic stamp bumped on every transition *and* retry; scheduled
    /// deadline events carry the stamp they were armed with, so a stale
    /// deadline (the phase moved on) is recognizably dead on arrival.
    seq: u32,
}

impl ExchangeFsm {
    /// A fresh machine in [`Phase::Created`].
    pub fn new(now: SimTime) -> Self {
        ExchangeFsm {
            phase: Phase::Created,
            entered_at: now,
            armed_at: now,
            retries: 0,
            seq: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// When the current phase was entered.
    pub fn entered_at(&self) -> SimTime {
        self.entered_at
    }

    /// Retries burned inside the current phase.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The current deadline stamp (see the field docs).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Whether the machine reached a phase that needs no further driving.
    /// `Claimed`/`Refunded` can still be orphaned back by a reorg, so
    /// "settled" is only final once mining stops.
    pub fn is_settled(&self) -> bool {
        matches!(
            self.phase,
            Phase::Claimed | Phase::Refunded | Phase::Abandoned
        )
    }

    /// Whether money sits in an escrow output that the chain has not yet
    /// definitively claimed or refunded.
    pub fn money_at_stake(&self) -> bool {
        matches!(
            self.phase,
            Phase::Escrowed | Phase::Claimed | Phase::Refunded
        )
    }

    /// Applies `event` at `now`, returning the phase entered.
    ///
    /// # Errors
    ///
    /// [`IllegalTransition`] when `event` has no edge out of the current
    /// phase; the machine is left unchanged so callers can count the
    /// violation and continue.
    pub fn apply(&mut self, event: FsmEvent, now: SimTime) -> Result<Phase, IllegalTransition> {
        use FsmEvent as E;
        use Phase as P;
        let next = match (self.phase, event) {
            (P::Created, E::Sealed) => P::Sealed,
            (P::Sealed, E::Delivered) => P::Delivered,
            (P::Delivered, E::EscrowPublished) => P::Escrowed,
            (P::Escrowed, E::ClaimConfirmed) => P::Claimed,
            (P::Escrowed, E::RefundConfirmed) => P::Refunded,
            (P::Claimed, E::ClaimOrphaned) => P::Escrowed,
            (P::Refunded, E::RefundOrphaned) => P::Escrowed,
            (P::Created | P::Sealed | P::Delivered, E::Abort) => P::Abandoned,
            (from, event) => return Err(IllegalTransition { from, event }),
        };
        self.phase = next;
        self.entered_at = now;
        self.armed_at = now;
        self.retries = 0;
        self.seq = self.seq.wrapping_add(1);
        Ok(next)
    }

    /// Records one retry in the current phase at `now` (re-arming the
    /// deadline from there), returning the new stamp.
    pub fn note_retry(&mut self, now: SimTime) -> u32 {
        self.retries += 1;
        self.armed_at = now;
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// The next deadline for the current phase under `cfg`, with the
    /// stamp a deadline event must carry. `None` for phases that are not
    /// deadline-driven.
    pub fn deadline(&self, cfg: &FsmConfig) -> Option<(SimTime, u32)> {
        let policy = match self.phase {
            Phase::Sealed => &cfg.deliver_retry,
            Phase::Escrowed => &cfg.settle_check,
            _ => return None,
        };
        Some((self.armed_at + policy.backoff(self.retries), self.seq))
    }

    /// Whether the phase's retry budget is spent under `cfg`.
    pub fn retries_exhausted(&self, cfg: &FsmConfig) -> bool {
        match self.phase {
            Phase::Sealed => cfg.deliver_retry.exhausted(self.retries),
            Phase::Escrowed => cfg.settle_check.exhausted(self.retries),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn happy_path_claim() {
        let mut fsm = ExchangeFsm::new(t(0));
        for (event, phase) in [
            (FsmEvent::Sealed, Phase::Sealed),
            (FsmEvent::Delivered, Phase::Delivered),
            (FsmEvent::EscrowPublished, Phase::Escrowed),
            (FsmEvent::ClaimConfirmed, Phase::Claimed),
        ] {
            assert_eq!(fsm.apply(event, t(1)).unwrap(), phase);
        }
        assert!(fsm.is_settled());
        assert!(fsm.money_at_stake());
    }

    #[test]
    fn refund_path_and_orphan_recovery() {
        let mut fsm = ExchangeFsm::new(t(0));
        fsm.apply(FsmEvent::Sealed, t(1)).unwrap();
        fsm.apply(FsmEvent::Delivered, t(2)).unwrap();
        fsm.apply(FsmEvent::EscrowPublished, t(3)).unwrap();
        // A claim confirms, is orphaned by a reorg, and the escrow then
        // settles through the refund branch instead.
        fsm.apply(FsmEvent::ClaimConfirmed, t(4)).unwrap();
        assert_eq!(
            fsm.apply(FsmEvent::ClaimOrphaned, t(5)).unwrap(),
            Phase::Escrowed
        );
        assert!(!fsm.is_settled());
        fsm.apply(FsmEvent::RefundConfirmed, t(6)).unwrap();
        assert_eq!(fsm.phase(), Phase::Refunded);
        // And a refund can be orphaned right back.
        fsm.apply(FsmEvent::RefundOrphaned, t(7)).unwrap();
        assert_eq!(fsm.phase(), Phase::Escrowed);
    }

    #[test]
    fn escrowed_cannot_abort() {
        let mut fsm = ExchangeFsm::new(t(0));
        fsm.apply(FsmEvent::Sealed, t(1)).unwrap();
        assert_eq!(fsm.apply(FsmEvent::Abort, t(2)).unwrap(), Phase::Abandoned);

        let mut fsm = ExchangeFsm::new(t(0));
        fsm.apply(FsmEvent::Sealed, t(1)).unwrap();
        fsm.apply(FsmEvent::Delivered, t(2)).unwrap();
        fsm.apply(FsmEvent::EscrowPublished, t(3)).unwrap();
        let err = fsm.apply(FsmEvent::Abort, t(4)).unwrap_err();
        assert_eq!(err.from, Phase::Escrowed);
        assert_eq!(fsm.phase(), Phase::Escrowed, "machine unchanged");
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut fsm = ExchangeFsm::new(t(0));
        assert!(fsm.apply(FsmEvent::ClaimConfirmed, t(1)).is_err());
        assert!(fsm.apply(FsmEvent::Delivered, t(1)).is_err());
        assert_eq!(fsm.phase(), Phase::Created);
    }

    #[test]
    fn deadlines_and_backoff() {
        let cfg = FsmConfig::default();
        let mut fsm = ExchangeFsm::new(t(0));
        assert!(fsm.deadline(&cfg).is_none(), "Created is not driven");
        fsm.apply(FsmEvent::Sealed, t(10)).unwrap();
        let (d0, s0) = fsm.deadline(&cfg).unwrap();
        assert_eq!(d0, t(15), "base 5 s");
        fsm.note_retry(t(15));
        let (d1, s1) = fsm.deadline(&cfg).unwrap();
        assert_eq!(d1, t(25), "doubled to 10 s, anchored at the retry");
        assert_ne!(s0, s1, "retry re-stamps the deadline");
        fsm.note_retry(t(25));
        fsm.note_retry(t(45));
        fsm.note_retry(t(85));
        let (d4, _) = fsm.deadline(&cfg).unwrap();
        assert_eq!(d4, t(125), "capped at 40 s");
        assert!(fsm.retries_exhausted(&cfg), "4 retries = budget spent");
    }

    #[test]
    fn settle_watchdog_is_unbounded() {
        let cfg = FsmConfig::default();
        let mut fsm = ExchangeFsm::new(t(0));
        fsm.apply(FsmEvent::Sealed, t(1)).unwrap();
        fsm.apply(FsmEvent::Delivered, t(2)).unwrap();
        fsm.apply(FsmEvent::EscrowPublished, t(3)).unwrap();
        for i in 0..1000 {
            fsm.note_retry(t(3 + i));
        }
        assert!(!fsm.retries_exhausted(&cfg));
        let (deadline, _) = fsm.deadline(&cfg).unwrap();
        assert_eq!(
            deadline,
            t(1002 + 60),
            "capped at 60 s past the last retry — always in the future"
        );
    }

    #[test]
    fn stale_deadline_stamps_detectable() {
        let cfg = FsmConfig::default();
        let mut fsm = ExchangeFsm::new(t(0));
        fsm.apply(FsmEvent::Sealed, t(1)).unwrap();
        let (_, stamp) = fsm.deadline(&cfg).unwrap();
        fsm.apply(FsmEvent::Delivered, t(2)).unwrap();
        assert_ne!(fsm.seq(), stamp, "transition invalidates armed deadline");
    }
}
