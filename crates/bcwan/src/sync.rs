//! Start-up chain synchronization (paper §5.1).
//!
//! "On start-up, each node retrieves the recent blocks from other nodes
//! and scans their content for foreign gateways IPs." A joining gateway
//! asks a peer for everything above its own tip
//! (`ChainMessage::GetBlocksFrom`), applies the response, and rebuilds
//! its directory view.

use crate::directory::Directory;
use bcwan_chain::{Block, BlockAction, Chain};

/// Serves a `GetBlocksFrom(height)` request: all main-chain blocks
/// strictly above `height`, in order.
pub fn serve_blocks_from(chain: &Chain, height: u64) -> Vec<Block> {
    serve_blocks_from_bounded(chain, height, usize::MAX)
}

/// Like [`serve_blocks_from`], but returns at most `max` blocks — the
/// batched form a live daemon answers with, so one lagging peer cannot
/// make it serialize the whole chain into a single response. The
/// requester re-asks from its new tip until it stops making progress.
pub fn serve_blocks_from_bounded(chain: &Chain, height: u64, max: usize) -> Vec<Block> {
    let mut out = Vec::new();
    let mut h = height + 1;
    while out.len() < max {
        let Some(block) = chain.block_at(h) else {
            break;
        };
        out.push(block.clone());
        h += 1;
    }
    out
}

/// Outcome of a catch-up attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Blocks connected to the main chain (including via reorg).
    pub connected: usize,
    /// Blocks rejected (invalid or orphaned off an unknown parent).
    pub rejected: usize,
    /// Final chain height.
    pub height: u64,
}

/// Applies a batch of blocks from a peer, tolerating duplicates and
/// invalid entries (a malicious peer cannot corrupt the chain — only
/// waste our time).
pub fn catch_up(chain: &mut Chain, blocks: Vec<Block>) -> SyncOutcome {
    let mut connected = 0;
    let mut rejected = 0;
    for block in blocks {
        match chain.add_block(block) {
            Ok(BlockAction::Extended(_)) | Ok(BlockAction::Reorganized { .. }) => connected += 1,
            Ok(BlockAction::SideChain) | Ok(BlockAction::AlreadyKnown) => {}
            Err(_) => rejected += 1,
        }
    }
    SyncOutcome {
        connected,
        rejected,
        height: chain.height(),
    }
}

/// Full §5.1 start-up: sync from a peer's chain, then scan for IPs.
pub fn bootstrap_from_peer(local: &mut Chain, peer: &Chain) -> (SyncOutcome, Directory) {
    let blocks = serve_blocks_from(peer, local.height());
    let outcome = catch_up(local, blocks);
    let directory = Directory::from_chain(local);
    (outcome, directory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{IpAnnouncement, NetAddr};
    use bcwan_chain::{ChainParams, OutPoint, Transaction, TxOut, Wallet};
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mine_empty(chain: &mut Chain, tag: &[u8]) {
        let params = chain.params().clone();
        let height = chain.height() + 1;
        let cb = Transaction::coinbase(
            height,
            tag,
            vec![TxOut {
                value: params.coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        let block = bcwan_chain::Block::mine(chain.tip(), height, params.difficulty_bits, vec![cb]);
        chain.add_block(block).unwrap();
    }

    fn two_chains(seed: u64) -> (Chain, Chain, Wallet, ChainParams) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ChainParams::multichain_like();
        params.coinbase_maturity = 0;
        let wallet = Wallet::generate(&mut rng);
        let genesis = Chain::make_genesis(&params, &[(wallet.address(), 1_000)]);
        let veteran = Chain::new(params.clone(), genesis.clone());
        let newcomer = Chain::new(params.clone(), genesis);
        (veteran, newcomer, wallet, params)
    }

    #[test]
    fn newcomer_catches_up_fully() {
        let (mut veteran, mut newcomer, _, _) = two_chains(1);
        for i in 0..8u8 {
            mine_empty(&mut veteran, &[i]);
        }
        assert_eq!(newcomer.height(), 0);
        let (outcome, _) = bootstrap_from_peer(&mut newcomer, &veteran);
        assert_eq!(outcome.connected, 8);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(newcomer.height(), veteran.height());
        assert_eq!(newcomer.tip(), veteran.tip());
    }

    #[test]
    fn partial_sync_resumes_where_it_left_off() {
        let (mut veteran, mut newcomer, _, _) = two_chains(2);
        for i in 0..4u8 {
            mine_empty(&mut veteran, &[i]);
        }
        bootstrap_from_peer(&mut newcomer, &veteran);
        // The veteran advances again; only the delta transfers.
        for i in 4..9u8 {
            mine_empty(&mut veteran, &[i]);
        }
        let blocks = serve_blocks_from(&veteran, newcomer.height());
        assert_eq!(blocks.len(), 5);
        let outcome = catch_up(&mut newcomer, blocks);
        assert_eq!(outcome.connected, 5);
        assert_eq!(newcomer.tip(), veteran.tip());
    }

    #[test]
    fn sync_rebuilds_the_directory() {
        let (mut veteran, mut newcomer, wallet, params) = two_chains(3);
        let coin = OutPoint {
            txid: veteran.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        };
        let endpoint = NetAddr {
            ip: [10, 1, 2, 3],
            port: 7000,
        };
        let ann = IpAnnouncement {
            address: wallet.address(),
            endpoint,
            seq: 0,
        };
        let tx = wallet.build_payment(
            vec![(coin, wallet.locking_script())],
            vec![
                ann.to_output(),
                TxOut {
                    value: 990,
                    script_pubkey: wallet.locking_script(),
                },
            ],
            0,
        );
        let height = veteran.height() + 1;
        let cb = Transaction::coinbase(
            height,
            b"a",
            vec![TxOut {
                value: params.coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        let block =
            bcwan_chain::Block::mine(veteran.tip(), height, params.difficulty_bits, vec![cb, tx]);
        veteran.add_block(block).unwrap();

        let (outcome, directory) = bootstrap_from_peer(&mut newcomer, &veteran);
        assert_eq!(outcome.connected, 1);
        assert_eq!(directory.lookup(&wallet.address()), Some(endpoint));
    }

    #[test]
    fn garbage_blocks_are_counted_not_fatal() {
        let (mut veteran, mut newcomer, _, params) = two_chains(4);
        mine_empty(&mut veteran, b"good");
        let mut blocks = serve_blocks_from(&veteran, 0);
        // A block from nowhere (unknown parent).
        let junk = bcwan_chain::Block::mine(
            bcwan_chain::BlockHash([0xee; 32]),
            9,
            params.difficulty_bits,
            vec![Transaction::coinbase(
                9,
                b"junk",
                vec![TxOut {
                    value: 1,
                    script_pubkey: Script::new(),
                }],
            )],
        );
        blocks.push(junk);
        let outcome = catch_up(&mut newcomer, blocks);
        assert_eq!(outcome.connected, 1);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(newcomer.height(), 1);
    }

    #[test]
    fn duplicate_blocks_are_harmless() {
        let (mut veteran, mut newcomer, _, _) = two_chains(5);
        mine_empty(&mut veteran, b"x");
        let blocks = serve_blocks_from(&veteran, 0);
        catch_up(&mut newcomer, blocks.clone());
        let outcome = catch_up(&mut newcomer, blocks);
        assert_eq!(outcome.connected, 0);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(newcomer.height(), 1);
    }
}
