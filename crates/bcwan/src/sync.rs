//! Start-up chain synchronization (paper §5.1), headers-first.
//!
//! "On start-up, each node retrieves the recent blocks from other nodes
//! and scans their content for foreign gateways IPs." A joining or
//! restarted gateway syncs in two phases driven by [`HeaderSync`]:
//!
//! 1. **Locate** — fetch bounded header batches
//!    (`ChainMessage::GetHeadersFrom` / `Headers`) from a peer, walking
//!    back with a doubling look-behind until a batch links onto the
//!    local main chain. Headers are 88 bytes, so finding the fork point
//!    costs ~0.3% of the bandwidth of walking bodies — and it finds the
//!    *exact* fork even when the local tip sits on a reorged-away
//!    branch (the case the old tallest-peer block walk handled by
//!    blindly doubling how far back it re-requested bodies).
//! 2. **Fetch** — pull bodies in bounded [`GetBlocksFrom`] batches
//!    striped across every known sync peer, keeping one batch in
//!    flight per peer until the located best height is reached.
//!
//! [`serve_headers_from`] / [`serve_blocks_from_bounded`] are the
//! server half both the simulated world and the live fleet answer with.
//!
//! [`GetBlocksFrom`]: bcwan_p2p::ChainMessage::GetBlocksFrom

use crate::directory::Directory;
use bcwan_chain::{Block, BlockAction, BlockHeader, Chain};
use bcwan_p2p::NodeId;

/// Serves a `GetBlocksFrom(height)` request: all main-chain blocks
/// strictly above `height`, in order.
pub fn serve_blocks_from(chain: &Chain, height: u64) -> Vec<Block> {
    serve_blocks_from_bounded(chain, height, usize::MAX)
}

/// Like [`serve_blocks_from`], but returns at most `max` blocks — the
/// batched form a live daemon answers with, so one lagging peer cannot
/// make it serialize the whole chain into a single response. The
/// requester re-asks from its new tip until it stops making progress.
pub fn serve_blocks_from_bounded(chain: &Chain, height: u64, max: usize) -> Vec<Block> {
    let mut out = Vec::new();
    let mut h = height + 1;
    while out.len() < max {
        let Some(block) = chain.block_at(h) else {
            break;
        };
        out.push(block.clone());
        h += 1;
    }
    out
}

/// Outcome of a catch-up attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Blocks connected to the main chain (including via reorg).
    pub connected: usize,
    /// Blocks rejected (invalid or orphaned off an unknown parent).
    pub rejected: usize,
    /// Final chain height.
    pub height: u64,
}

/// Applies a batch of blocks from a peer, tolerating duplicates and
/// invalid entries (a malicious peer cannot corrupt the chain — only
/// waste our time).
pub fn catch_up(chain: &mut Chain, blocks: Vec<Block>) -> SyncOutcome {
    let mut connected = 0;
    let mut rejected = 0;
    for block in blocks {
        match chain.add_block(block) {
            Ok(BlockAction::Extended(_)) | Ok(BlockAction::Reorganized { .. }) => connected += 1,
            Ok(BlockAction::SideChain) | Ok(BlockAction::AlreadyKnown) => {}
            Err(_) => rejected += 1,
        }
    }
    SyncOutcome {
        connected,
        rejected,
        height: chain.height(),
    }
}

/// Full §5.1 start-up: sync from a peer's chain, then scan for IPs.
pub fn bootstrap_from_peer(local: &mut Chain, peer: &Chain) -> (SyncOutcome, Directory) {
    let blocks = serve_blocks_from(peer, local.height());
    let outcome = catch_up(local, blocks);
    let directory = Directory::from_chain(local);
    (outcome, directory)
}

/// Maximum headers per [`Headers`] batch. At 88 serialized bytes per
/// header a full batch is ~22 KiB — small enough for one WAN datagram
/// in the sim's cost model, large enough that locating a fork a few
/// hundred blocks back takes one or two round-trips.
///
/// [`Headers`]: bcwan_p2p::ChainMessage::Headers
pub const HEADER_BATCH: usize = 256;

/// Serves a `GetHeadersFrom(height)` request: headers of main-chain
/// blocks strictly above `height`, parent before child, at most `max`.
pub fn serve_headers_from(chain: &Chain, height: u64, max: usize) -> Vec<BlockHeader> {
    let mut out = Vec::new();
    let mut h = height + 1;
    while out.len() < max {
        let Some(block) = chain.block_at(h) else {
            break;
        };
        out.push(block.header.clone());
        h += 1;
    }
    out
}

/// A request the header-sync driver wants sent to a peer. The caller
/// (sim world or live fleet node) owns the transport, so the machine
/// only *describes* traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncRequest {
    /// Send `ChainMessage::GetHeadersFrom(from)` to `peer`.
    Headers {
        /// Peer to ask.
        peer: NodeId,
        /// Height to request strictly above.
        from: u64,
    },
    /// Send `ChainMessage::GetBlocksFrom(from)` to `peer`.
    Bodies {
        /// Peer to ask.
        peer: NodeId,
        /// Height to request strictly above.
        from: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum HeaderSyncState {
    /// Walking header batches back until one links onto our chain.
    Locating {
        /// Height of the last `GetHeadersFrom` we issued.
        asked_from: u64,
        /// Look-behind applied on the *next* miss (doubles each time).
        back: u64,
    },
    /// Fork located; bodies are being striped across peers.
    Fetching {
        /// Height of the common ancestor with the serving peer.
        fork: u64,
        /// Next body batch to issue starts strictly above this height.
        next_batch: u64,
        /// Starts of batches currently in flight.
        inflight: Vec<u64>,
    },
    /// Local main chain reached the located target height.
    Done,
    /// The peer's headers never linked (foreign genesis) or failed
    /// validation; the caller should drop the peer and retry later.
    Failed,
}

/// Headers-first catch-up sync, the requester half.
///
/// Drive it with [`on_headers`] for every `Headers` batch received and
/// [`on_progress`] after connecting blocks; both return the requests to
/// transmit. Lost responses are not retried internally — restarting the
/// machine (the callers already rate-limit sync attempts) re-locates
/// the fork cheaply.
///
/// [`on_headers`]: HeaderSync::on_headers
/// [`on_progress`]: HeaderSync::on_progress
#[derive(Debug, Clone)]
pub struct HeaderSync {
    peers: Vec<NodeId>,
    target: u64,
    state: HeaderSyncState,
}

impl HeaderSync {
    /// Starts a sync toward `target` (the best height announced by the
    /// first peer). `peers[0]` answers header requests; bodies are
    /// striped across all of `peers`. Returns the machine and its
    /// opening request.
    pub fn start(peers: Vec<NodeId>, local_height: u64, target: u64) -> (Self, Vec<SyncRequest>) {
        assert!(!peers.is_empty(), "header sync needs at least one peer");
        let sync = HeaderSync {
            peers,
            target,
            state: HeaderSyncState::Locating {
                asked_from: local_height,
                back: 1,
            },
        };
        let req = SyncRequest::Headers {
            peer: sync.peers[0],
            from: local_height,
        };
        (sync, vec![req])
    }

    /// Raises the target when a taller tip is announced mid-sync.
    pub fn on_tip(&mut self, height: u64) {
        if height > self.target {
            self.target = height;
        }
    }

    /// Whether the machine still wants traffic.
    pub fn is_active(&self) -> bool {
        !matches!(self.state, HeaderSyncState::Done | HeaderSyncState::Failed)
    }

    /// Whether the peer's chain turned out unlinkable or invalid.
    pub fn failed(&self) -> bool {
        matches!(self.state, HeaderSyncState::Failed)
    }

    /// The phase name, for metrics and debugging.
    pub fn phase(&self) -> &'static str {
        match self.state {
            HeaderSyncState::Locating { .. } => "locating",
            HeaderSyncState::Fetching { .. } => "fetching",
            HeaderSyncState::Done => "done",
            HeaderSyncState::Failed => "failed",
        }
    }

    /// The height both chains are known to share, once located.
    pub fn fork_height(&self) -> Option<u64> {
        match self.state {
            HeaderSyncState::Fetching { fork, .. } => Some(fork),
            _ => None,
        }
    }

    /// Feeds a received `Headers` batch. Finds the highest batch entry
    /// that matches our main chain (or links `headers[0]` onto it); on
    /// a hit, switches to body fetching; on a miss, walks the request
    /// back with a doubling look-behind.
    pub fn on_headers(
        &mut self,
        chain: &Chain,
        start_height: u64,
        headers: &[BlockHeader],
    ) -> Vec<SyncRequest> {
        let HeaderSyncState::Locating { asked_from, back } = self.state else {
            return Vec::new(); // stale batch; bodies already in flight
        };
        if start_height != asked_from {
            return Vec::new(); // answer to a request we no longer own
        }
        if headers.is_empty() {
            // The peer has nothing above start_height: either we are
            // already at (or past) its tip, or it lied about its
            // height. Both mean there is nothing to fetch from it.
            self.state = if chain.height() >= self.target {
                HeaderSyncState::Done
            } else {
                HeaderSyncState::Failed
            };
            return Vec::new();
        }
        // Internal linkage + proof-of-work, before trusting any of it.
        for (i, header) in headers.iter().enumerate() {
            if header.bits != chain.params().difficulty_bits || !header.meets_target() {
                self.state = HeaderSyncState::Failed;
                return Vec::new();
            }
            if i > 0 && header.prev_hash != headers[i - 1].hash() {
                self.state = HeaderSyncState::Failed;
                return Vec::new();
            }
        }
        // Highest batch entry that IS one of our main-chain blocks.
        let mut fork = None;
        for (i, header) in headers.iter().enumerate().rev() {
            let h = start_height + 1 + i as u64;
            if chain.block_at(h).map(|b| b.hash()) == Some(header.hash()) {
                fork = Some(h);
                break;
            }
        }
        // Or the batch links directly onto our block at start_height.
        if fork.is_none()
            && chain.block_at(start_height).map(|b| b.hash()) == Some(headers[0].prev_hash)
        {
            fork = Some(start_height);
        }
        match fork {
            Some(fork) => {
                let claimed = start_height + headers.len() as u64;
                if claimed > self.target {
                    self.target = claimed;
                }
                self.state = HeaderSyncState::Fetching {
                    fork,
                    next_batch: fork,
                    inflight: Vec::new(),
                };
                self.fill_window(chain.height())
            }
            None if start_height == 0 => {
                // Nothing in common down to genesis: a foreign chain.
                self.state = HeaderSyncState::Failed;
                Vec::new()
            }
            None => {
                let from = start_height.saturating_sub(back);
                self.state = HeaderSyncState::Locating {
                    asked_from: from,
                    back: back.saturating_mul(2),
                };
                vec![SyncRequest::Headers {
                    peer: self.peers[0],
                    from,
                }]
            }
        }
    }

    /// Call after connecting received blocks: retires completed body
    /// batches and keeps one batch in flight per peer until the target
    /// height is reached.
    pub fn on_progress(&mut self, chain: &Chain) -> Vec<SyncRequest> {
        if chain.height() >= self.target {
            if matches!(self.state, HeaderSyncState::Fetching { .. }) {
                self.state = HeaderSyncState::Done;
            }
            return Vec::new();
        }
        self.fill_window(chain.height())
    }

    fn fill_window(&mut self, local_height: u64) -> Vec<SyncRequest> {
        let target = self.target;
        let peers = &self.peers;
        let HeaderSyncState::Fetching {
            next_batch,
            inflight,
            ..
        } = &mut self.state
        else {
            return Vec::new();
        };
        let batch = crate::fleet::SYNC_BATCH as u64;
        // A batch starting at `s` covers (s, s + SYNC_BATCH]; it is
        // done once our main chain reaches its upper edge. (Batches on
        // a not-yet-dominant branch park as side-chain blocks and
        // retire only when the reorg lands — deep reorgs therefore
        // proceed one window at a time, which the shallow forks the
        // sim's partitions produce never hit.)
        inflight.retain(|&start| local_height < start + batch);
        let mut reqs = Vec::new();
        while inflight.len() < peers.len() && *next_batch < target {
            let stripe = (*next_batch / batch) as usize % peers.len();
            reqs.push(SyncRequest::Bodies {
                peer: peers[stripe],
                from: *next_batch,
            });
            inflight.push(*next_batch);
            *next_batch += batch;
        }
        reqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{IpAnnouncement, NetAddr};
    use bcwan_chain::{ChainParams, OutPoint, Transaction, TxOut, Wallet};
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mine_empty(chain: &mut Chain, tag: &[u8]) {
        let params = chain.params().clone();
        let height = chain.height() + 1;
        let cb = Transaction::coinbase(
            height,
            tag,
            vec![TxOut {
                value: params.coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        let block = bcwan_chain::Block::mine(chain.tip(), height, params.difficulty_bits, vec![cb]);
        chain.add_block(block).unwrap();
    }

    fn two_chains(seed: u64) -> (Chain, Chain, Wallet, ChainParams) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ChainParams::multichain_like();
        params.coinbase_maturity = 0;
        let wallet = Wallet::generate(&mut rng);
        let genesis = Chain::make_genesis(&params, &[(wallet.address(), 1_000)]);
        let veteran = Chain::new(params.clone(), genesis.clone());
        let newcomer = Chain::new(params.clone(), genesis);
        (veteran, newcomer, wallet, params)
    }

    #[test]
    fn newcomer_catches_up_fully() {
        let (mut veteran, mut newcomer, _, _) = two_chains(1);
        for i in 0..8u8 {
            mine_empty(&mut veteran, &[i]);
        }
        assert_eq!(newcomer.height(), 0);
        let (outcome, _) = bootstrap_from_peer(&mut newcomer, &veteran);
        assert_eq!(outcome.connected, 8);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(newcomer.height(), veteran.height());
        assert_eq!(newcomer.tip(), veteran.tip());
    }

    #[test]
    fn partial_sync_resumes_where_it_left_off() {
        let (mut veteran, mut newcomer, _, _) = two_chains(2);
        for i in 0..4u8 {
            mine_empty(&mut veteran, &[i]);
        }
        bootstrap_from_peer(&mut newcomer, &veteran);
        // The veteran advances again; only the delta transfers.
        for i in 4..9u8 {
            mine_empty(&mut veteran, &[i]);
        }
        let blocks = serve_blocks_from(&veteran, newcomer.height());
        assert_eq!(blocks.len(), 5);
        let outcome = catch_up(&mut newcomer, blocks);
        assert_eq!(outcome.connected, 5);
        assert_eq!(newcomer.tip(), veteran.tip());
    }

    #[test]
    fn sync_rebuilds_the_directory() {
        let (mut veteran, mut newcomer, wallet, params) = two_chains(3);
        let coin = OutPoint {
            txid: veteran.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        };
        let endpoint = NetAddr {
            ip: [10, 1, 2, 3],
            port: 7000,
        };
        let ann = IpAnnouncement {
            address: wallet.address(),
            endpoint,
            seq: 0,
        };
        let tx = wallet.build_payment(
            vec![(coin, wallet.locking_script())],
            vec![
                ann.to_output(),
                TxOut {
                    value: 990,
                    script_pubkey: wallet.locking_script(),
                },
            ],
            0,
        );
        let height = veteran.height() + 1;
        let cb = Transaction::coinbase(
            height,
            b"a",
            vec![TxOut {
                value: params.coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        let block =
            bcwan_chain::Block::mine(veteran.tip(), height, params.difficulty_bits, vec![cb, tx]);
        veteran.add_block(block).unwrap();

        let (outcome, directory) = bootstrap_from_peer(&mut newcomer, &veteran);
        assert_eq!(outcome.connected, 1);
        assert_eq!(directory.lookup(&wallet.address()), Some(endpoint));
    }

    #[test]
    fn garbage_blocks_are_counted_not_fatal() {
        let (mut veteran, mut newcomer, _, params) = two_chains(4);
        mine_empty(&mut veteran, b"good");
        let mut blocks = serve_blocks_from(&veteran, 0);
        // A block from nowhere (unknown parent).
        let junk = bcwan_chain::Block::mine(
            bcwan_chain::BlockHash([0xee; 32]),
            9,
            params.difficulty_bits,
            vec![Transaction::coinbase(
                9,
                b"junk",
                vec![TxOut {
                    value: 1,
                    script_pubkey: Script::new(),
                }],
            )],
        );
        blocks.push(junk);
        let outcome = catch_up(&mut newcomer, blocks);
        assert_eq!(outcome.connected, 1);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(newcomer.height(), 1);
    }

    #[test]
    fn headers_first_full_catchup_with_striping() {
        let (mut veteran, mut newcomer, _, _) = two_chains(6);
        for i in 0..40u8 {
            mine_empty(&mut veteran, &[i]);
        }
        let (mut hs, reqs) = HeaderSync::start(
            vec![NodeId(1), NodeId(2)],
            newcomer.height(),
            veteran.height(),
        );
        assert_eq!(
            reqs,
            vec![SyncRequest::Headers {
                peer: NodeId(1),
                from: 0
            }]
        );
        let headers = serve_headers_from(&veteran, 0, HEADER_BATCH);
        assert_eq!(headers.len(), 40);
        let reqs = hs.on_headers(&newcomer, 0, &headers);
        assert_eq!(hs.phase(), "fetching");
        assert_eq!(hs.fork_height(), Some(0));
        // One body batch in flight per peer, striped round-robin.
        assert_eq!(
            reqs,
            vec![
                SyncRequest::Bodies {
                    peer: NodeId(1),
                    from: 0
                },
                SyncRequest::Bodies {
                    peer: NodeId(2),
                    from: 32
                },
            ]
        );
        for req in reqs {
            let SyncRequest::Bodies { from, .. } = req else {
                panic!("only bodies expected while fetching");
            };
            let blocks = serve_blocks_from_bounded(&veteran, from, crate::fleet::SYNC_BATCH);
            catch_up(&mut newcomer, blocks);
        }
        let reqs = hs.on_progress(&newcomer);
        assert!(reqs.is_empty());
        assert_eq!(hs.phase(), "done");
        assert!(!hs.is_active());
        assert_eq!(newcomer.tip(), veteran.tip());
    }

    #[test]
    fn locate_walks_back_past_a_stale_branch() {
        let (mut veteran, mut newcomer, _, _) = two_chains(7);
        for i in 0..4u8 {
            mine_empty(&mut veteran, &[i]);
        }
        catch_up(&mut newcomer, serve_blocks_from(&veteran, 0));
        // Diverge: the newcomer mines two blocks of its own while the
        // veteran's branch grows longer.
        for i in 0..2u8 {
            mine_empty(&mut newcomer, &[0xa0 + i]);
        }
        for i in 4..10u8 {
            mine_empty(&mut veteran, &[i]);
        }
        assert_ne!(
            newcomer.block_at(5).unwrap().hash(),
            veteran.block_at(5).unwrap().hash()
        );

        let (mut hs, mut reqs) =
            HeaderSync::start(vec![NodeId(0)], newcomer.height(), veteran.height());
        let mut hops = 0;
        while hs.phase() == "locating" {
            let SyncRequest::Headers { from, .. } = reqs[0] else {
                panic!("locating only issues header requests");
            };
            let headers = serve_headers_from(&veteran, from, HEADER_BATCH);
            reqs = hs.on_headers(&newcomer, from, &headers);
            hops += 1;
            assert!(hops < 10, "locate must converge");
        }
        // Doubling look-behind found the exact common ancestor without
        // a single block body moving.
        assert_eq!(hs.fork_height(), Some(4));
        for req in reqs {
            let SyncRequest::Bodies { from, .. } = req else {
                panic!("fetching only issues body requests");
            };
            let blocks = serve_blocks_from_bounded(&veteran, from, crate::fleet::SYNC_BATCH);
            catch_up(&mut newcomer, blocks);
        }
        hs.on_progress(&newcomer);
        assert!(!hs.is_active());
        assert_eq!(
            newcomer.tip(),
            veteran.tip(),
            "reorged onto the longer branch"
        );
    }

    #[test]
    fn foreign_genesis_fails_cleanly() {
        let (mut veteran, _, _, _) = two_chains(8);
        let (_, mut stranger, _, _) = two_chains(9);
        for i in 0..3u8 {
            mine_empty(&mut veteran, &[i]);
        }
        let (mut hs, _) = HeaderSync::start(vec![NodeId(0)], stranger.height(), veteran.height());
        let headers = serve_headers_from(&veteran, 0, HEADER_BATCH);
        let reqs = hs.on_headers(&stranger, 0, &headers);
        assert!(reqs.is_empty());
        assert!(hs.failed(), "a chain with a foreign genesis never links");
        let _ = &mut stranger;
    }

    #[test]
    fn broken_header_linkage_fails_validation() {
        let (mut veteran, newcomer, _, _) = two_chains(10);
        for i in 0..4u8 {
            mine_empty(&mut veteran, &[i]);
        }
        let mut headers = serve_headers_from(&veteran, 0, HEADER_BATCH);
        headers.swap(1, 2);
        let (mut hs, _) = HeaderSync::start(vec![NodeId(0)], 0, veteran.height());
        assert!(hs.on_headers(&newcomer, 0, &headers).is_empty());
        assert!(hs.failed());
    }

    #[test]
    fn lying_peer_with_no_headers_fails() {
        let (_, newcomer, _, _) = two_chains(11);
        // Peer announced height 5 but serves nothing above 0.
        let (mut hs, _) = HeaderSync::start(vec![NodeId(0)], 0, 5);
        assert!(hs.on_headers(&newcomer, 0, &[]).is_empty());
        assert!(hs.failed());
    }

    #[test]
    fn duplicate_blocks_are_harmless() {
        let (mut veteran, mut newcomer, _, _) = two_chains(5);
        mine_empty(&mut veteran, b"x");
        let blocks = serve_blocks_from(&veteran, 0);
        catch_up(&mut newcomer, blocks.clone());
        let outcome = catch_up(&mut newcomer, blocks);
        assert_eq!(outcome.connected, 0);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(newcomer.height(), 1);
    }
}
