//! The reputation-only baseline (paper §4.4).
//!
//! "A solution for this problem could be the usage of reputation. …
//! This solution reduces the probability of misbehavior but does not
//! eliminate the problem." This module implements that strawman so the
//! A3 ablation can quantify the residual loss BcWAN's fair exchange
//! removes by construction.
//!
//! Model: the recipient pays first, then the gateway delivers — honestly
//! or not. Recipients keep per-gateway scores, stop using gateways below
//! a threshold, and malicious gateways defect with a fixed probability.

use crate::audit::GatewayOutcome;
use bcwan_sim::SimRng;
use std::collections::HashMap;

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct ReputationConfig {
    /// Number of gateways.
    pub gateways: usize,
    /// Fraction of gateways that are malicious.
    pub malicious_fraction: f64,
    /// Probability a malicious gateway keeps the payment and drops the
    /// message.
    pub defect_probability: f64,
    /// Score below which a recipient refuses a gateway.
    pub ban_threshold: f64,
    /// Score increment on honest delivery.
    pub reward_delta: f64,
    /// Score decrement on defection.
    pub penalty_delta: f64,
    /// Payment per message (for accounting stolen value).
    pub payment: u64,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            gateways: 20,
            malicious_fraction: 0.25,
            defect_probability: 0.5,
            ban_threshold: -2.0,
            reward_delta: 0.1,
            penalty_delta: 1.0,
            payment: 10,
        }
    }
}

/// Outcome of a reputation-baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationOutcome {
    /// Messages attempted.
    pub attempted: usize,
    /// Messages delivered.
    pub delivered: usize,
    /// Messages paid for but dropped (the recipient's loss).
    pub stolen: usize,
    /// Value lost to defections.
    pub stolen_value: u64,
    /// Messages refused because every reachable gateway was banned.
    pub starved: usize,
    /// Gateways banned by the end.
    pub banned_gateways: usize,
}

impl ReputationOutcome {
    /// Fraction of attempted messages lost to defection.
    pub fn loss_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.stolen as f64 / self.attempted as f64
        }
    }
}

/// Runs the pay-first + reputation baseline for `messages` exchanges.
///
/// BcWAN's fair exchange makes the corresponding loss structurally zero
/// (the escrow only releases against the key); this simulation shows the
/// baseline converges to a nonzero stolen count before bans kick in.
pub fn run_reputation_baseline(
    cfg: &ReputationConfig,
    messages: usize,
    rng: &mut SimRng,
) -> ReputationOutcome {
    let malicious_count = (cfg.gateways as f64 * cfg.malicious_fraction).round() as usize;
    let mut scores: HashMap<usize, f64> = (0..cfg.gateways).map(|g| (g, 0.0)).collect();
    let is_malicious = |g: usize| g < malicious_count;

    let mut outcome = ReputationOutcome {
        attempted: 0,
        delivered: 0,
        stolen: 0,
        stolen_value: 0,
        starved: 0,
        banned_gateways: 0,
    };

    for _ in 0..messages {
        outcome.attempted += 1;
        // Choose among non-banned gateways uniformly (the sensor cannot
        // know reputations; its recipient filters).
        let usable: Vec<usize> = (0..cfg.gateways)
            .filter(|g| scores[g] > cfg.ban_threshold)
            .collect();
        if usable.is_empty() {
            outcome.starved += 1;
            continue;
        }
        let gateway = usable[rng.index(usable.len())];
        // Recipient pays first.
        let defects = is_malicious(gateway) && rng.chance(cfg.defect_probability);
        if defects {
            outcome.stolen += 1;
            outcome.stolen_value += cfg.payment;
            *scores.get_mut(&gateway).expect("known") -= cfg.penalty_delta;
        } else {
            outcome.delivered += 1;
            *scores.get_mut(&gateway).expect("known") += cfg.reward_delta;
        }
    }
    outcome.banned_gateways = scores.values().filter(|&&s| s <= cfg.ban_threshold).count();
    outcome
}

/// Replays *observed* settlement behavior through the baseline scoring
/// rules — the A3 ablation against real chaos-soak outcomes (the
/// auditor's [`GatewayOutcome`] rows) instead of the RNG defection
/// model. Each settled escrow scores as an honest delivery; each CLTV
/// refund as a defection — under pay-first the recipient's money would
/// have been gone, so the refund count is exactly the loss fair
/// exchange turned into a harmless timeout.
///
/// Events interleave deterministically — one event per gateway per
/// round, gateways in id order, alternating settled/refunded within a
/// gateway — so reruns are bit-identical without an RNG. Events landing
/// after a gateway crosses the ban threshold count as `starved`: under
/// pure reputation that recipient would have refused the exchange.
pub fn score_observed(cfg: &ReputationConfig, outcomes: &[GatewayOutcome]) -> ReputationOutcome {
    let mut scores: HashMap<u32, f64> = outcomes.iter().map(|o| (o.gateway, 0.0)).collect();
    let mut queues: Vec<(u32, Vec<bool>)> = outcomes
        .iter()
        .map(|o| {
            let mut events = Vec::with_capacity((o.settled + o.refunded) as usize);
            let (mut s, mut r) = (o.settled, o.refunded);
            while s > 0 || r > 0 {
                if s > 0 {
                    events.push(true);
                    s -= 1;
                }
                if r > 0 {
                    events.push(false);
                    r -= 1;
                }
            }
            (o.gateway, events)
        })
        .collect();
    queues.sort_by_key(|(g, _)| *g);

    let mut outcome = ReputationOutcome {
        attempted: 0,
        delivered: 0,
        stolen: 0,
        stolen_value: 0,
        starved: 0,
        banned_gateways: 0,
    };
    let mut cursor = vec![0usize; queues.len()];
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (i, (gateway, events)) in queues.iter().enumerate() {
            let Some(&delivered) = events.get(cursor[i]) else {
                continue;
            };
            cursor[i] += 1;
            progressed = true;
            outcome.attempted += 1;
            if scores[gateway] <= cfg.ban_threshold {
                outcome.starved += 1;
                continue;
            }
            if delivered {
                outcome.delivered += 1;
                *scores.get_mut(gateway).expect("known") += cfg.reward_delta;
            } else {
                outcome.stolen += 1;
                outcome.stolen_value += cfg.payment;
                *scores.get_mut(gateway).expect("known") -= cfg.penalty_delta;
            }
        }
    }
    outcome.banned_gateways = scores.values().filter(|&&s| s <= cfg.ban_threshold).count();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_network_never_loses() {
        let cfg = ReputationConfig {
            malicious_fraction: 0.0,
            ..ReputationConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(1);
        let out = run_reputation_baseline(&cfg, 2000, &mut rng);
        assert_eq!(out.stolen, 0);
        assert_eq!(out.delivered, 2000);
        assert_eq!(out.loss_rate(), 0.0);
        assert_eq!(out.banned_gateways, 0);
    }

    #[test]
    fn malicious_gateways_steal_until_banned() {
        let cfg = ReputationConfig::default();
        let mut rng = SimRng::seed_from_u64(2);
        let out = run_reputation_baseline(&cfg, 5000, &mut rng);
        // Losses happen (the paper's point: reputation reduces, does not
        // eliminate).
        assert!(out.stolen > 0, "some messages are stolen");
        assert!(out.stolen_value == out.stolen as u64 * cfg.payment);
        // But bans eventually contain it.
        assert_eq!(out.banned_gateways, 5, "all malicious gateways banned");
        assert!(out.loss_rate() < 0.05, "loss rate {}", out.loss_rate());
    }

    #[test]
    fn higher_malicious_fraction_loses_more() {
        let mut rng = SimRng::seed_from_u64(3);
        let low = run_reputation_baseline(
            &ReputationConfig {
                malicious_fraction: 0.1,
                ..ReputationConfig::default()
            },
            3000,
            &mut rng,
        );
        let high = run_reputation_baseline(
            &ReputationConfig {
                malicious_fraction: 0.6,
                ..ReputationConfig::default()
            },
            3000,
            &mut rng,
        );
        assert!(
            high.stolen > low.stolen,
            "{} vs {}",
            high.stolen,
            low.stolen
        );
    }

    #[test]
    fn all_malicious_starves_eventually() {
        let cfg = ReputationConfig {
            gateways: 4,
            malicious_fraction: 1.0,
            defect_probability: 1.0,
            ..ReputationConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(4);
        let out = run_reputation_baseline(&cfg, 100, &mut rng);
        assert_eq!(out.banned_gateways, 4);
        assert!(out.starved > 0, "recipients end up with no usable gateway");
        assert_eq!(out.delivered, 0);
    }

    #[test]
    fn observed_refunds_score_as_defections_and_ban() {
        let cfg = ReputationConfig::default();
        let outcomes = vec![
            GatewayOutcome {
                gateway: 1,
                settled: 10,
                refunded: 0,
                adversarial: false,
            },
            GatewayOutcome {
                gateway: 2,
                settled: 1,
                refunded: 6,
                adversarial: true,
            },
        ];
        let out = score_observed(&cfg, &outcomes);
        assert_eq!(out.attempted, 17, "every observed event is replayed");
        assert_eq!(out.banned_gateways, 1, "the refunding gateway is banned");
        assert_eq!(out.stolen, 3, "pay-first loses until the ban lands");
        assert_eq!(out.stolen_value, 3 * cfg.payment);
        assert_eq!(out.starved, 3, "post-ban events are refused");
        assert_eq!(out.delivered, 11);
        // Deterministic without an RNG: bit-identical on replay.
        assert_eq!(score_observed(&cfg, &outcomes), out);
    }

    #[test]
    fn observed_honest_fleet_never_banned() {
        let cfg = ReputationConfig::default();
        let outcomes: Vec<GatewayOutcome> = (1..=5)
            .map(|g| GatewayOutcome {
                gateway: g,
                settled: 40,
                refunded: 0,
                adversarial: false,
            })
            .collect();
        let out = score_observed(&cfg, &outcomes);
        assert_eq!(out.delivered, 200);
        assert_eq!(out.stolen, 0);
        assert_eq!(out.banned_gateways, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ReputationConfig::default();
        let mut r1 = SimRng::seed_from_u64(9);
        let mut r2 = SimRng::seed_from_u64(9);
        assert_eq!(
            run_reputation_baseline(&cfg, 1000, &mut r1),
            run_reputation_baseline(&cfg, 1000, &mut r2)
        );
    }
}
