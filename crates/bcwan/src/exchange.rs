//! The cryptographic heart of the exchange (paper Fig. 3 steps 3–4, 8, 10).
//!
//! - [`seal_reading`] — node side: AES-256-CBC under the shared key `K`,
//!   wrap the Fig. 4 structure under the gateway's ephemeral `ePk`, and
//!   sign `(Em ‖ ePk)` with the provisioned key `Sk`.
//! - [`verify_uplink`] — recipient side, step 8: authenticity of `(Em, ePk)`.
//! - [`open_reading`] — recipient side, step 10: with the revealed `eSk`,
//!   peel RSA then AES to recover the plaintext reading.

use crate::provisioning::{DeviceCredentials, DeviceRecord};
use bcwan_crypto::aes::{cbc_decrypt, cbc_encrypt, CbcError};
use bcwan_crypto::rsa::{RsaError, RsaPrivateKey, RsaPublicKey};
use bcwan_lora::frame::{EncryptedReading, FrameError};
use rand::RngCore;
use std::fmt;

/// The sealed uplink material the node radios to the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedUplink {
    /// `Em`: the RSA-wrapped Fig. 4 structure (one RSA block).
    pub em: Vec<u8>,
    /// `Sig`: the node's signature over `Em ‖ ePk`.
    pub sig: Vec<u8>,
}

/// Errors in sealing/opening readings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// The reading is too large to fit the Fig. 4 frame under RSA-512.
    ReadingTooLarge {
        /// Reading length supplied.
        len: usize,
        /// Maximum supported by the configured RSA size.
        max: usize,
    },
    /// RSA failure (wrong key size, corrupt block…).
    Rsa(RsaError),
    /// The inner Fig. 4 structure failed to parse after RSA decryption.
    Frame(FrameError),
    /// AES-CBC decryption failed (wrong `K` or corrupted ciphertext).
    Aes(CbcError),
    /// The node signature did not verify.
    BadSignature,
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::ReadingTooLarge { len, max } => {
                write!(f, "reading of {len} bytes exceeds {max}")
            }
            ExchangeError::Rsa(e) => write!(f, "rsa failure: {e}"),
            ExchangeError::Frame(e) => write!(f, "inner frame malformed: {e}"),
            ExchangeError::Aes(e) => write!(f, "aes failure: {e}"),
            ExchangeError::BadSignature => write!(f, "node signature invalid"),
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<RsaError> for ExchangeError {
    fn from(e: RsaError) -> Self {
        ExchangeError::Rsa(e)
    }
}

impl From<FrameError> for ExchangeError {
    fn from(e: FrameError) -> Self {
        ExchangeError::Frame(e)
    }
}

impl From<CbcError> for ExchangeError {
    fn from(e: CbcError) -> Self {
        ExchangeError::Aes(e)
    }
}

/// Largest plaintext reading the Fig. 4 structure can carry through an
/// RSA-512 wrap: the 34-byte frame (16-byte ciphertext = one AES block)
/// holds ≤ 15 plaintext bytes after PKCS#7 (16 bytes pad to two blocks →
/// 50-byte frame, still under the 53-byte RSA-512 ceiling — so 31).
pub fn max_reading_len(e_pk: &RsaPublicKey) -> usize {
    let rsa_capacity = e_pk.block_len().saturating_sub(11); // PKCS#1 overhead
    let frame_overhead = 2 + 16; // two length bytes + IV
    let ct_capacity = rsa_capacity.saturating_sub(frame_overhead);
    // Whole AES blocks only; PKCS#7 always pads, so usable = blocks*16 - 1.
    let blocks = ct_capacity / 16;
    (blocks * 16).saturating_sub(1)
}

/// Node side (steps 3–4): seals `reading` for the home recipient via the
/// gateway's ephemeral key.
///
/// # Errors
///
/// [`ExchangeError::ReadingTooLarge`] or an RSA error.
pub fn seal_reading<R: RngCore>(
    rng: &mut R,
    credentials: &DeviceCredentials,
    e_pk: &RsaPublicKey,
    reading: &[u8],
) -> Result<SealedUplink, ExchangeError> {
    let max = max_reading_len(e_pk);
    if reading.len() > max {
        return Err(ExchangeError::ReadingTooLarge {
            len: reading.len(),
            max,
        });
    }
    // Step 3a: AES-256-CBC with a fresh IV (Fig. 4).
    let mut iv = [0u8; 16];
    rng.fill_bytes(&mut iv);
    let ciphertext = cbc_encrypt(&credentials.aes_key, &iv, reading);
    let inner = EncryptedReading { iv, ciphertext };
    // Step 3b: wrap under the ephemeral public key.
    let em = e_pk.encrypt(rng, &inner.encode())?;
    // Step 4: sign Em ‖ ePk with the provisioned key.
    let mut signed = em.clone();
    signed.extend_from_slice(&e_pk.to_bytes());
    let sig = credentials.signing_key.sign(&signed);
    Ok(SealedUplink { em, sig })
}

/// Recipient side, step 8: verifies that `(em, e_pk)` was produced by the
/// provisioned device.
pub fn verify_uplink(record: &DeviceRecord, e_pk: &RsaPublicKey, uplink: &SealedUplink) -> bool {
    let mut signed = uplink.em.clone();
    signed.extend_from_slice(&e_pk.to_bytes());
    record.verify_key.verify(&signed, &uplink.sig)
}

/// Recipient side, step 10: decrypts with the revealed ephemeral private
/// key, then the shared AES key.
///
/// # Errors
///
/// Any [`ExchangeError`] from the two decryption layers.
pub fn open_reading(
    record: &DeviceRecord,
    e_sk: &RsaPrivateKey,
    em: &[u8],
) -> Result<Vec<u8>, ExchangeError> {
    let inner_bytes = e_sk.decrypt(em)?;
    let inner = EncryptedReading::decode(&inner_bytes)?;
    Ok(cbc_decrypt(&record.aes_key, &inner.iv, &inner.ciphertext)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provisioning::{DeviceId, DeviceRegistry};
    use bcwan_chain::Address;
    use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        rng: StdRng,
        creds: DeviceCredentials,
        registry: DeviceRegistry,
        e_pk: RsaPublicKey,
        e_sk: RsaPrivateKey,
    }

    fn setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(2018);
        let mut registry = DeviceRegistry::new();
        let creds = registry.provision(&mut rng, DeviceId(1), Address([9; 20]));
        let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
        Setup {
            rng,
            creds,
            registry,
            e_pk,
            e_sk,
        }
    }

    #[test]
    fn full_round_trip_matches_paper_steps() {
        let mut s = setup();
        let reading = b"t=21.5C;h=40%";
        let sealed = seal_reading(&mut s.rng, &s.creds, &s.e_pk, reading).unwrap();
        // The paper's 128-byte accounting: Em and Sig are one RSA block each.
        assert_eq!(sealed.em.len(), 64);
        assert_eq!(sealed.sig.len(), 64);

        let record = s.registry.get(&DeviceId(1)).unwrap();
        assert!(verify_uplink(record, &s.e_pk, &sealed));
        let opened = open_reading(record, &s.e_sk, &sealed.em).unwrap();
        assert_eq!(opened, reading);
    }

    #[test]
    fn gateway_cannot_read_without_esk() {
        let mut s = setup();
        let sealed = seal_reading(&mut s.rng, &s.creds, &s.e_pk, b"secret").unwrap();
        // A different RSA key (the "gateway's own") fails to decrypt.
        let (_, wrong_sk) = generate_keypair(&mut s.rng, RsaKeySize::Rsa512);
        let record = s.registry.get(&DeviceId(1)).unwrap();
        assert!(open_reading(record, &wrong_sk, &sealed.em).is_err());
    }

    #[test]
    fn tampered_em_detected_by_signature() {
        let mut s = setup();
        let mut sealed = seal_reading(&mut s.rng, &s.creds, &s.e_pk, b"data").unwrap();
        sealed.em[0] ^= 1;
        let record = s.registry.get(&DeviceId(1)).unwrap();
        assert!(!verify_uplink(record, &s.e_pk, &sealed));
    }

    #[test]
    fn swapped_ephemeral_key_detected() {
        // A malicious gateway substituting its own ePk after the node
        // signed is caught, because the signature covers ePk (step 4).
        let mut s = setup();
        let sealed = seal_reading(&mut s.rng, &s.creds, &s.e_pk, b"data").unwrap();
        let (other_pk, _) = generate_keypair(&mut s.rng, RsaKeySize::Rsa512);
        let record = s.registry.get(&DeviceId(1)).unwrap();
        assert!(!verify_uplink(record, &other_pk, &sealed));
    }

    #[test]
    fn wrong_device_record_rejects() {
        let mut s = setup();
        let sealed = seal_reading(&mut s.rng, &s.creds, &s.e_pk, b"data").unwrap();
        let other_creds = s
            .registry
            .provision(&mut s.rng, DeviceId(2), Address([9; 20]));
        let _ = other_creds;
        let record2 = s.registry.get(&DeviceId(2)).unwrap();
        assert!(!verify_uplink(record2, &s.e_pk, &sealed));
    }

    #[test]
    fn oversized_reading_rejected() {
        let mut s = setup();
        let max = max_reading_len(&s.e_pk);
        assert_eq!(max, 31, "RSA-512 carries up to 31 reading bytes");
        let too_big = vec![0u8; max + 1];
        assert!(matches!(
            seal_reading(&mut s.rng, &s.creds, &s.e_pk, &too_big),
            Err(ExchangeError::ReadingTooLarge { .. })
        ));
        let just_right = vec![0u8; max];
        assert!(seal_reading(&mut s.rng, &s.creds, &s.e_pk, &just_right).is_ok());
    }

    #[test]
    fn sixteen_byte_reading_yields_fig4_34_bytes() {
        // ≤15-byte readings (the paper's "temperature, humidity level")
        // produce exactly the 34-byte inner structure of Fig. 4.
        let mut s = setup();
        let reading = b"temp=21.5C;h=40"; // 15 bytes → one AES block
        let mut iv = [7u8; 16];
        s.rng.fill_bytes(&mut iv);
        let ct = cbc_encrypt(&s.creds.aes_key, &iv, reading);
        let inner = EncryptedReading { iv, ciphertext: ct };
        assert_eq!(inner.encode().len(), 34);
    }

    #[test]
    fn corrupted_em_fails_open_cleanly() {
        let mut s = setup();
        let sealed = seal_reading(&mut s.rng, &s.creds, &s.e_pk, b"data").unwrap();
        let mut bad = sealed.em.clone();
        bad[10] ^= 0xff;
        let record = s.registry.get(&DeviceId(1)).unwrap();
        assert!(open_reading(record, &s.e_sk, &bad).is_err());
    }
}
