//! Device provisioning.
//!
//! Paper §4.4: "the node and the recipient share a symmetric key (K). …
//! The node and the recipient must also share a secret key (Sk), on the
//! node, and a public key (Pk), on the recipient. A provisioning phase is
//! therefore needed in order to load the necessary keys on the node."

use bcwan_chain::Address;
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPrivateKey, RsaPublicKey};
use rand::RngCore;
use std::collections::HashMap;
use std::fmt;

/// A sensor identifier, unique network-wide in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Key material loaded onto the node during provisioning.
pub struct DeviceCredentials {
    /// The device.
    pub device_id: DeviceId,
    /// Shared AES-256 key `K`.
    pub aes_key: [u8; 32],
    /// The node's signing key `Sk` (RSA, per paper §5.1).
    pub signing_key: RsaPrivateKey,
    /// Blockchain address of the home recipient (`@R`).
    pub recipient: Address,
}

impl fmt::Debug for DeviceCredentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Key material stays out of logs.
        write!(
            f,
            "DeviceCredentials({}, @R {})",
            self.device_id, self.recipient
        )
    }
}

/// What the recipient keeps per provisioned device.
pub struct DeviceRecord {
    /// The device.
    pub device_id: DeviceId,
    /// Shared AES-256 key `K`.
    pub aes_key: [u8; 32],
    /// Verification key `Pk` matching the node's `Sk`.
    pub verify_key: RsaPublicKey,
}

impl fmt::Debug for DeviceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceRecord({})", self.device_id)
    }
}

/// The recipient-side registry of provisioned devices.
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    records: HashMap<DeviceId, DeviceRecord>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Provisions a new device for the recipient at `recipient_address`:
    /// generates `K` and the `Sk`/`Pk` pair, stores the recipient half,
    /// and returns the node half.
    pub fn provision<R: RngCore>(
        &mut self,
        rng: &mut R,
        device_id: DeviceId,
        recipient_address: Address,
    ) -> DeviceCredentials {
        let mut aes_key = [0u8; 32];
        rng.fill_bytes(&mut aes_key);
        let (verify_key, signing_key) = generate_keypair(rng, RsaKeySize::Rsa512);
        self.records.insert(
            device_id,
            DeviceRecord {
                device_id,
                aes_key,
                verify_key,
            },
        );
        DeviceCredentials {
            device_id,
            aes_key,
            signing_key,
            recipient: recipient_address,
        }
    }

    /// Looks up a device record.
    pub fn get(&self, device_id: &DeviceId) -> Option<&DeviceRecord> {
        self.records.get(device_id)
    }

    /// Number of provisioned devices.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no devices are provisioned.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn provision_creates_matching_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut registry = DeviceRegistry::new();
        let recipient = Address([3; 20]);
        let creds = registry.provision(&mut rng, DeviceId(7), recipient);
        assert_eq!(creds.device_id, DeviceId(7));
        assert_eq!(creds.recipient, recipient);

        let record = registry.get(&DeviceId(7)).unwrap();
        assert_eq!(record.aes_key, creds.aes_key);
        // Pk verifies what Sk signs.
        let sig = creds.signing_key.sign(b"probe");
        assert!(record.verify_key.verify(b"probe", &sig));
    }

    #[test]
    fn devices_have_distinct_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut registry = DeviceRegistry::new();
        let a = registry.provision(&mut rng, DeviceId(1), Address([0; 20]));
        let b = registry.provision(&mut rng, DeviceId(2), Address([0; 20]));
        assert_ne!(a.aes_key, b.aes_key);
        let sig = a.signing_key.sign(b"x");
        assert!(!registry
            .get(&DeviceId(2))
            .unwrap()
            .verify_key
            .verify(b"x", &sig));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn unknown_device_absent() {
        let registry = DeviceRegistry::new();
        assert!(registry.get(&DeviceId(9)).is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn debug_output_hides_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut registry = DeviceRegistry::new();
        let creds = registry.provision(&mut rng, DeviceId(1), Address([0; 20]));
        let text = format!("{creds:?}");
        assert!(text.contains("dev1"));
        assert!(text.len() < 80);
    }
}
