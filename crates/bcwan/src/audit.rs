//! The always-on settlement auditor.
//!
//! The chaos soak used to check its fairness invariants once, at the end
//! of the run — a violation that appeared at block 40 and was masked by
//! block 90 would never be seen, and a failing run gave no hint *where*
//! the books first stopped balancing. [`SettlementAuditor`] replaces
//! that with per-block incremental auditing of the master's main chain:
//! every block that connects (or disconnects, in a reorg) updates the
//! minted/fee ledger and the settlement census, and every reconcile
//! re-checks value conservation at the new tip. Violations are counted
//! the moment the offending block lands, so they appear in the schema-v2
//! timeline frame of the interval where they occurred, not just in the
//! final snapshot.
//!
//! The auditor also keeps the Byzantine scorecard: each watched escrow
//! carries its gateway and whether the chaos plan marks that gateway
//! adversarial, so claim revenue splits into
//! `byzantine.honest_revenue_total` vs `byzantine.adversarial_revenue_total`
//! — the soak's headline gate is that honest revenue strictly dominates.
//!
//! All `invariant.*` and `byzantine.*` counters are registered at
//! construction, so a clean run exports explicit zeros in every snapshot
//! and timeline frame rather than omitting the rows.

use std::collections::HashMap;

use bcwan_chain::{Block, BlockHash, Chain, OutPoint};
use bcwan_sim::{CounterId, Registry};

use crate::escrow;
use crate::fsm::Phase;

/// Which branch of the Listing 1 script a confirmed spend took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleKind {
    /// The gateway's key-revealing claim.
    Claim,
    /// The recipient's CLTV refund.
    Refund,
}

/// An escrow outpoint under audit.
#[derive(Debug, Clone, Copy)]
struct WatchedEscrow {
    /// Index of the exchange that published the escrow.
    exchange: usize,
    /// The gateway host the escrow pays.
    gateway: u32,
    /// Whether the chaos plan marks that gateway adversarial.
    adversarial: bool,
}

/// The live main-chain settlement of a watched escrow.
#[derive(Debug, Clone, Copy)]
struct Settlement {
    kind: SettleKind,
    /// Output value the settlement paid (claim revenue to the gateway;
    /// zero relevance for refunds, recorded anyway for the ledger).
    value: u64,
}

/// Per-block audit delta, kept so a reorg can be rolled back exactly.
#[derive(Debug, Clone)]
struct AuditedBlock {
    hash: BlockHash,
    minted: u64,
    fees: u64,
    /// Watched escrow outpoints this block spent.
    spends: Vec<OutPoint>,
}

/// End-of-run census returned by [`SettlementAuditor::final_audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalAudit {
    /// Escrows settled through the claim branch.
    pub claimed: usize,
    /// Escrows settled through the refund branch.
    pub refunded: usize,
    /// Escrows published but not settled on the main chain.
    pub open: usize,
    /// Total invariant violations (conservation + double settlement +
    /// FSM/chain mismatches).
    pub violations: u64,
}

/// Per-gateway observed settlement behavior, the input the reputation
/// baseline scores instead of its pure-RNG defection model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayOutcome {
    /// The gateway host.
    pub gateway: u32,
    /// Escrows the gateway settled through its claim.
    pub settled: u64,
    /// Escrows that fell through to the recipient's CLTV refund.
    pub refunded: u64,
    /// Whether the chaos plan marked the gateway adversarial.
    pub adversarial: bool,
}

/// Incremental, reorg-aware auditor over the master's main chain.
///
/// Feed it every tip change via [`SettlementAuditor::reconcile`]; it
/// maintains the audited prefix (popping disconnected blocks and
/// replaying their deltas backwards), checks value conservation at each
/// new tip, detects double settlements the moment the second spend
/// connects, and keeps the honest-vs-adversarial revenue split current.
#[derive(Debug)]
pub struct SettlementAuditor {
    /// Audited main-chain prefix; index = height.
    blocks: Vec<AuditedBlock>,
    /// Output values of every transaction ever audited, for fee
    /// computation. Never rolled back: values are immutable per txid,
    /// and a reconnected transaction overwrites identically.
    out_values: HashMap<bcwan_chain::TxId, Vec<u64>>,
    minted: u64,
    fees: u64,
    watched: HashMap<OutPoint, WatchedEscrow>,
    settled: HashMap<OutPoint, Settlement>,
    /// Claim revenue per gateway on the current main chain.
    revenue: HashMap<u32, u64>,
    value_violations: u64,
    double_violations: u64,
    fsm_violations: u64,
    /// Blocks audited, add-only (the other rows publish by name because
    /// a reorg can lower the revenue split, which the id-based add-only
    /// API cannot express).
    c_blocks: CounterId,
}

impl SettlementAuditor {
    /// Builds an auditor, registering the `invariant.*`, `audit.*`, and
    /// `byzantine.*` revenue counters with explicit zeros so they appear
    /// in every snapshot and timeline frame from the start of the run.
    pub fn new(reg: &mut Registry) -> Self {
        reg.counter("invariant.value_conservation_violations");
        reg.counter("invariant.double_settlement_violations");
        reg.counter("invariant.fsm_chain_mismatch_violations");
        reg.counter("chaos.invariant.violation_total");
        reg.counter("byzantine.honest_revenue_total");
        reg.counter("byzantine.adversarial_revenue_total");
        SettlementAuditor {
            blocks: Vec::new(),
            out_values: HashMap::new(),
            minted: 0,
            fees: 0,
            watched: HashMap::new(),
            settled: HashMap::new(),
            revenue: HashMap::new(),
            value_violations: 0,
            double_violations: 0,
            fsm_violations: 0,
            c_blocks: reg.counter("audit.blocks_audited_total"),
        }
    }

    /// Starts auditing an escrow outpoint for `exchange`, paying
    /// `gateway`. Call once when the escrow transaction is built.
    pub fn watch(&mut self, outpoint: OutPoint, exchange: usize, gateway: u32, adversarial: bool) {
        self.watched.insert(
            outpoint,
            WatchedEscrow {
                exchange,
                gateway,
                adversarial,
            },
        );
    }

    /// Invariant violations found so far (conservation + double
    /// settlement; FSM mismatches only exist after [`Self::final_audit`]).
    pub fn violations(&self) -> u64 {
        self.value_violations + self.double_violations + self.fsm_violations
    }

    /// Claim revenue earned by gateways the plan marks honest.
    pub fn honest_revenue(&self) -> u64 {
        self.split_revenue().0
    }

    /// Claim revenue earned by gateways the plan marks adversarial.
    pub fn adversarial_revenue(&self) -> u64 {
        self.split_revenue().1
    }

    fn split_revenue(&self) -> (u64, u64) {
        let adversarial: std::collections::HashSet<u32> = self
            .watched
            .values()
            .filter(|w| w.adversarial)
            .map(|w| w.gateway)
            .collect();
        let mut honest = 0;
        let mut adv = 0;
        for (gateway, value) in &self.revenue {
            if adversarial.contains(gateway) {
                adv += value;
            } else {
                honest += value;
            }
        }
        (honest, adv)
    }

    /// Per-gateway settled/refunded counts on the current main chain,
    /// sorted by gateway id — the observed-behavior feed for
    /// [`crate::reputation::score_observed`].
    pub fn gateway_outcomes(&self) -> Vec<GatewayOutcome> {
        let mut by_gateway: HashMap<u32, GatewayOutcome> = HashMap::new();
        for (outpoint, watched) in &self.watched {
            let entry = by_gateway.entry(watched.gateway).or_insert(GatewayOutcome {
                gateway: watched.gateway,
                settled: 0,
                refunded: 0,
                adversarial: false,
            });
            entry.adversarial |= watched.adversarial;
            match self.settled.get(outpoint).map(|s| s.kind) {
                Some(SettleKind::Claim) => entry.settled += 1,
                Some(SettleKind::Refund) => entry.refunded += 1,
                None => {}
            }
        }
        let mut out: Vec<GatewayOutcome> = by_gateway.into_values().collect();
        out.sort_by_key(|o| o.gateway);
        out
    }

    /// Brings the audited prefix in line with `chain`'s main branch:
    /// pops blocks a reorg (or a warm restart onto a shorter durable
    /// chain) disconnected, audits every new block, and re-checks value
    /// conservation at the new tip. Cheap no-op when the tip is
    /// unchanged.
    pub fn reconcile(&mut self, chain: &Chain, reg: &mut Registry) {
        let tip_height = chain.height();
        if self.blocks.len() as u64 == tip_height + 1
            && self.blocks.last().map(|b| b.hash) == Some(chain.tip())
        {
            return;
        }
        // Pop audited blocks no longer on the main chain.
        while let Some(last) = self.blocks.last() {
            let height = self.blocks.len() as u64 - 1;
            if height <= tip_height && chain.block_at(height).map(|b| b.hash()) == Some(last.hash) {
                break;
            }
            self.disconnect_top();
        }
        // Audit the new main-chain blocks above the common prefix.
        let mut audited = 0u64;
        for height in self.blocks.len() as u64..=tip_height {
            let block = chain.block_at(height).expect("main-chain block").clone();
            self.connect(&block, height);
            audited += 1;
        }
        // Value conservation at the tip: every coin in the UTXO set was
        // minted by a coinbase and nothing else, minus burned fees.
        if chain.utxo().total_value() != self.minted.saturating_sub(self.fees) {
            self.value_violations += 1;
        }
        reg.add(self.c_blocks, audited);
        self.publish(reg);
    }

    fn connect(&mut self, block: &Block, height: u64) {
        let mut minted = 0u64;
        let mut fees = 0u64;
        let mut spends = Vec::new();
        for (i, tx) in block.transactions.iter().enumerate() {
            let out_sum: u64 = tx.outputs.iter().map(|o| o.value).sum();
            if i == 0 {
                minted += out_sum;
            } else {
                let in_sum: u64 = tx
                    .inputs
                    .iter()
                    .map(|inp| {
                        self.out_values
                            .get(&inp.prevout.txid)
                            .and_then(|v| v.get(inp.prevout.vout as usize))
                            .copied()
                            .unwrap_or(0)
                    })
                    .sum();
                fees += in_sum.saturating_sub(out_sum);
                for input in &tx.inputs {
                    if let Some(watched) = self.watched.get(&input.prevout).copied() {
                        // A second live settlement of the same escrow is
                        // the double-settlement violation, caught at the
                        // exact block where it lands.
                        if self.settled.contains_key(&input.prevout) {
                            self.double_violations += 1;
                        }
                        let kind = if escrow::extract_key_from_claim(tx, &input.prevout).is_some() {
                            SettleKind::Claim
                        } else {
                            SettleKind::Refund
                        };
                        if kind == SettleKind::Claim {
                            *self.revenue.entry(watched.gateway).or_insert(0) += out_sum;
                        }
                        self.settled.insert(
                            input.prevout,
                            Settlement {
                                kind,
                                value: out_sum,
                            },
                        );
                        spends.push(input.prevout);
                    }
                }
            }
            self.out_values
                .insert(tx.txid(), tx.outputs.iter().map(|o| o.value).collect());
        }
        debug_assert_eq!(self.blocks.len() as u64, height);
        self.minted += minted;
        self.fees += fees;
        self.blocks.push(AuditedBlock {
            hash: block.hash(),
            minted,
            fees,
            spends,
        });
    }

    fn disconnect_top(&mut self) {
        let Some(block) = self.blocks.pop() else {
            return;
        };
        self.minted -= block.minted;
        self.fees -= block.fees;
        for outpoint in &block.spends {
            if let Some(settlement) = self.settled.remove(outpoint) {
                if settlement.kind == SettleKind::Claim {
                    if let Some(watched) = self.watched.get(outpoint) {
                        if let Some(rev) = self.revenue.get_mut(&watched.gateway) {
                            *rev = rev.saturating_sub(settlement.value);
                        }
                    }
                }
            }
        }
    }

    fn publish(&self, reg: &mut Registry) {
        reg.set_counter(
            "invariant.value_conservation_violations",
            self.value_violations,
        );
        reg.set_counter(
            "invariant.double_settlement_violations",
            self.double_violations,
        );
        reg.set_counter(
            "invariant.fsm_chain_mismatch_violations",
            self.fsm_violations,
        );
        reg.set_counter("chaos.invariant.violation_total", self.violations());
        let (honest, adversarial) = self.split_revenue();
        reg.set_counter("byzantine.honest_revenue_total", honest);
        reg.set_counter("byzantine.adversarial_revenue_total", adversarial);
    }

    /// Final census: reconciles one last time, then checks FSM↔chain
    /// agreement for every escrowed exchange. `phases` lists
    /// `(exchange, phase, is_settled)` for each exchange that published
    /// an escrow. Returns the settlement census plus total violations —
    /// the same quadruple the old end-of-run `check_invariants`
    /// produced, now derived from the incremental ledger.
    pub fn final_audit(
        &mut self,
        chain: &Chain,
        phases: &[(usize, Phase, bool)],
        reg: &mut Registry,
    ) -> FinalAudit {
        self.reconcile(chain, reg);
        // exchange → (claims, refunds) live on the main chain.
        let mut spends: HashMap<usize, (u32, u32)> = HashMap::new();
        for (outpoint, watched) in &self.watched {
            if let Some(settlement) = self.settled.get(outpoint) {
                let entry = spends.entry(watched.exchange).or_default();
                match settlement.kind {
                    SettleKind::Claim => entry.0 += 1,
                    SettleKind::Refund => entry.1 += 1,
                }
            }
        }
        let mut claimed = 0usize;
        let mut refunded = 0usize;
        let mut open = 0usize;
        for &(exchange, phase, is_settled) in phases {
            let (claims, refunds) = spends.get(&exchange).copied().unwrap_or((0, 0));
            match (claims, refunds) {
                (1, 0) => {
                    claimed += 1;
                    if phase != Phase::Claimed {
                        self.fsm_violations += 1;
                    }
                }
                (0, 1) => {
                    refunded += 1;
                    if phase != Phase::Refunded {
                        self.fsm_violations += 1;
                    }
                }
                _ => {
                    open += 1;
                    if is_settled {
                        self.fsm_violations += 1; // FSM settled, chain disagrees
                    }
                }
            }
        }
        self.publish(reg);
        FinalAudit {
            claimed,
            refunded,
            open,
            violations: self.violations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_chain::{Block, Chain, ChainParams, Transaction, TxOut, Wallet};
    use bcwan_sim::SimRng;

    fn chain_with_wallet() -> (Chain, Wallet) {
        let params = ChainParams::fast_test();
        let mut rng = SimRng::seed_from_u64(7);
        let wallet = Wallet::generate(&mut rng);
        let genesis = Chain::make_genesis(&params, &[(wallet.address(), 5_000)]);
        (Chain::new(params, genesis), wallet)
    }

    fn mine(chain: &mut Chain, wallet: &Wallet) {
        let height = chain.height() + 1;
        let cb = Transaction::coinbase(
            height,
            b"audit-test",
            vec![TxOut {
                value: chain.params().coinbase_reward,
                script_pubkey: wallet.locking_script(),
            }],
        );
        let block = Block::mine(
            chain.tip(),
            height,
            chain.params().difficulty_bits,
            vec![cb],
        );
        chain.add_block(block).expect("block connects");
    }

    #[test]
    fn clean_chain_audits_without_violations() {
        let (mut chain, wallet) = chain_with_wallet();
        let mut reg = Registry::new();
        let mut auditor = SettlementAuditor::new(&mut reg);
        auditor.reconcile(&chain, &mut reg);
        mine(&mut chain, &wallet);
        mine(&mut chain, &wallet);
        auditor.reconcile(&chain, &mut reg);
        assert_eq!(auditor.violations(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("audit.blocks_audited_total"), Some(3));
        assert_eq!(
            snap.counter("invariant.value_conservation_violations"),
            Some(0),
            "clean runs export explicit zeros"
        );
        assert_eq!(snap.counter("chaos.invariant.violation_total"), Some(0));
    }

    #[test]
    fn reorg_rolls_the_ledger_back_and_forward() {
        let (mut chain, wallet) = chain_with_wallet();
        let mut reg = Registry::new();
        let mut auditor = SettlementAuditor::new(&mut reg);
        mine(&mut chain, &wallet);
        auditor.reconcile(&chain, &mut reg);
        let fork_point = chain.tip();
        mine(&mut chain, &wallet);
        auditor.reconcile(&chain, &mut reg);
        let minted_before = auditor.minted;

        // A longer private branch (distinct coinbase times → distinct
        // hashes) reorganizes the audited tip away.
        let bits = chain.params().difficulty_bits;
        let reward = chain.params().coinbase_reward;
        let mut prev = fork_point;
        for (height, time_us) in [(2u64, 1_000_000), (3, 2_000_000), (4, 3_000_000)] {
            let cb = Transaction::coinbase(
                height,
                b"private-branch",
                vec![TxOut {
                    value: reward,
                    script_pubkey: wallet.locking_script(),
                }],
            );
            let block = Block::mine(prev, time_us, bits, vec![cb]);
            prev = block.hash();
            chain.add_block(block).expect("branch connects");
        }
        auditor.reconcile(&chain, &mut reg);
        assert_eq!(auditor.violations(), 0, "reorg balances the books");
        assert!(
            auditor.minted != minted_before,
            "ledger followed the reorg ({minted_before} → {})",
            auditor.minted
        );
        assert_eq!(
            auditor.blocks.len() as u64,
            chain.height() + 1,
            "audited prefix tracks the tip"
        );
    }

    #[test]
    fn hidden_inflation_is_caught_at_reconcile() {
        let (mut chain, wallet) = chain_with_wallet();
        let mut reg = Registry::new();
        let mut auditor = SettlementAuditor::new(&mut reg);
        mine(&mut chain, &wallet);
        auditor.reconcile(&chain, &mut reg);
        assert_eq!(auditor.violations(), 0);
        // Simulate corrupt accounting: the auditor's ledger says less
        // was minted than the chain's UTXO set actually holds.
        auditor.minted -= 1;
        mine(&mut chain, &wallet);
        auditor.reconcile(&chain, &mut reg);
        assert!(auditor.violations() > 0, "conservation break detected");
        assert!(
            reg.snapshot()
                .counter("chaos.invariant.violation_total")
                .unwrap()
                > 0
        );
    }
}
