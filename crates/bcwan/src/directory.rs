//! The on-chain IP directory (paper §4.3 / §5.1).
//!
//! "Each recipient that is ready to receive messages on a given IP
//! address must create a blockchain transaction containing the
//! information relative to its IP address. The gateway which needs to
//! deliver the message will then do a lookup in the blockchain …
//! We used the OP_RETURN script operator to do so."
//!
//! Announcements are `OP_RETURN` outputs with a `BCIP` magic:
//! `"BCIP" ‖ address(20) ‖ ip(4) ‖ port(2) ‖ seq(4 LE)`. When one
//! blockchain address announces multiple times, the highest sequence wins
//! (ties broken by chain order), so a relocated gateway (§4.3: "the
//! latter can change if the recipient gateway is moved") republishes with
//! a larger `seq`.

use bcwan_chain::{Address, Chain, Transaction, TxOut};
use bcwan_script::templates::op_return;
use bcwan_script::Script;
use std::collections::HashMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"BCIP";

/// An IPv4 endpoint a recipient listens on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetAddr {
    /// IPv4 octets.
    pub ip: [u8; 4],
    /// TCP port.
    pub port: u16,
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{}",
            self.ip[0], self.ip[1], self.ip[2], self.ip[3], self.port
        )
    }
}

/// One directory announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpAnnouncement {
    /// The announcing blockchain address (`@R`).
    pub address: Address,
    /// The endpoint being announced.
    pub endpoint: NetAddr,
    /// Monotone sequence number; higher supersedes lower.
    pub seq: u32,
}

impl IpAnnouncement {
    /// Serializes into `OP_RETURN` payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.address.0);
        out.extend_from_slice(&self.endpoint.ip);
        out.extend_from_slice(&self.endpoint.port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out
    }

    /// Parses an `OP_RETURN` payload; `None` for foreign/garbled data.
    pub fn from_payload(data: &[u8]) -> Option<Self> {
        if data.len() != 4 + 20 + 4 + 2 + 4 || &data[..4] != MAGIC {
            return None;
        }
        let mut address = [0u8; 20];
        address.copy_from_slice(&data[4..24]);
        let mut ip = [0u8; 4];
        ip.copy_from_slice(&data[24..28]);
        let port = u16::from_be_bytes([data[28], data[29]]);
        let seq = u32::from_le_bytes([data[30], data[31], data[32], data[33]]);
        Some(IpAnnouncement {
            address: Address(address),
            endpoint: NetAddr { ip, port },
            seq,
        })
    }

    /// The `OP_RETURN` locking script carrying this announcement.
    pub fn to_script(&self) -> Script {
        op_return(&self.to_payload())
    }

    /// Extracts the first announcement from a transaction, if any output
    /// carries one.
    pub fn from_transaction(tx: &Transaction) -> Option<Self> {
        Self::all_from_transaction(tx).into_iter().next()
    }

    /// Extracts every announcement a transaction carries (a bootstrap
    /// transaction may announce several recipients at once).
    pub fn all_from_transaction(tx: &Transaction) -> Vec<Self> {
        tx.outputs
            .iter()
            .filter_map(|o| o.script_pubkey.op_return_data())
            .filter_map(Self::from_payload)
            .collect()
    }

    /// Builds the zero-value announcement output.
    pub fn to_output(&self) -> TxOut {
        TxOut {
            value: 0,
            script_pubkey: self.to_script(),
        }
    }
}

/// The directory view a gateway maintains by scanning the chain.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<Address, IpAnnouncement>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Folds one announcement in (highest `seq` wins; equal `seq` keeps
    /// the later arrival, matching scan order).
    pub fn absorb(&mut self, ann: IpAnnouncement) {
        match self.entries.get(&ann.address) {
            Some(existing) if existing.seq > ann.seq => {}
            _ => {
                self.entries.insert(ann.address, ann);
            }
        }
    }

    /// Scans a whole chain from genesis — the §5.1 start-up behaviour.
    pub fn from_chain(chain: &Chain) -> Self {
        let mut dir = Directory::new();
        for block in chain.iter_main() {
            for tx in &block.transactions {
                for ann in IpAnnouncement::all_from_transaction(tx) {
                    dir.absorb(ann);
                }
            }
        }
        dir
    }

    /// Looks up the endpoint of a blockchain address — the §4.3 lookup a
    /// gateway performs before opening its TCP connection.
    pub fn lookup(&self, address: &Address) -> Option<NetAddr> {
        self.entries.get(address).map(|a| a.endpoint)
    }

    /// The sequence number currently held for `address`.
    pub fn seq_of(&self, address: &Address) -> Option<u32> {
        self.entries.get(address).map(|a| a.seq)
    }

    /// Number of known recipients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_chain::{ChainParams, Wallet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ann(addr_byte: u8, last_octet: u8, seq: u32) -> IpAnnouncement {
        IpAnnouncement {
            address: Address([addr_byte; 20]),
            endpoint: NetAddr {
                ip: [10, 0, 0, last_octet],
                port: 7000,
            },
            seq,
        }
    }

    #[test]
    fn payload_round_trip() {
        let a = ann(5, 9, 42);
        let payload = a.to_payload();
        assert_eq!(payload.len(), 34);
        assert_eq!(IpAnnouncement::from_payload(&payload), Some(a));
    }

    #[test]
    fn foreign_payloads_ignored() {
        assert_eq!(IpAnnouncement::from_payload(b"hello"), None);
        assert_eq!(IpAnnouncement::from_payload(&[0u8; 34]), None);
        let mut near = ann(1, 1, 1).to_payload();
        near.push(0); // wrong length
        assert_eq!(IpAnnouncement::from_payload(&near), None);
    }

    #[test]
    fn script_embedding_round_trip() {
        let a = ann(7, 7, 1);
        let script = a.to_script();
        assert!(script.is_op_return());
        let parsed = IpAnnouncement::from_payload(script.op_return_data().unwrap());
        assert_eq!(parsed, Some(a));
    }

    #[test]
    fn directory_latest_seq_wins() {
        let mut dir = Directory::new();
        dir.absorb(ann(1, 10, 1));
        dir.absorb(ann(1, 20, 3));
        dir.absorb(ann(1, 30, 2)); // stale, ignored
        assert_eq!(
            dir.lookup(&Address([1; 20])).unwrap(),
            NetAddr {
                ip: [10, 0, 0, 20],
                port: 7000
            }
        );
        assert_eq!(dir.seq_of(&Address([1; 20])), Some(3));
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn unknown_address_misses() {
        let dir = Directory::new();
        assert_eq!(dir.lookup(&Address([9; 20])), None);
        assert!(dir.is_empty());
    }

    #[test]
    fn from_chain_scans_announcements() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = ChainParams::fast_test();
        let wallet = Wallet::generate(&mut rng);
        let genesis = Chain::make_genesis(&params, &[(wallet.address(), 10_000)]);
        let mut chain = Chain::new(params.clone(), genesis);

        // Announce via a transaction in block 1 that also pays change.
        let coin = {
            let cb = &chain.block_at(0).unwrap().transactions[0];
            bcwan_chain::OutPoint {
                txid: cb.txid(),
                vout: 0,
            }
        };
        // Mature the coinbase first.
        let mut parent = chain.tip();
        for h in 1..=params.coinbase_maturity {
            let cb = Transaction::coinbase(
                h,
                b"m",
                vec![TxOut {
                    value: params.coinbase_reward,
                    script_pubkey: Script::new(),
                }],
            );
            let b = bcwan_chain::Block::mine(parent, h, params.difficulty_bits, vec![cb]);
            parent = b.hash();
            chain.add_block(b).unwrap();
        }
        let announcement = ann(0xaa, 77, 5);
        let tx = wallet.build_payment(
            vec![(coin, wallet.locking_script())],
            vec![
                announcement.to_output(),
                TxOut {
                    value: 9_000,
                    script_pubkey: wallet.locking_script(),
                },
            ],
            0,
        );
        let height = chain.height() + 1;
        let cb = Transaction::coinbase(
            height,
            b"m",
            vec![TxOut {
                value: params.coinbase_reward + 1_000,
                script_pubkey: Script::new(),
            }],
        );
        let block = bcwan_chain::Block::mine(parent, height, params.difficulty_bits, vec![cb, tx]);
        chain.add_block(block).unwrap();

        let dir = Directory::from_chain(&chain);
        assert_eq!(dir.len(), 1);
        assert_eq!(
            dir.lookup(&Address([0xaa; 20])),
            Some(NetAddr {
                ip: [10, 0, 0, 77],
                port: 7000
            })
        );
    }

    #[test]
    fn netaddr_display() {
        let n = NetAddr {
            ip: [192, 168, 1, 10],
            port: 9000,
        };
        assert_eq!(n.to_string(), "192.168.1.10:9000");
    }
}
