//! Escrow construction and redemption (paper Fig. 3 steps 9–10).
//!
//! The recipient funds an output locked by the Listing 1 script; the
//! gateway claims it by revealing the ephemeral private key in its
//! unlocking script; the recipient reads the key back out of the claim.

use bcwan_chain::{Address, OutPoint, Transaction, TxIn, TxOut, Wallet};
use bcwan_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use bcwan_script::templates::{
    ephemeral_key_release, extract_revealed_key, key_reveal_sig, refund_sig,
};
use bcwan_script::Script;

/// The number of blocks after which the refund branch opens; the paper's
/// Listing 1 uses `block_height + 100`.
pub const REFUND_DELTA: u64 = 100;

/// A funded escrow the recipient published.
#[derive(Debug, Clone)]
pub struct Escrow {
    /// The escrow transaction.
    pub tx: Transaction,
    /// Index of the escrowed output inside `tx`.
    pub vout: u32,
    /// The Listing 1 locking script of that output.
    pub script: Script,
    /// The refund height baked into the script.
    pub refund_height: u64,
}

impl Escrow {
    /// The outpoint the gateway must spend.
    pub fn outpoint(&self) -> OutPoint {
        OutPoint {
            txid: self.tx.txid(),
            vout: self.vout,
        }
    }
}

/// Builds the escrow transaction (step 9): spends recipient coins into a
/// Listing 1 output worth `reward`, with change back to the recipient.
///
/// `coins` are `(outpoint, locking_script, value)` triples owned by
/// `wallet`; they must cover `reward + fee`.
///
/// # Panics
///
/// Panics if the coins do not cover `reward + fee` (caller selects coins).
pub fn build_escrow(
    wallet: &Wallet,
    coins: &[(OutPoint, Script, u64)],
    e_pk: &RsaPublicKey,
    gateway_address: &Address,
    reward: u64,
    fee: u64,
    current_height: u64,
) -> Escrow {
    build_escrow_with_delta(
        wallet,
        coins,
        e_pk,
        gateway_address,
        reward,
        fee,
        current_height,
        REFUND_DELTA,
    )
}

/// [`build_escrow`] with an explicit refund delta instead of the paper's
/// fixed 100 blocks — short deltas let fast test chains reach the CLTV
/// branch without mining a hundred blocks.
///
/// # Panics
///
/// Panics if the coins do not cover `reward + fee` (caller selects coins).
#[allow(clippy::too_many_arguments)] // the build_escrow tuple plus the delta
pub fn build_escrow_with_delta(
    wallet: &Wallet,
    coins: &[(OutPoint, Script, u64)],
    e_pk: &RsaPublicKey,
    gateway_address: &Address,
    reward: u64,
    fee: u64,
    current_height: u64,
    refund_delta: u64,
) -> Escrow {
    let total: u64 = coins.iter().map(|(_, _, v)| v).sum();
    assert!(
        total >= reward + fee,
        "escrow coins {total} cannot cover reward {reward} + fee {fee}"
    );
    let refund_height = current_height + refund_delta;
    let script =
        ephemeral_key_release(e_pk, &gateway_address.0, &wallet.address().0, refund_height);
    let mut outputs = vec![TxOut {
        value: reward,
        script_pubkey: script.clone(),
    }];
    let change = total - reward - fee;
    if change > 0 {
        outputs.push(TxOut {
            value: change,
            script_pubkey: wallet.locking_script(),
        });
    }
    let inputs: Vec<(OutPoint, Script)> = coins
        .iter()
        .map(|(op, spk, _)| (*op, spk.clone()))
        .collect();
    let tx = wallet.build_payment(inputs, outputs, 0);
    Escrow {
        tx,
        vout: 0,
        script,
        refund_height,
    }
}

/// Builds the gateway's claim transaction (step 10): spends the escrow,
/// revealing `e_sk` on chain. "The output of this transaction is not
/// important but should be intended to the gateway itself."
pub fn build_claim(
    gateway_wallet: &Wallet,
    escrow_outpoint: OutPoint,
    escrow_script: &Script,
    escrow_value: u64,
    e_sk: &RsaPrivateKey,
    fee: u64,
) -> Transaction {
    let mut tx = Transaction {
        version: 1,
        inputs: vec![TxIn {
            prevout: escrow_outpoint,
            script_sig: Script::new(),
            sequence: 0,
        }],
        outputs: vec![TxOut {
            value: escrow_value.saturating_sub(fee),
            script_pubkey: gateway_wallet.locking_script(),
        }],
        lock_time: 0, // reveal path has no lock-time requirement
    };
    let sig = gateway_wallet.sign_input(&tx, 0, escrow_script);
    tx.inputs[0].script_sig = key_reveal_sig(&sig, gateway_wallet.pubkey_bytes(), e_sk);
    tx
}

/// Builds the recipient's refund transaction for an unclaimed escrow:
/// valid only once `refund_height` has passed (BIP-65).
pub fn build_refund(
    recipient_wallet: &Wallet,
    escrow: &Escrow,
    escrow_value: u64,
    fee: u64,
) -> Transaction {
    let mut tx = Transaction {
        version: 1,
        inputs: vec![TxIn {
            prevout: escrow.outpoint(),
            script_sig: Script::new(),
            sequence: 0, // non-final, so CLTV applies
        }],
        outputs: vec![TxOut {
            value: escrow_value.saturating_sub(fee),
            script_pubkey: recipient_wallet.locking_script(),
        }],
        lock_time: escrow.refund_height,
    };
    let sig = recipient_wallet.sign_input(&tx, 0, &escrow.script);
    tx.inputs[0].script_sig = refund_sig(&sig, recipient_wallet.pubkey_bytes());
    tx
}

/// Scans a transaction for an output locked to the given ephemeral public
/// key (how the gateway recognizes "its" escrow in the mempool). Returns
/// the output index and value.
pub fn find_escrow_for_key(tx: &Transaction, e_pk: &RsaPublicKey) -> Option<(u32, u64)> {
    let needle = e_pk.to_bytes();
    for (vout, output) in tx.outputs.iter().enumerate() {
        if let Some(bcwan_script::Instruction::Push(first)) =
            output.script_pubkey.instructions().first()
        {
            let has_pair_op = output.script_pubkey.instructions().get(1).is_some_and(|i| {
                matches!(
                    i,
                    bcwan_script::Instruction::Op(bcwan_script::Opcode::CheckRsa512Pair)
                )
            });
            if has_pair_op && *first == needle {
                return Some((vout as u32, output.value));
            }
        }
    }
    None
}

/// Extracts the ephemeral private key from a transaction that spends
/// `escrow_outpoint` (how the recipient learns `eSk` from the claim).
pub fn extract_key_from_claim(
    tx: &Transaction,
    escrow_outpoint: &OutPoint,
) -> Option<RsaPrivateKey> {
    tx.inputs
        .iter()
        .find(|input| input.prevout == *escrow_outpoint)
        .and_then(|input| extract_revealed_key(&input.script_sig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_chain::{validate_transaction, Chain, ChainParams};
    use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        params: ChainParams,
        chain: Chain,
        recipient: Wallet,
        gateway: Wallet,
        coin: (OutPoint, Script, u64),
        e_pk: RsaPublicKey,
        e_sk: RsaPrivateKey,
    }

    fn setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(77);
        let params = ChainParams::fast_test();
        let recipient = Wallet::generate(&mut rng);
        let gateway = Wallet::generate(&mut rng);
        let genesis = Chain::make_genesis(&params, &[(recipient.address(), 10_000)]);
        let chain = Chain::new(params.clone(), genesis);
        let cb = &chain.block_at(0).unwrap().transactions[0];
        let coin = (
            OutPoint {
                txid: cb.txid(),
                vout: 0,
            },
            recipient.locking_script(),
            10_000,
        );
        let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
        Setup {
            params,
            chain,
            recipient,
            gateway,
            coin,
            e_pk,
            e_sk,
        }
    }

    /// Height at which the genesis coin is mature.
    fn mature(s: &Setup) -> u64 {
        s.params.coinbase_maturity
    }

    #[test]
    fn escrow_tx_validates_and_pays_reward_plus_change() {
        let s = setup();
        let escrow = build_escrow(
            &s.recipient,
            std::slice::from_ref(&s.coin),
            &s.e_pk,
            &s.gateway.address(),
            100,
            10,
            0,
        );
        assert_eq!(escrow.tx.outputs.len(), 2);
        assert_eq!(escrow.tx.outputs[0].value, 100);
        assert_eq!(escrow.tx.outputs[1].value, 9_890);
        assert_eq!(escrow.refund_height, REFUND_DELTA);
        let fee = validate_transaction(&escrow.tx, s.chain.utxo(), mature(&s), &s.params)
            .expect("escrow valid");
        assert_eq!(fee, 10);
    }

    #[test]
    fn claim_reveals_key_and_validates() {
        let s = setup();
        let escrow = build_escrow(
            &s.recipient,
            std::slice::from_ref(&s.coin),
            &s.e_pk,
            &s.gateway.address(),
            100,
            10,
            0,
        );
        // Put the escrow into the UTXO view.
        let mut utxo = s.chain.utxo().clone();
        let mut undo = bcwan_chain::utxo::UndoData::default();
        utxo.apply_transaction(&escrow.tx, mature(&s), &mut undo)
            .unwrap();

        let claim = build_claim(
            &s.gateway,
            escrow.outpoint(),
            &escrow.script,
            100,
            &s.e_sk,
            5,
        );
        let fee = validate_transaction(&claim, &utxo, mature(&s), &s.params)
            .expect("claim valid without any lock time");
        assert_eq!(fee, 5);

        // The recipient recovers the key from the claim.
        let recovered = extract_key_from_claim(&claim, &escrow.outpoint()).unwrap();
        assert!(s.e_pk.matches_private(&recovered));
    }

    #[test]
    fn claim_with_wrong_key_invalid() {
        let mut rng = StdRng::seed_from_u64(88);
        let s = setup();
        let escrow = build_escrow(
            &s.recipient,
            std::slice::from_ref(&s.coin),
            &s.e_pk,
            &s.gateway.address(),
            100,
            10,
            0,
        );
        let mut utxo = s.chain.utxo().clone();
        let mut undo = bcwan_chain::utxo::UndoData::default();
        utxo.apply_transaction(&escrow.tx, mature(&s), &mut undo)
            .unwrap();

        let (_, wrong_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
        let claim = build_claim(
            &s.gateway,
            escrow.outpoint(),
            &escrow.script,
            100,
            &wrong_sk,
            5,
        );
        assert!(validate_transaction(&claim, &utxo, mature(&s), &s.params).is_err());
    }

    #[test]
    fn refund_only_after_lock_height() {
        let s = setup();
        let escrow = build_escrow(
            &s.recipient,
            std::slice::from_ref(&s.coin),
            &s.e_pk,
            &s.gateway.address(),
            100,
            10,
            0,
        );
        let mut utxo = s.chain.utxo().clone();
        let mut undo = bcwan_chain::utxo::UndoData::default();
        utxo.apply_transaction(&escrow.tx, mature(&s), &mut undo)
            .unwrap();

        let refund = build_refund(&s.recipient, &escrow, 100, 5);
        // Too early: the transaction itself is not final.
        assert!(validate_transaction(&refund, &utxo, 50, &s.params).is_err());
        // After the lock height it validates.
        let fee = validate_transaction(&refund, &utxo, escrow.refund_height, &s.params)
            .expect("refund valid after lock height");
        assert_eq!(fee, 5);
    }

    #[test]
    fn gateway_cannot_claim_with_refund_path() {
        let s = setup();
        let escrow = build_escrow(
            &s.recipient,
            std::slice::from_ref(&s.coin),
            &s.e_pk,
            &s.gateway.address(),
            100,
            10,
            0,
        );
        let mut utxo = s.chain.utxo().clone();
        let mut undo = bcwan_chain::utxo::UndoData::default();
        utxo.apply_transaction(&escrow.tx, mature(&s), &mut undo)
            .unwrap();

        // Gateway forges a "refund" to itself after the lock height.
        let fake = Escrow {
            tx: escrow.tx.clone(),
            vout: 0,
            script: escrow.script.clone(),
            refund_height: escrow.refund_height,
        };
        let theft = build_refund(&s.gateway, &fake, 100, 5);
        assert!(validate_transaction(&theft, &utxo, escrow.refund_height + 10, &s.params).is_err());
    }

    #[test]
    fn find_escrow_by_ephemeral_key() {
        let s = setup();
        let escrow = build_escrow(
            &s.recipient,
            std::slice::from_ref(&s.coin),
            &s.e_pk,
            &s.gateway.address(),
            250,
            10,
            0,
        );
        assert_eq!(find_escrow_for_key(&escrow.tx, &s.e_pk), Some((0, 250)));
        // A different key does not match.
        let mut rng = StdRng::seed_from_u64(5);
        let (other_pk, _) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
        assert_eq!(find_escrow_for_key(&escrow.tx, &other_pk), None);
        // A plain payment does not match either.
        let plain = s.recipient.build_payment(
            vec![(s.coin.0, s.coin.1.clone())],
            vec![TxOut {
                value: 1,
                script_pubkey: s.recipient.locking_script(),
            }],
            0,
        );
        assert_eq!(find_escrow_for_key(&plain, &s.e_pk), None);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn underfunded_escrow_panics() {
        let s = setup();
        build_escrow(
            &s.recipient,
            &[(s.coin.0, s.coin.1.clone(), 50)],
            &s.e_pk,
            &s.gateway.address(),
            100,
            10,
            0,
        );
    }
}
