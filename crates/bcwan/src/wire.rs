//! Messages BcWAN hosts exchange over TCP/IP (the overlay).

use crate::exchange::SealedUplink;
use crate::provisioning::DeviceId;
use bcwan_p2p::ChainMessage;

/// A wide-area message between BcWAN hosts.
#[derive(Debug, Clone)]
pub enum WanMessage {
    /// Chain gossip (transactions, blocks, sync traffic).
    Chain(ChainMessage),
    /// Step 7: the gateway forwards `(Em, ePk, Sig)` to the recipient it
    /// looked up in the directory.
    Deliver {
        /// Which provisioned device produced the data.
        device_id: DeviceId,
        /// Serialized ephemeral public key `ePk`.
        e_pk_bytes: Vec<u8>,
        /// The sealed payload and node signature.
        uplink: SealedUplink,
    },
}

impl WanMessage {
    /// Short label for logs/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            WanMessage::Chain(ChainMessage::Tx(_)) => "tx",
            WanMessage::Chain(ChainMessage::Block(_)) => "block",
            WanMessage::Chain(_) => "sync",
            WanMessage::Deliver { .. } => "deliver",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        let deliver = WanMessage::Deliver {
            device_id: DeviceId(1),
            e_pk_bytes: vec![],
            uplink: SealedUplink {
                em: vec![],
                sig: vec![],
            },
        };
        assert_eq!(deliver.kind(), "deliver");
        assert_eq!(WanMessage::Chain(ChainMessage::GetBlocksFrom(0)).kind(), "sync");
    }
}
