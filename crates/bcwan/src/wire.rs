//! Messages BcWAN hosts exchange over TCP/IP (the overlay).

use crate::exchange::SealedUplink;
use crate::provisioning::DeviceId;
use bcwan_p2p::ChainMessage;

/// A wide-area message between BcWAN hosts.
#[derive(Debug, Clone)]
pub enum WanMessage {
    /// Chain gossip (transactions, blocks, sync traffic).
    Chain(ChainMessage),
    /// Step 7: the gateway forwards `(Em, ePk, Sig)` to the recipient it
    /// looked up in the directory.
    Deliver {
        /// Which provisioned device produced the data.
        device_id: DeviceId,
        /// Serialized ephemeral public key `ePk`.
        e_pk_bytes: Vec<u8>,
        /// The sealed payload and node signature.
        uplink: SealedUplink,
    },
}

/// Number of distinct [`WanMessage::kind`] labels (`tx`, `block`, `sync`,
/// `deliver`) — the width of per-kind counter arrays.
pub const KIND_COUNT: usize = 4;

impl WanMessage {
    /// Short label for logs/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            WanMessage::Chain(ChainMessage::Tx(_)) => "tx",
            WanMessage::Chain(ChainMessage::Block(_)) => "block",
            WanMessage::Chain(_) => "sync",
            WanMessage::Deliver { .. } => "deliver",
        }
    }

    /// Dense index of [`WanMessage::kind`], for per-kind counter arrays
    /// (`< KIND_COUNT`).
    pub fn kind_index(&self) -> usize {
        match self {
            WanMessage::Chain(ChainMessage::Tx(_)) => 0,
            WanMessage::Chain(ChainMessage::Block(_)) => 1,
            WanMessage::Chain(_) => 2,
            WanMessage::Deliver { .. } => 3,
        }
    }

    /// Approximate on-the-wire size in bytes: one tag byte plus the
    /// payload's serialized size. Used for traffic accounting, not for
    /// actual framing.
    pub fn wire_size(&self) -> usize {
        match self {
            WanMessage::Chain(ChainMessage::Tx(tx)) => 1 + tx.size(),
            WanMessage::Chain(ChainMessage::Block(block)) => 1 + block.size(),
            // Sync requests/announces carry at most a hash and a height.
            WanMessage::Chain(_) => 1 + 32 + 8,
            WanMessage::Deliver {
                e_pk_bytes, uplink, ..
            } => 1 + 4 + e_pk_bytes.len() + uplink.em.len() + uplink.sig.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        let deliver = WanMessage::Deliver {
            device_id: DeviceId(1),
            e_pk_bytes: vec![],
            uplink: SealedUplink {
                em: vec![],
                sig: vec![],
            },
        };
        assert_eq!(deliver.kind(), "deliver");
        assert_eq!(
            WanMessage::Chain(ChainMessage::GetBlocksFrom(0)).kind(),
            "sync"
        );
    }

    #[test]
    fn kind_index_is_dense() {
        let deliver = WanMessage::Deliver {
            device_id: DeviceId(1),
            e_pk_bytes: vec![0; 10],
            uplink: SealedUplink {
                em: vec![0; 64],
                sig: vec![0; 64],
            },
        };
        assert!(deliver.kind_index() < KIND_COUNT);
        assert_eq!(deliver.wire_size(), 1 + 4 + 10 + 64 + 64);
        let sync = WanMessage::Chain(ChainMessage::GetBlocksFrom(7));
        assert_eq!(sync.wire_size(), 41);
        assert_ne!(sync.kind_index(), deliver.kind_index());
    }
}
