//! Messages BcWAN hosts exchange over TCP/IP (the overlay), and their
//! deterministic binary wire encoding.
//!
//! [`WanMessage::encode`] / [`WanMessage::decode`] are the payload codec
//! the transport layer frames (see `bcwan-p2p`'s `transport` module): a
//! one-byte variant tag followed by the variant's fields, every integer
//! little-endian, every variable-length field `u32`-length-prefixed.
//!
//! ```text
//! offset  size  field
//!      0     1  message tag (0 Tx, 1 Block, 2 GetBlock, 3 GetBlocksFrom,
//!               4 TipAnnounce, 5 Deliver, 6 GetHeadersFrom, 7 Headers)
//!      1     …  tag-specific fields, in declaration order:
//!               integers u32/u64 LE; hashes raw 32 bytes; headers raw
//!               88 bytes; variable fields (scripts, ePk, Em, Sig)
//!               u32-length-prefixed
//! ```
//!
//! This is the *payload* layout only. Integrity and authenticity are
//! deliberately **not** here: the CRC-32 and the 16-byte HMAC tag live
//! in the 38-byte transport frame header (`bcwan-p2p`'s
//! `transport::frame`) that wraps this payload on the byte stream —
//! earlier revisions of this doc implied the checksum was part of the
//! payload, which it never was. Transactions, blocks, and headers reuse
//! the chain's canonical `serialize()` layout byte-for-byte and decode
//! through the shared [`bcwan_chain::codec`] readers (the same ones the
//! persistent store uses), so a decoded transaction re-hashes to the
//! same txid it had on the sending host. Decoding is total: any byte
//! slice either yields a message or a [`WireError`] — never a panic,
//! and never an allocation larger than the input it was handed.

use crate::exchange::SealedUplink;
use crate::provisioning::DeviceId;
use bcwan_chain::codec::{decode_block, decode_header, decode_transaction, CodecError, Reader};
use bcwan_chain::BlockHash;
use bcwan_p2p::ChainMessage;
use std::fmt;

/// A wide-area message between BcWAN hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WanMessage {
    /// Chain gossip (transactions, blocks, sync traffic).
    Chain(ChainMessage),
    /// Step 7: the gateway forwards `(Em, ePk, Sig)` to the recipient it
    /// looked up in the directory.
    Deliver {
        /// Which provisioned device produced the data.
        device_id: DeviceId,
        /// Serialized ephemeral public key `ePk`.
        e_pk_bytes: Vec<u8>,
        /// The sealed payload and node signature.
        uplink: SealedUplink,
    },
}

/// Number of distinct [`WanMessage::kind`] labels (`tx`, `block`, `sync`,
/// `deliver`) — the width of per-kind counter arrays.
pub const KIND_COUNT: usize = 4;

impl WanMessage {
    /// Short label for logs/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            WanMessage::Chain(ChainMessage::Tx(_)) => "tx",
            WanMessage::Chain(ChainMessage::Block(_)) => "block",
            WanMessage::Chain(_) => "sync",
            WanMessage::Deliver { .. } => "deliver",
        }
    }

    /// Dense index of [`WanMessage::kind`], for per-kind counter arrays
    /// (`< KIND_COUNT`).
    pub fn kind_index(&self) -> usize {
        match self {
            WanMessage::Chain(ChainMessage::Tx(_)) => 0,
            WanMessage::Chain(ChainMessage::Block(_)) => 1,
            WanMessage::Chain(_) => 2,
            WanMessage::Deliver { .. } => 3,
        }
    }

    /// Approximate on-the-wire size in bytes: one tag byte plus the
    /// payload's serialized size. Used for traffic accounting, not for
    /// actual framing.
    pub fn wire_size(&self) -> usize {
        match self {
            WanMessage::Chain(ChainMessage::Tx(tx)) => 1 + tx.size(),
            WanMessage::Chain(ChainMessage::Block(block)) => 1 + block.size(),
            WanMessage::Chain(ChainMessage::Headers { headers, .. }) => {
                1 + 8 + 4 + 88 * headers.len()
            }
            // Remaining sync requests/announces carry at most a hash
            // and a height.
            WanMessage::Chain(_) => 1 + 32 + 8,
            WanMessage::Deliver {
                e_pk_bytes, uplink, ..
            } => 1 + 4 + e_pk_bytes.len() + uplink.em.len() + uplink.sig.len(),
        }
    }
}

/// Why bytes did not decode into a [`WanMessage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the message did.
    Truncated,
    /// Bytes were left over after a complete message.
    TrailingBytes(usize),
    /// The leading variant tag is not one this version knows.
    UnknownTag(u8),
    /// An embedded script failed to parse.
    BadScript(String),
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => WireError::Truncated,
            CodecError::TrailingBytes(n) => WireError::TrailingBytes(n),
            CodecError::BadScript(why) => WireError::BadScript(why),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::BadScript(why) => write!(f, "embedded script invalid: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

// Variant tags. Order is wire format — append, never renumber.
const TAG_TX: u8 = 0;
const TAG_BLOCK: u8 = 1;
const TAG_GET_BLOCK: u8 = 2;
const TAG_GET_BLOCKS_FROM: u8 = 3;
const TAG_TIP_ANNOUNCE: u8 = 4;
const TAG_DELIVER: u8 = 5;
const TAG_GET_HEADERS_FROM: u8 = 6;
const TAG_HEADERS: u8 = 7;

impl WanMessage {
    /// Deterministic binary encoding: one tag byte, then the variant's
    /// fields (integers LE, variable-length fields `u32`-prefixed).
    /// Transactions and blocks use the chain's canonical serialization.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        match self {
            WanMessage::Chain(ChainMessage::Tx(tx)) => {
                out.push(TAG_TX);
                out.extend_from_slice(&tx.serialize());
            }
            WanMessage::Chain(ChainMessage::Block(block)) => {
                out.push(TAG_BLOCK);
                out.extend_from_slice(&block.header.serialize());
                out.extend_from_slice(&(block.transactions.len() as u32).to_le_bytes());
                for tx in &block.transactions {
                    out.extend_from_slice(&tx.serialize());
                }
            }
            WanMessage::Chain(ChainMessage::GetBlock(hash)) => {
                out.push(TAG_GET_BLOCK);
                out.extend_from_slice(&hash.0);
            }
            WanMessage::Chain(ChainMessage::GetBlocksFrom(height)) => {
                out.push(TAG_GET_BLOCKS_FROM);
                out.extend_from_slice(&height.to_le_bytes());
            }
            WanMessage::Chain(ChainMessage::TipAnnounce { hash, height }) => {
                out.push(TAG_TIP_ANNOUNCE);
                out.extend_from_slice(&hash.0);
                out.extend_from_slice(&height.to_le_bytes());
            }
            WanMessage::Chain(ChainMessage::GetHeadersFrom(height)) => {
                out.push(TAG_GET_HEADERS_FROM);
                out.extend_from_slice(&height.to_le_bytes());
            }
            WanMessage::Chain(ChainMessage::Headers {
                start_height,
                headers,
            }) => {
                out.push(TAG_HEADERS);
                out.extend_from_slice(&start_height.to_le_bytes());
                out.extend_from_slice(&(headers.len() as u32).to_le_bytes());
                for header in headers {
                    out.extend_from_slice(&header.serialize());
                }
            }
            WanMessage::Deliver {
                device_id,
                e_pk_bytes,
                uplink,
            } => {
                out.push(TAG_DELIVER);
                out.extend_from_slice(&device_id.0.to_le_bytes());
                push_vec(&mut out, e_pk_bytes);
                push_vec(&mut out, &uplink.em);
                push_vec(&mut out, &uplink.sig);
            }
        }
        out
    }

    /// Decodes bytes produced by [`WanMessage::encode`].
    ///
    /// # Errors
    ///
    /// A [`WireError`] for truncated, trailing, or malformed input; never
    /// panics, never allocates more than the input's length.
    pub fn decode(bytes: &[u8]) -> Result<WanMessage, WireError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            TAG_TX => WanMessage::Chain(ChainMessage::Tx(decode_transaction(&mut r)?)),
            TAG_BLOCK => WanMessage::Chain(ChainMessage::Block(decode_block(&mut r)?)),
            TAG_GET_BLOCK => WanMessage::Chain(ChainMessage::GetBlock(BlockHash(r.array32()?))),
            TAG_GET_BLOCKS_FROM => WanMessage::Chain(ChainMessage::GetBlocksFrom(r.u64()?)),
            TAG_TIP_ANNOUNCE => WanMessage::Chain(ChainMessage::TipAnnounce {
                hash: BlockHash(r.array32()?),
                height: r.u64()?,
            }),
            TAG_DELIVER => WanMessage::Deliver {
                device_id: DeviceId(r.u32()?),
                e_pk_bytes: r.vec()?,
                uplink: SealedUplink {
                    em: r.vec()?,
                    sig: r.vec()?,
                },
            },
            TAG_GET_HEADERS_FROM => WanMessage::Chain(ChainMessage::GetHeadersFrom(r.u64()?)),
            TAG_HEADERS => {
                let start_height = r.u64()?;
                let count = r.u32()?;
                let mut headers = Vec::new();
                for _ in 0..count {
                    headers.push(decode_header(&mut r)?);
                }
                WanMessage::Chain(ChainMessage::Headers {
                    start_height,
                    headers,
                })
            }
            tag => return Err(WireError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(msg)
    }
}

fn push_vec(out: &mut Vec<u8>, bytes: &[u8]) {
    bcwan_chain::codec::push_vec(out, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        let deliver = WanMessage::Deliver {
            device_id: DeviceId(1),
            e_pk_bytes: vec![],
            uplink: SealedUplink {
                em: vec![],
                sig: vec![],
            },
        };
        assert_eq!(deliver.kind(), "deliver");
        assert_eq!(
            WanMessage::Chain(ChainMessage::GetBlocksFrom(0)).kind(),
            "sync"
        );
    }

    #[test]
    fn kind_index_is_dense() {
        let deliver = WanMessage::Deliver {
            device_id: DeviceId(1),
            e_pk_bytes: vec![0; 10],
            uplink: SealedUplink {
                em: vec![0; 64],
                sig: vec![0; 64],
            },
        };
        assert!(deliver.kind_index() < KIND_COUNT);
        assert_eq!(deliver.wire_size(), 1 + 4 + 10 + 64 + 64);
        let sync = WanMessage::Chain(ChainMessage::GetBlocksFrom(7));
        assert_eq!(sync.wire_size(), 41);
        assert_ne!(sync.kind_index(), deliver.kind_index());
    }

    fn sample_block() -> bcwan_chain::Block {
        use rand::SeedableRng;
        let params = bcwan_chain::ChainParams::fast_test();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let wallet = bcwan_chain::Wallet::generate(&mut rng);
        bcwan_chain::Chain::make_genesis(&params, &[(wallet.address(), 25)])
    }

    fn round_trip(msg: WanMessage) {
        let bytes = msg.encode();
        assert_eq!(WanMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn every_variant_round_trips() {
        let block = sample_block();
        let tx = block.transactions[0].clone();
        round_trip(WanMessage::Chain(ChainMessage::Tx(tx)));
        round_trip(WanMessage::Chain(ChainMessage::Block(block.clone())));
        round_trip(WanMessage::Chain(ChainMessage::GetBlock(block.hash())));
        round_trip(WanMessage::Chain(ChainMessage::GetBlocksFrom(u64::MAX)));
        round_trip(WanMessage::Chain(ChainMessage::TipAnnounce {
            hash: block.hash(),
            height: 12,
        }));
        round_trip(WanMessage::Chain(ChainMessage::GetHeadersFrom(3)));
        round_trip(WanMessage::Chain(ChainMessage::Headers {
            start_height: 0,
            headers: vec![block.header.clone(), block.header.clone()],
        }));
        round_trip(WanMessage::Chain(ChainMessage::Headers {
            start_height: 9,
            headers: vec![],
        }));
        round_trip(WanMessage::Deliver {
            device_id: DeviceId(77),
            e_pk_bytes: vec![1, 2, 3, 4],
            uplink: SealedUplink {
                em: vec![9; 120],
                sig: vec![7; 64],
            },
        });
    }

    #[test]
    fn decoded_tx_keeps_its_txid() {
        let block = sample_block();
        let tx = block.transactions[0].clone();
        let txid = tx.txid();
        let bytes = WanMessage::Chain(ChainMessage::Tx(tx)).encode();
        match WanMessage::decode(&bytes).unwrap() {
            WanMessage::Chain(ChainMessage::Tx(decoded)) => assert_eq!(decoded.txid(), txid),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_tag_empty_and_trailing() {
        assert_eq!(WanMessage::decode(&[]), Err(WireError::Truncated));
        assert_eq!(
            WanMessage::decode(&[0xee]),
            Err(WireError::UnknownTag(0xee))
        );
        let mut bytes = WanMessage::Chain(ChainMessage::GetBlocksFrom(1)).encode();
        bytes.push(0);
        assert_eq!(WanMessage::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_is_truncated_not_oom() {
        // A Deliver whose e_pk length claims 4 GiB.
        let mut bytes = vec![5u8]; // TAG_DELIVER
        bytes.extend_from_slice(&7u32.to_le_bytes()); // device id
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile length
        assert_eq!(WanMessage::decode(&bytes), Err(WireError::Truncated));
        // A block claiming 4 billion transactions.
        let block = sample_block();
        let mut bytes = vec![1u8]; // TAG_BLOCK
        bytes.extend_from_slice(&block.header.serialize());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(WanMessage::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn truncation_at_every_cut_errors_cleanly() {
        let block = sample_block();
        let bytes = WanMessage::Chain(ChainMessage::Block(block)).encode();
        for cut in 0..bytes.len() {
            assert!(
                WanMessage::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
