//! # bcwan
//!
//! A from-scratch reproduction of **BcWAN: A Federated Low-Power WAN for
//! the Internet of Things** (Bezahaf, Cathelain, Ducrocq — Middleware '18
//! Industry). BcWAN replaces the LoRaWAN network server with a blockchain:
//! sensors deliver data to their home network through *foreign* gateways,
//! gateways find recipients through an on-chain IP directory, and a
//! fair-exchange contract (a custom `OP_CHECKRSA512PAIR` script) pays the
//! gateway if and only if it discloses the ephemeral decryption key.
//!
//! Modules, by paper section:
//!
//! - [`provisioning`] — the shared-key setup of §4.4 (`K`, `Sk`/`Pk`),
//! - [`exchange`] — the double encryption and signatures of Fig. 3
//!   steps 3–4, 8 and 10,
//! - [`directory`] — the `OP_RETURN` IP directory of §4.3/§5.1,
//! - [`app_server`] — the final hop of Figs. 1–2: device→application-server
//!   routing at the recipient,
//! - [`escrow`] — the Listing 1 escrow, claim and refund transactions,
//! - [`fsm`] — the per-exchange fault-tolerance state machine (named
//!   phases, per-phase deadlines, reorg-aware settlement),
//! - [`daemon`] — the per-host chain daemon with the Multichain
//!   block-verification **stall model** (§5.2),
//! - [`costs`] — CPU cost table for Nucleo/Pi/VM-class hardware,
//! - [`world`] — the full §5.2 testbed simulation (Figs. 5 and 6),
//! - [`audit`] — the always-on settlement auditor: per-block value
//!   conservation, at-most-one settlement per escrow, and the
//!   honest-vs-adversarial revenue split,
//! - [`reputation`] — the §4.4 reputation-only baseline,
//! - [`attack`] — the §6 double-spend attack and the confirmation-depth
//!   counter-measure,
//! - [`election`] — master-gateway election among an actor's gateways
//!   (§4.2 footnote 3),
//! - [`sync`] — the §5.1 start-up block synchronization,
//! - [`wire`] — the host-to-host message vocabulary and its binary
//!   wire encoding,
//! - [`net`] — the §4.3 delivery glue: the wire codec packaged for the
//!   `bcwan-p2p` TCP transport, and directory-driven dialing,
//! - [`fleet`] — one transport, two worlds: the transport-generic
//!   daemon loop that runs the same scenario over the in-process bus or
//!   real TCP sockets.
//!
//! ## Quickstart
//!
//! ```no_run
//! use bcwan::world::{WorkloadConfig, World};
//!
//! // The paper's Fig. 5 experiment (block verification disabled).
//! let result = World::new(WorkloadConfig::paper_fig5()).run();
//! println!("mean latency: {:.3}s", result.latencies.summary().unwrap().mean);
//! ```

#![warn(missing_docs)]

pub mod app_server;
pub mod attack;
pub mod audit;
pub mod costs;
pub mod daemon;
pub mod directory;
pub mod election;
pub mod escrow;
pub mod exchange;
pub mod fleet;
pub mod fsm;
pub mod net;
pub mod provisioning;
pub mod reputation;
pub mod sync;
pub mod wire;
pub mod world;

pub use audit::{FinalAudit, GatewayOutcome, SettleKind, SettlementAuditor};
pub use costs::CostModel;
pub use daemon::{Daemon, DaemonStats};
pub use directory::{Directory, IpAnnouncement, NetAddr};
pub use escrow::{build_claim, build_escrow, build_escrow_with_delta, build_refund, Escrow};
pub use exchange::{open_reading, seal_reading, verify_uplink, ExchangeError, SealedUplink};
pub use fleet::{
    fig3_partition_recovery, BusFleet, Fleet, FleetNode, FleetOutcome, FleetTransport, TcpFleet,
};
pub use fsm::{ExchangeFsm, FsmConfig, FsmEvent, Phase, RetryPolicy};
pub use net::{DialError, OverlayDialer, WanCodec};
pub use provisioning::{DeviceCredentials, DeviceId, DeviceRecord, DeviceRegistry};
pub use wire::{WanMessage, WireError};
pub use world::{ExperimentResult, WorkloadConfig, World};
