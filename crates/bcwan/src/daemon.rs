//! The per-host blockchain daemon, including the Multichain stall model.
//!
//! The paper wraps Multichain in a Golang daemon; requests serialize
//! through it. We model the daemon as a single-server queue: every piece
//! of work *starts* no earlier than the daemon's `busy_until` and pushes
//! `busy_until` forward by its processing cost. Block arrival with
//! verification enabled charges the sampled stall duration — the §5.2
//! observation that the daemon becomes "unresponsive for extended
//! periods upon each block arrival", which separates Fig. 5 from Fig. 6.

use crate::costs::CostModel;
use bcwan_chain::{Block, BlockAction, Chain, ChainError, Mempool, MempoolError, Transaction};
use bcwan_p2p::RelayState;
use bcwan_sim::{SimDuration, SimRng, SimTime};

/// Statistics the daemon accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DaemonStats {
    /// Blocks accepted onto the main chain.
    pub blocks_accepted: u64,
    /// Transactions admitted to the mempool.
    pub txs_accepted: u64,
    /// Number of verification stalls suffered.
    pub stalls: u64,
    /// Total simulated time spent stalled.
    pub total_stall: SimDuration,
}

/// A host's chain daemon.
pub struct Daemon {
    /// The host's view of the chain.
    pub chain: Chain,
    /// The host's mempool.
    pub mempool: Mempool,
    /// Gossip dedup state.
    pub relay: RelayState,
    busy_until: SimTime,
    stats: DaemonStats,
    /// Transactions confirmed by the last main-chain-changing block.
    last_connected: Vec<Transaction>,
    /// Transactions disconnected by the last reorg.
    last_disconnected: Vec<Transaction>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("height", &self.chain.height())
            .field("mempool", &self.mempool.len())
            .field("busy_until", &self.busy_until)
            .finish()
    }
}

impl Daemon {
    /// Wraps a chain into a fresh daemon. The mempool shares the chain's
    /// signature cache, so scripts verified at admission are not re-run
    /// when the containing block connects.
    pub fn new(chain: Chain) -> Self {
        let mempool = Mempool::with_cache(chain.sig_cache().clone());
        Daemon {
            chain,
            mempool,
            relay: RelayState::new(),
            busy_until: SimTime::ZERO,
            stats: DaemonStats::default(),
            last_connected: Vec::new(),
            last_disconnected: Vec::new(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// When the daemon can next start work.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Charges `cost` of daemon time starting no earlier than `now`;
    /// returns the completion instant.
    pub fn occupy(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + cost;
        self.busy_until = done;
        done
    }

    /// Processes an incoming transaction at `now`. Returns the completion
    /// time (when downstream reactions may fire) and the admission result.
    pub fn accept_transaction(
        &mut self,
        now: SimTime,
        tx: Transaction,
        costs: &CostModel,
    ) -> (SimTime, Result<u64, MempoolError>) {
        let done = self.occupy(now, costs.tx_validate);
        let height = self.chain.height();
        let result = self
            .mempool
            .insert(tx, self.chain.utxo(), height + 1, self.chain.params());
        if result.is_ok() {
            self.stats.txs_accepted += 1;
        }
        (done, result)
    }

    /// Processes an incoming block at `now`: chain acceptance, mempool
    /// cleanup, and — when the chain's stall model is enabled — the
    /// verification freeze. Returns the completion time and the action.
    pub fn accept_block(
        &mut self,
        now: SimTime,
        block: Block,
        rng: &mut SimRng,
    ) -> (SimTime, Result<BlockAction, ChainError>) {
        // The stall models the verification work itself, so it is charged
        // whether or not the block extends the chain.
        let stall = self
            .chain
            .params()
            .stall
            .clone()
            .sample(block.transactions.len(), rng);
        if stall > SimDuration::ZERO {
            self.stats.stalls += 1;
            self.stats.total_stall += stall;
        }
        let done = self.occupy(now, stall);
        let transactions = block.transactions.clone();
        let result = self.chain.add_block(block);
        match result {
            Ok(BlockAction::Extended(_)) => {
                self.stats.blocks_accepted += 1;
                self.mempool.remove_confirmed(&transactions);
                self.last_connected = transactions;
                self.last_disconnected = Vec::new();
            }
            Ok(BlockAction::Reorganized { .. }) => {
                self.stats.blocks_accepted += 1;
                let info = self.chain.take_last_reorg().unwrap_or_default();
                self.repair_mempool_after_reorg(&info);
                self.last_connected = info.connected_txs;
                self.last_disconnected = info.disconnected_txs;
            }
            _ => {}
        }
        (done, result)
    }

    /// Brings the mempool back in line with a reorganized chain — the
    /// discipline Bitcoin Core applies on every reorg:
    ///
    /// 1. evict pool entries the new branch confirmed (or that conflict
    ///    with what it confirmed),
    /// 2. resubmit transactions the old branch confirmed but the new one
    ///    did not (oldest first, so parents precede children), forgetting
    ///    their relay ids so a network re-broadcast can propagate,
    /// 3. sweep out anything left whose inputs the new UTXO view no
    ///    longer supplies.
    fn repair_mempool_after_reorg(&mut self, info: &bcwan_chain::ReorgInfo) {
        self.mempool.remove_confirmed(&info.connected_txs);
        let height = self.chain.height();
        for tx in &info.disconnected_txs {
            self.relay.forget(&tx.txid().0);
            let _ = self.mempool.insert(
                tx.clone(),
                self.chain.utxo(),
                height + 1,
                self.chain.params(),
            );
        }
        self.mempool
            .evict_invalid(self.chain.utxo(), height + 1, self.chain.params());
    }

    /// Non-coinbase transactions the last accepted block (or reorg
    /// branch) confirmed. Refreshed on every `accept_block` that changes
    /// the main chain; empty after rejected/side blocks.
    pub fn last_connected_txs(&self) -> &[Transaction] {
        &self.last_connected
    }

    /// Transactions the last accepted block disconnected (reorgs only).
    pub fn last_disconnected_txs(&self) -> &[Transaction] {
        &self.last_disconnected
    }

    /// Models a crash-restart: durable state (the chain) survives,
    /// volatile state (mempool contents, relay dedup filters, queue
    /// backlog) is lost. Returns how many pooled transactions vanished.
    pub fn crash_restart(&mut self, now: SimTime) -> usize {
        let lost = self.mempool.clear();
        self.relay = RelayState::new();
        self.busy_until = now;
        self.last_connected = Vec::new();
        self.last_disconnected = Vec::new();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_chain::{ChainParams, StallModel, TxOut, Wallet};
    use bcwan_script::Script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_daemon(stall: bool) -> (Daemon, Wallet) {
        let mut rng = StdRng::seed_from_u64(5);
        let wallet = Wallet::generate(&mut rng);
        let mut params = ChainParams::fast_test();
        if stall {
            params.stall = StallModel::multichain_observed();
        }
        let genesis = Chain::make_genesis(&params, &[(wallet.address(), 10_000)]);
        (Daemon::new(Chain::new(params, genesis)), wallet)
    }

    fn next_block(daemon: &Daemon, tag: &[u8]) -> Block {
        let height = daemon.chain.height() + 1;
        let cb = Transaction::coinbase(
            height,
            tag,
            vec![TxOut {
                value: daemon.chain.params().coinbase_reward,
                script_pubkey: Script::new(),
            }],
        );
        Block::mine(
            daemon.chain.tip(),
            height,
            daemon.chain.params().difficulty_bits,
            vec![cb],
        )
    }

    #[test]
    fn occupy_serializes_work() {
        let (mut daemon, _) = make_daemon(false);
        let t0 = SimTime::ZERO;
        let d1 = daemon.occupy(t0, SimDuration::from_secs(2));
        assert_eq!(d1.as_secs(), 2);
        // Work arriving during the busy period queues.
        let d2 = daemon.occupy(SimTime::from_micros(1), SimDuration::from_secs(1));
        assert_eq!(d2.as_secs(), 3);
        // Work arriving after idle starts immediately.
        let late = SimTime::from_micros(10_000_000);
        let d3 = daemon.occupy(late, SimDuration::from_secs(1));
        assert_eq!(d3.as_secs(), 11);
    }

    #[test]
    fn block_without_stall_completes_instantly() {
        let (mut daemon, _) = make_daemon(false);
        let mut rng = SimRng::seed_from_u64(1);
        let block = next_block(&daemon, b"a");
        let (done, action) = daemon.accept_block(SimTime::ZERO, block, &mut rng);
        assert_eq!(done, SimTime::ZERO);
        assert!(matches!(action, Ok(BlockAction::Extended(1))));
        assert_eq!(daemon.stats().stalls, 0);
        assert_eq!(daemon.stats().blocks_accepted, 1);
    }

    #[test]
    fn block_with_stall_freezes_daemon() {
        let (mut daemon, _) = make_daemon(true);
        let mut rng = SimRng::seed_from_u64(2);
        let block = next_block(&daemon, b"a");
        let (done, action) = daemon.accept_block(SimTime::ZERO, block, &mut rng);
        assert!(matches!(action, Ok(BlockAction::Extended(1))));
        // The stall base is ~5.5 s with log-normal jitter; any draw is
        // well over the no-stall cost, which is what this test pins.
        assert!(done.as_secs_f64() > 3.0, "stall should freeze, got {done}");
        assert_eq!(daemon.stats().stalls, 1);
        // A transaction arriving during the freeze waits it out.
        assert!(daemon.busy_until() > SimTime::ZERO);
    }

    #[test]
    fn transaction_flow_through_daemon() {
        let (mut daemon, wallet) = make_daemon(false);
        // Mature the genesis coin.
        let mut rng = SimRng::seed_from_u64(3);
        for i in 0..daemon.chain.params().coinbase_maturity {
            let block = next_block(&daemon, &[i as u8]);
            daemon
                .accept_block(SimTime::ZERO, block, &mut rng)
                .1
                .unwrap();
        }
        let coin = {
            let cb = &daemon.chain.block_at(0).unwrap().transactions[0];
            bcwan_chain::OutPoint {
                txid: cb.txid(),
                vout: 0,
            }
        };
        let tx = wallet.build_payment(
            vec![(coin, wallet.locking_script())],
            vec![TxOut {
                value: 9_990,
                script_pubkey: Script::new(),
            }],
            0,
        );
        let (_, result) = daemon.accept_transaction(SimTime::ZERO, tx, &CostModel::pi_class());
        assert_eq!(result.unwrap(), 10);
        assert_eq!(daemon.stats().txs_accepted, 1);
        assert_eq!(daemon.mempool.len(), 1);
    }

    #[test]
    fn stall_applies_even_for_side_blocks() {
        let (mut daemon, _) = make_daemon(true);
        let mut rng = SimRng::seed_from_u64(4);
        let b1 = next_block(&daemon, b"main");
        daemon.accept_block(SimTime::ZERO, b1, &mut rng).1.unwrap();
        // A competing block at height 1: still verified, still stalls.
        let stalls_before = daemon.stats().stalls;
        let alt = {
            let cb = Transaction::coinbase(
                1,
                b"alt",
                vec![TxOut {
                    value: daemon.chain.params().coinbase_reward,
                    script_pubkey: Script::new(),
                }],
            );
            Block::mine(
                daemon.chain.block_at(0).unwrap().hash(),
                1,
                daemon.chain.params().difficulty_bits,
                vec![cb],
            )
        };
        let (_, action) = daemon.accept_block(SimTime::ZERO, alt, &mut rng);
        assert!(matches!(action, Ok(BlockAction::SideChain)));
        assert_eq!(daemon.stats().stalls, stalls_before + 1);
        // But it does not count as accepted.
        assert_eq!(daemon.stats().blocks_accepted, 1);
    }
}
