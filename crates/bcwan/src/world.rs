//! The whole-network BcWAN simulation.
//!
//! Reconstructs the paper's §5.2 testbed: a master node that bootstraps
//! the chain and mines (the AWS EC2 instance), N actor hosts each running
//! a gateway + recipient + chain daemon (the PlanetLab nodes, mining
//! disabled), and a population of LoRa sensors that roam through foreign
//! gateways. Every exchange runs the full Fig. 3 protocol with real
//! cryptography and real transactions on the simulated chain.
//!
//! The measured latency matches the paper's definition: "from the first
//! message from the gateway to the decryption of the message by the
//! recipient".

use crate::app_server::{AppRouter, AppServer, AppServerId};
use crate::audit::{GatewayOutcome, SettlementAuditor};
use crate::costs::CostModel;
use crate::daemon::Daemon;
use crate::directory::{Directory, IpAnnouncement, NetAddr};
use crate::escrow::{self, Escrow};
use crate::exchange::{open_reading, seal_reading, verify_uplink, SealedUplink};
use crate::fsm::{ExchangeFsm, FsmConfig, FsmEvent, Phase};
use crate::provisioning::{DeviceCredentials, DeviceId, DeviceRegistry};
use crate::wire::{WanMessage, KIND_COUNT};
use bcwan_chain::{
    Block, BlockAction, Chain, ChainParams, OutPoint, Transaction, TxId, TxOut, Wallet,
};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPrivateKey, RsaPublicKey};
use bcwan_lora::airtime::time_on_air;
use bcwan_lora::collision::{workload_success_probability, LoadKey, OfferedLoads};
use bcwan_lora::frame::{LoraFrame, ADDRESS_LEN};
use bcwan_lora::params::RadioConfig;
use bcwan_p2p::{ChainMessage, Delivery, FaultModel, Network, NodeId, Topology};
use bcwan_script::Script;
use bcwan_sim::{
    run, Actor, ChaosEngine, ChaosPlan, CounterId, EventQueue, HistogramId, LatencyModel, Registry,
    Series, SimDuration, SimRng, SimTime, Snapshot, SnapshotSeries, Tracer,
};
use std::collections::{HashMap, HashSet};

/// Workload and environment configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Actor hosts (gateway+recipient), excluding the master. Paper: 5.
    pub actor_hosts: u32,
    /// Sensors per actor host. Paper: 30.
    pub sensors_per_host: u32,
    /// Radio duty-cycle fraction. Paper: 0.01.
    pub duty_cycle: f64,
    /// Radio configuration. Paper: SF7.
    pub radio: RadioConfig,
    /// Stop after this many completed exchanges. Paper: 2000.
    pub target_exchanges: usize,
    /// Per-sensor mean send interval as a multiple of the duty-cycle
    /// minimum (1.0 = sensors saturate their duty budget).
    pub load_factor: f64,
    /// WAN latency model between hosts.
    pub latency: LatencyModel,
    /// Overlay gossip degree. `None` (the default presets) keeps the
    /// paper's 6-host full mesh. `Some(k)` builds a ring lattice where
    /// every host links to its `k` nearest neighbours instead — the
    /// shape that lets 1 000+ host soaks run without `O(n²)` links,
    /// relying on re-flooding to propagate gossip. Catch-up sync then
    /// targets the best *linked* peer (the master when reachable).
    pub gossip_degree: Option<u32>,
    /// Chain consensus parameters (stall model decides Fig. 5 vs Fig. 6).
    pub chain_params: ChainParams,
    /// CPU cost table.
    pub costs: CostModel,
    /// Escrow reward per delivered message.
    pub reward: u64,
    /// Transaction fee budgeted per transaction.
    pub fee: u64,
    /// Escrow confirmations the gateway waits for before revealing the
    /// key. Paper's PoC: 0 (discussed as a double-spend risk in §6).
    pub confirmation_depth: u64,
    /// RSA modulus for ephemeral keys. Paper: 512.
    pub rsa_size: RsaKeySize,
    /// WAN fault injection (drops / duplicates).
    pub faults: FaultModel,
    /// Probability each LoRa frame is lost (collision/fade). Lost frames
    /// trigger node-side timeouts and retransmissions (up to
    /// [`MAX_RADIO_RETRIES`]).
    pub lora_loss_probability: f64,
    /// Derive an *additional* per-gateway loss probability from the
    /// analytic ALOHA contention model: each gateway's sensors offer
    /// load on their `(channel, SF)` key, and frames fail with
    /// `1 − e^(−2G)` on top of `lora_loss_probability`. Off by default
    /// so existing experiments keep their calibrated loss rates.
    pub lora_contention: bool,
    /// Experiment seed.
    pub seed: u64,
    /// Hard wall on simulated time (guards against stalls starving the
    /// run forever).
    pub max_sim_time: SimDuration,
    /// Record per-exchange phase spans through the sim-time [`Tracer`].
    /// Off by default: with tracing disabled every tracer call is a
    /// single branch, keeping `World::run` within its overhead budget.
    pub tracing: bool,
    /// Seeded fault schedule; [`ChaosPlan::none`] by default, so clean
    /// runs take a single `is_idle` branch per chaos query.
    pub chaos: ChaosPlan,
    /// Per-exchange deadline and retry policy.
    pub fsm: FsmConfig,
    /// Blocks until the escrow's CLTV refund branch opens. The paper's
    /// Listing 1 uses 100; chaos soaks shrink it so a withheld claim
    /// reaches the refund branch within a short run.
    pub refund_delta: u64,
    /// Extra escrow-sized genesis coins allocated per actor beyond the
    /// even `target_exchanges` split, absorbing workload skew. The
    /// classic presets keep 64; the fleet preset shrinks it to 4 —
    /// every genesis coin lands in all 1 000+ per-host UTXO clones, so
    /// headroom is the knob that decides whether a big fleet fits in
    /// memory.
    pub escrow_coin_headroom: u64,
    /// Root directory for persistent chain stores. `None` (all presets)
    /// keeps every chain in memory. `Some(dir)` gives each host an
    /// append-only block/undo/coins store under `dir/host-<i>`, and
    /// chaos restarts become **warm**: the restarted host reopens its
    /// chain from disk (`Chain::open_store`) instead of keeping the
    /// in-memory copy, then catches up headers-first. The caller owns
    /// the directory's lifetime.
    pub store_dir: Option<std::path::PathBuf>,
    /// Sample a full metrics [`Snapshot`] every interval of sim time
    /// into [`ExperimentResult::timeline`]. `None` (default) records
    /// nothing — end-of-run totals only.
    pub metrics_interval: Option<SimDuration>,
}

impl WorkloadConfig {
    /// The paper's Fig. 5 configuration: block verification disabled.
    pub fn paper_fig5() -> Self {
        WorkloadConfig {
            actor_hosts: 5,
            sensors_per_host: 30,
            duty_cycle: 0.01,
            radio: RadioConfig::paper_sf7(),
            target_exchanges: 2000,
            load_factor: 1.5,
            latency: LatencyModel::planetlab(),
            gossip_degree: None,
            chain_params: ChainParams::multichain_like(),
            costs: CostModel::pi_class(),
            reward: 10,
            fee: 1,
            confirmation_depth: 0,
            rsa_size: RsaKeySize::Rsa512,
            faults: FaultModel::none(),
            lora_loss_probability: 0.0,
            lora_contention: false,
            seed: 2018,
            max_sim_time: SimDuration::from_secs(24 * 3600),
            tracing: false,
            chaos: ChaosPlan::none(),
            fsm: FsmConfig::default(),
            refund_delta: escrow::REFUND_DELTA,
            escrow_coin_headroom: 64,
            store_dir: None,
            metrics_interval: None,
        }
    }

    /// The paper's Fig. 6 configuration: block verification stalls on.
    pub fn paper_fig6() -> Self {
        WorkloadConfig {
            chain_params: ChainParams::with_verification_stall(),
            ..Self::paper_fig5()
        }
    }

    /// A miniature configuration for tests: 2 hosts, few exchanges, fast
    /// chain, zero CPU costs.
    pub fn tiny(target_exchanges: usize, seed: u64) -> Self {
        WorkloadConfig {
            actor_hosts: 2,
            sensors_per_host: 2,
            duty_cycle: 0.01,
            radio: RadioConfig::paper_sf7(),
            target_exchanges,
            load_factor: 1.0,
            latency: LatencyModel::Constant(SimDuration::from_millis(20)),
            gossip_degree: None,
            chain_params: ChainParams::multichain_like(),
            costs: CostModel::zero(),
            reward: 10,
            fee: 1,
            confirmation_depth: 0,
            rsa_size: RsaKeySize::Rsa512,
            faults: FaultModel::none(),
            lora_loss_probability: 0.0,
            lora_contention: false,
            seed,
            max_sim_time: SimDuration::from_secs(24 * 3600),
            tracing: false,
            chaos: ChaosPlan::none(),
            fsm: FsmConfig::default(),
            refund_delta: escrow::REFUND_DELTA,
            escrow_coin_headroom: 64,
            store_dir: None,
            metrics_interval: None,
        }
    }

    /// A fleet-scale soak configuration: `actor_hosts` gateways on a
    /// degree-6 ring lattice (full mesh would be `O(n²)` links), one
    /// sensor each, zero CPU costs, and a fast chain — the shape the
    /// 1 000-host chaos soak and the `fleet_scale` bench run.
    pub fn fleet(actor_hosts: u32, target_exchanges: usize, seed: u64) -> Self {
        WorkloadConfig {
            actor_hosts,
            sensors_per_host: 1,
            gossip_degree: Some(6),
            chain_params: ChainParams::fast_test(),
            max_sim_time: SimDuration::from_secs(4 * 3600),
            escrow_coin_headroom: 4,
            ..Self::tiny(target_exchanges, seed)
        }
    }

    /// Enables phase tracing (builder style).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Installs a chaos plan (builder style).
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Gives every host a persistent chain store under `dir` (builder
    /// style; see [`WorkloadConfig::store_dir`]).
    pub fn with_store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Samples a metrics snapshot every `every` of sim time (builder
    /// style; see [`WorkloadConfig::metrics_interval`]).
    pub fn with_metrics_interval(mut self, every: SimDuration) -> Self {
        self.metrics_interval = Some(every);
        self
    }

    /// Adds analytic ALOHA contention loss on top of the flat rate
    /// (builder style; see [`WorkloadConfig::lora_contention`]).
    pub fn with_lora_contention(mut self) -> Self {
        self.lora_contention = true;
        self
    }
}

/// Result of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Completed exchanges.
    pub completed: usize,
    /// Exchanges that failed (signature rejects, lost escrows…).
    pub failed: usize,
    /// Latency samples in seconds, paper definition.
    pub latencies: Series,
    /// Simulated time consumed.
    pub sim_time: SimDuration,
    /// Blocks mined by the master.
    pub blocks_mined: u64,
    /// Blocks mined by a standby host while the master was crashed or
    /// demoted as a censorship suspect (miner failover; zero unless the
    /// chaos plan crashes host 0 or host 0 censors settlements).
    pub standby_blocks_mined: u64,
    /// Verification stalls across all actor daemons.
    pub stalls: u64,
    /// Total stalled time across all actor daemons.
    pub total_stall: SimDuration,
    /// Chain transactions confirmed on the master's main chain.
    pub confirmed_txs: usize,
    /// Readings delivered to application servers (must equal `completed`).
    pub app_readings: usize,
    /// Phase breakdown: ePk downlink + node crypto + data uplink
    /// (radio/node share of each latency sample).
    pub phase_radio: Series,
    /// Phase breakdown: gateway lookup + WAN forward + recipient verify.
    pub phase_forward: Series,
    /// Phase breakdown: escrow build/gossip + claim + decryption.
    pub phase_settlement: Series,
    /// Frozen metrics registry: `world.*`, `wan.*`, `daemon.*`,
    /// `chain.*`, `mempool.*`, and `net.*` rows (see EXPERIMENTS.md,
    /// "Reading the metrics").
    pub metrics: Snapshot,
    /// Tracer phase-duration series in seconds, sorted by phase name.
    /// Empty unless [`WorkloadConfig::tracing`] was set.
    pub phases: Vec<(String, Series)>,
    /// Escrows whose claim confirmed on the master's main chain.
    pub escrows_claimed: usize,
    /// Escrows whose CLTV refund confirmed instead.
    pub escrows_refunded: usize,
    /// Escrows still unsettled when the run ended (should be 0 unless
    /// the `max_sim_time` wall cut the run short).
    pub escrows_open: usize,
    /// End-of-run invariant violations (value conservation, one-of
    /// claim/refund settlement, FSM/chain agreement). Always 0 in a
    /// correct implementation, chaotic or not.
    pub invariant_violations: u64,
    /// Total value in the master's final UTXO set.
    pub utxo_total: u64,
    /// Order-independent FNV fingerprint of the master's final UTXO set;
    /// equal across same-seed reruns (determinism invariant).
    pub utxo_fingerprint: u64,
    /// Claim revenue confirmed to gateways the chaos plan marks honest.
    pub honest_revenue: u64,
    /// Claim revenue confirmed to gateways the chaos plan marks
    /// Byzantine (equivocators, withholders, censoring miners). Fair
    /// exchange predicts honest revenue strictly dominates.
    pub adversarial_revenue: u64,
    /// Per-gateway settled/refunded escrow counts from the auditor —
    /// the observed-behavior feed for the reputation baseline (A3).
    pub gateway_settlements: Vec<GatewayOutcome>,
    /// Chaos restarts that reopened a persistent store from disk.
    pub restarts_warm: u64,
    /// Chaos restarts that kept the in-memory chain (no store attached,
    /// or the store failed to reopen).
    pub restarts_cold: u64,
    /// Interval-sampled metrics frames; `None` unless
    /// [`WorkloadConfig::metrics_interval`] was set.
    pub timeline: Option<SnapshotSeries>,
}

/// Retransmission budget per radio frame before the exchange aborts.
pub const MAX_RADIO_RETRIES: u32 = 3;

/// Events driving the world.
#[derive(Debug)]
enum Event {
    /// A sensor wants to start an exchange.
    SensorFire { sensor: usize },
    /// The node's uplink request reached the gateway (after airtime).
    RequestArrived { exchange: usize },
    /// The gateway finished generating the ephemeral keypair and sends
    /// the key downlink.
    KeySent { exchange: usize },
    /// The ephemeral key reached the node.
    KeyArrived { exchange: usize },
    /// The node's sealed data frame reached the gateway.
    DataArrived { exchange: usize },
    /// Node-side timeout: no ephemeral key arrived; retry the request.
    RequestTimeout { exchange: usize, attempt: u32 },
    /// Node-side timeout: the data frame may have been lost; resend.
    DataTimeout { exchange: usize, attempt: u32 },
    /// A WAN message arrived at a host.
    Wan(Delivery<WanMessage>),
    /// The master assembles and broadcasts the next block.
    MineTick,
    /// A per-exchange FSM deadline expired. `seq` is the stamp the
    /// deadline was armed with; a mismatch means the exchange moved on
    /// and the event is stale.
    FsmDeadline { exchange: usize, seq: u32 },
    /// A crashed host comes back up (end of a chaos crash window).
    ChaosRestart { host: u32 },
}

/// State of one in-flight exchange.
struct ExchangeState {
    sensor: usize,
    gateway: u32, // actor index (1-based host id)
    home: u32,
    e_pk: Option<RsaPublicKey>,
    uplink: Option<SealedUplink>,
    /// When the gateway sent ePk — the paper's measurement start.
    measure_start: Option<SimTime>,
    /// When the data uplink finished arriving at the gateway.
    data_at_gateway: Option<SimTime>,
    /// Whether the gateway already accepted a data frame (dedup retries).
    data_accepted: bool,
    /// When the recipient finished verifying the delivery (step 8).
    delivered: Option<SimTime>,
    escrow: Option<Escrow>,
    /// The gateway's signed claim, kept for re-broadcast after a reorg
    /// orphans it (it stays valid as long as the escrow output exists).
    claim: Option<Transaction>,
    /// The recipient's signed CLTV refund, once built.
    refund: Option<Transaction>,
    /// First key-revealing claim txid the recipient saw spend this
    /// escrow; a second *distinct* one is an equivocation.
    seen_claim_txid: Option<TxId>,
    /// Whether this exchange's equivocation was already counted.
    equivocation_detected: bool,
    /// Consecutive settlement sweeps with our claim/refund pooled at
    /// the acting miner but unconfirmed (censorship suspicion).
    censor_sweeps: u32,
    /// The lifecycle machine driving deadlines and settlement.
    fsm: ExchangeFsm,
    done: bool,
}

struct Sensor {
    credentials: DeviceCredentials,
    home: u32,
    next_allowed: SimTime,
}

struct Host {
    wallet: Wallet,
    daemon: Daemon,
    directory: Directory,
    registry: DeviceRegistry,
    /// Coins reserved for in-flight escrows.
    reserved: HashSet<OutPoint>,
    /// Gateway sessions: serialized ePk → (exchange, eSk).
    sessions: HashMap<Vec<u8>, (usize, RsaPrivateKey)>,
    /// Escrows seen but awaiting confirmation depth: (exchange, escrow txid).
    awaiting_conf: Vec<(usize, TxId)>,
    /// Recipient side: escrow outpoint → exchange awaiting the key reveal.
    pending_open: HashMap<OutPoint, usize>,
    /// Recipient side: escrow outpoint → exchange, kept for the whole
    /// run so block connects/disconnects can be classified as claim,
    /// refund, or orphaning thereof in O(inputs).
    settle_watch: HashMap<OutPoint, usize>,
    /// Blocks whose parent has not arrived yet, keyed by parent hash.
    orphans: HashMap<bcwan_chain::BlockHash, Vec<Block>>,
    /// When this host last asked a peer for missing blocks
    /// (rate-limits orphan-triggered sync requests).
    last_sync_req: Option<SimTime>,
    /// Tip height when the last catch-up request was sent, to detect
    /// requests that made no progress.
    last_sync_height: u64,
    /// In-progress headers-first catch-up (§5.1): locate the fork with
    /// header batches, then stripe body batches across live peers. The
    /// machine's doubling look-behind replaces the old blind
    /// `sync_back` rewind of `GetBlocksFrom` requests.
    header_sync: Option<crate::sync::HeaderSync>,
    /// The recipient's application servers (final hop, Figs. 1–2).
    apps: AppRouter,
    /// Host CPU (node-facing work: keygen, verification) — the radio side
    /// of the Pi, serialized like the daemon.
    cpu_busy_until: SimTime,
    rng: SimRng,
}

impl Host {
    fn occupy_cpu(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = now.max(self.cpu_busy_until);
        let done = start + cost;
        self.cpu_busy_until = done;
        done
    }

    /// Selects and reserves a mature coin worth at least `amount`.
    fn reserve_coin(&mut self, amount: u64) -> Option<(OutPoint, Script, u64)> {
        let script = self.wallet.locking_script();
        let height = self.daemon.chain.height();
        let maturity = self.daemon.chain.params().coinbase_maturity;
        let mut choice: Option<(OutPoint, u64)> = None;
        for (op, entry) in self.daemon.chain.utxo().iter() {
            if entry.output.script_pubkey != script {
                continue;
            }
            if entry.coinbase && height < entry.height + maturity {
                continue;
            }
            if entry.output.value < amount || self.reserved.contains(op) {
                continue;
            }
            // Prefer the smallest sufficient coin, deterministically.
            match choice {
                Some((best_op, best_v)) if (entry.output.value, *op) >= (best_v, best_op) => {}
                _ => choice = Some((*op, entry.output.value)),
            }
        }
        let (op, value) = choice?;
        self.reserved.insert(op);
        Some((op, script, value))
    }
}

/// Hot-path metric handles, registered once at world construction.
struct Meters {
    frames_lost: CounterId,
    radio_retries: CounterId,
    wan_msgs: [CounterId; KIND_COUNT],
    wan_bytes: [CounterId; KIND_COUNT],
    latency: HistogramId,
    /// FSM events rejected as illegal transitions (0 in a correct run).
    illegal_transitions: CounterId,
    /// Gateway → recipient re-deliveries driven by the Sealed deadline.
    deliver_retries: CounterId,
    /// Escrow/claim transactions re-broadcast by the settlement watchdog.
    rebroadcasts: CounterId,
    /// CLTV refunds the recipient submitted.
    refunds_submitted: CounterId,
    /// Recipients that saw two distinct key-revealing claims spend the
    /// same escrow (one per victimized exchange).
    equivocations_detected: CounterId,
    /// Miners the settlement watchdog demoted on suspicion of claim
    /// censorship (one per suspecting exchange crossing the threshold).
    censorship_suspected: CounterId,
}

impl Meters {
    fn register(reg: &mut Registry) -> Self {
        let kind = |prefix: &str, k: &str| format!("wan.{prefix}.{k}_total");
        let kinds = ["tx", "block", "sync", "deliver"];
        Meters {
            frames_lost: reg.counter("world.lora_frames_lost_total"),
            radio_retries: reg.counter("world.lora_retries_total"),
            wan_msgs: kinds.map(|k| reg.counter(&kind("messages", k))),
            wan_bytes: kinds.map(|k| reg.counter(&kind("bytes", k))),
            latency: reg.histogram("world.exchange_latency_seconds"),
            illegal_transitions: reg.counter("fsm.illegal_transitions_total"),
            deliver_retries: reg.counter("fsm.deliver_retries_total"),
            rebroadcasts: reg.counter("fsm.rebroadcasts_total"),
            refunds_submitted: reg.counter("fsm.refunds_submitted_total"),
            equivocations_detected: reg.counter("byzantine.equivocation_detected_total"),
            censorship_suspected: reg.counter("byzantine.censorship_suspected_total"),
        }
    }
}

/// The simulation world.
pub struct World {
    cfg: WorkloadConfig,
    rng: SimRng,
    hosts: Vec<Host>, // index 0 = master, 1..=actor_hosts = actors
    sensors: Vec<Sensor>,
    exchanges: Vec<ExchangeState>,
    network: Network,
    latencies: Series,
    phase_radio: Series,
    phase_forward: Series,
    phase_settlement: Series,
    completed: usize,
    failed: usize,
    started: usize,
    blocks_mined: u64,
    standby_blocks_mined: u64,
    /// Mean inter-send interval per sensor.
    send_interval: SimDuration,
    /// Analytic per-gateway ALOHA success probability (1.0 when
    /// `lora_contention` is off).
    lora_success: f64,
    /// Per-gateway frame-loss / retry tallies (index = actor host − 1),
    /// folded into labeled `world.lora_*` rows at snapshot time.
    frames_lost_by_gw: Vec<u64>,
    retries_by_gw: Vec<u64>,
    registry: Registry,
    meters: Meters,
    tracer: Tracer,
    chaos: ChaosEngine,
    /// Always-on settlement auditor tracking the master's main chain
    /// block by block (value conservation, one settlement per escrow,
    /// honest/adversarial revenue split).
    auditor: SettlementAuditor,
    /// Hosts the chaos plan marks Byzantine (equivocators, withholders,
    /// censoring miners) — the auditor's revenue-split key.
    adversarial: HashSet<u32>,
    /// Miners the settlement watchdog demoted on censorship suspicion.
    /// Sticky for the rest of the run: mining duty and catch-up sync
    /// route around them while any other live host can serve.
    censor_suspects: HashSet<u32>,
    /// Chaos restarts that reopened a store from disk vs kept memory.
    restarts_warm: u64,
    restarts_cold: u64,
    timeline: Option<SnapshotSeries>,
}

impl World {
    /// Builds the world: genesis with per-actor allocations, pre-matured
    /// coinbase, provisioned sensors, announced directory entries.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let n_hosts = cfg.actor_hosts as usize + 1;

        // Wallets first so genesis can allocate to them.
        let wallets: Vec<Wallet> = (0..n_hosts).map(|_| Wallet::generate(&mut rng)).collect();

        // Genesis: a pile of escrow-sized coins per actor host, plus one
        // directory announcement per actor (seq 0) baked in.
        let coin_value = cfg.reward + 2 * cfg.fee;
        let coins_per_actor =
            (cfg.target_exchanges / cfg.actor_hosts as usize) as u64 + cfg.escrow_coin_headroom;
        let mut allocations = Vec::new();
        for wallet in wallets.iter().skip(1) {
            for _ in 0..coins_per_actor {
                allocations.push((wallet.address(), coin_value));
            }
        }
        let mut genesis_outputs: Vec<TxOut> = allocations
            .iter()
            .map(|(addr, value)| TxOut {
                value: *value,
                script_pubkey: bcwan_script::templates::p2pkh(&addr.0),
            })
            .collect();
        for (i, wallet) in wallets.iter().enumerate().skip(1) {
            let ann = IpAnnouncement {
                address: wallet.address(),
                endpoint: NetAddr {
                    ip: [10, 0, (i >> 8) as u8, i as u8],
                    port: 7000,
                },
                seq: 0,
            };
            genesis_outputs.push(ann.to_output());
        }
        let genesis_cb = Transaction::coinbase(0, b"bcwan-genesis", genesis_outputs);
        let mut genesis_chain = Chain::new(
            cfg.chain_params.clone(),
            Block::mine(
                bcwan_chain::BlockHash::GENESIS_PREV,
                0,
                cfg.chain_params.difficulty_bits,
                vec![genesis_cb],
            ),
        );
        // Pre-mature the genesis coins with empty warm-up blocks so the
        // experiment starts with spendable balances (the paper's
        // bootstrap phase).
        for h in 1..=cfg.chain_params.coinbase_maturity {
            let cb = Transaction::coinbase(
                h,
                b"warmup",
                vec![TxOut {
                    value: cfg.chain_params.coinbase_reward,
                    script_pubkey: wallets[0].locking_script(),
                }],
            );
            let block = Block::mine(
                genesis_chain.tip(),
                h,
                cfg.chain_params.difficulty_bits,
                vec![cb],
            );
            genesis_chain.add_block(block).expect("warm-up block valid");
        }

        // Hosts share the bootstrapped chain.
        let mut hosts: Vec<Host> = Vec::with_capacity(n_hosts);
        for (i, wallet) in wallets.into_iter().enumerate() {
            let chain = match &cfg.store_dir {
                Some(root) => clone_chain_with_store(
                    &cfg.chain_params,
                    &genesis_chain,
                    &root.join(format!("host-{i}")),
                ),
                None => clone_chain(&cfg.chain_params, &genesis_chain),
            };
            let directory = Directory::from_chain(&chain);
            hosts.push(Host {
                wallet,
                daemon: Daemon::new(chain),
                directory,
                registry: DeviceRegistry::new(),
                reserved: HashSet::new(),
                sessions: HashMap::new(),
                awaiting_conf: Vec::new(),
                pending_open: HashMap::new(),
                settle_watch: HashMap::new(),
                orphans: HashMap::new(),
                last_sync_req: None,
                last_sync_height: 0,
                header_sync: None,
                apps: {
                    let mut router = AppRouter::new();
                    router.register(AppServerId(0), AppServer::new("default"));
                    router.set_default(AppServerId(0));
                    router
                },
                cpu_busy_until: SimTime::ZERO,
                rng: rng.fork(i as u64 + 1),
            });
        }

        // Provision sensors: each belongs to one actor host.
        let mut sensors = Vec::new();
        for actor in 1..=cfg.actor_hosts {
            for s in 0..cfg.sensors_per_host {
                let device_id = DeviceId(actor * 10_000 + s);
                let home_addr = hosts[actor as usize].wallet.address();
                let creds = {
                    let host = &mut hosts[actor as usize];
                    let mut provision_rng = host.rng.fork(u64::from(device_id.0));
                    host.registry
                        .provision(&mut provision_rng, device_id, home_addr)
                };
                sensors.push(Sensor {
                    credentials: creds,
                    home: actor,
                    next_allowed: SimTime::ZERO,
                });
            }
        }

        // Workload pacing: the duty-cycle minimum interval for one full
        // exchange (request + data frames), scaled by load_factor.
        let request_air = time_on_air(&cfg.radio, 28);
        let data_air = time_on_air(&cfg.radio, 160);
        let per_exchange_air = request_air + data_air;
        let min_interval =
            SimDuration::from_secs_f64(per_exchange_air.as_secs_f64() / cfg.duty_cycle);
        let send_interval =
            SimDuration::from_secs_f64(min_interval.as_secs_f64() * cfg.load_factor);

        // Analytic contention: each gateway's sensors share one
        // `(channel, SF)` collision domain; frames at the paced send
        // rate offer G = sensors × rate × airtime on it.
        let lora_success = if cfg.lora_contention {
            let key = LoadKey::new(0, cfg.radio.spreading_factor);
            let mut loads = OfferedLoads::new();
            loads.add_population(
                key,
                &cfg.radio,
                160,
                cfg.sensors_per_host,
                1.0 / send_interval.as_secs_f64(),
            );
            workload_success_probability(&loads, key)
        } else {
            1.0
        };

        let topology = match cfg.gossip_degree {
            Some(degree) => ring_lattice(n_hosts as u32, degree),
            None => Topology::full_mesh(n_hosts as u32),
        };
        let network = Network::new(topology, cfg.latency.clone()).with_faults(cfg.faults.clone());

        let mut registry = Registry::new();
        let meters = Meters::register(&mut registry);
        let tracer = Tracer::new(cfg.tracing);
        let chaos = ChaosEngine::new(cfg.chaos.clone(), &mut registry);
        // Registering the auditor here (not at end-of-run) means every
        // snapshot and timeline frame carries explicit `invariant.*`
        // zeros, so a clean run *proves* it was audited.
        let auditor = SettlementAuditor::new(&mut registry);
        let adversarial: HashSet<u32> = cfg.chaos.adversarial_hosts().into_iter().collect();

        let timeline = cfg.metrics_interval.map(SnapshotSeries::new);

        World {
            rng,
            hosts,
            sensors,
            exchanges: Vec::new(),
            network,
            latencies: Series::new(),
            phase_radio: Series::new(),
            phase_forward: Series::new(),
            phase_settlement: Series::new(),
            completed: 0,
            failed: 0,
            started: 0,
            blocks_mined: 0,
            standby_blocks_mined: 0,
            send_interval,
            lora_success,
            frames_lost_by_gw: vec![0; cfg.actor_hosts as usize],
            retries_by_gw: vec![0; cfg.actor_hosts as usize],
            registry,
            meters,
            tracer,
            chaos,
            auditor,
            adversarial,
            censor_suspects: HashSet::new(),
            restarts_warm: 0,
            restarts_cold: 0,
            timeline,
            cfg,
        }
    }

    /// Runs the experiment to completion and reports.
    pub fn run(mut self) -> ExperimentResult {
        let mut queue: EventQueue<Event> = EventQueue::new();
        // Stagger sensor starts across one send interval.
        let n = self.sensors.len().max(1);
        for sensor in 0..self.sensors.len() {
            let offset = SimDuration::from_secs_f64(
                self.send_interval.as_secs_f64() * (sensor as f64 / n as f64),
            );
            queue.schedule_at(SimTime::ZERO + offset, Event::SensorFire { sensor });
        }
        // Mining heartbeat.
        let first_block = self.next_block_delay();
        queue.schedule_in(first_block, Event::MineTick);
        // Crash windows end in restarts.
        for (host, at) in self.chaos.restarts() {
            queue.schedule_at(at, Event::ChaosRestart { host });
        }

        let deadline = SimTime::ZERO + self.cfg.max_sim_time;
        run(&mut self, &mut queue, Some(deadline));

        let sim_time = queue.now().saturating_duration_since(SimTime::ZERO);
        let (stalls, total_stall) = self
            .hosts
            .iter()
            .skip(1)
            .map(|h| h.daemon.stats())
            .fold((0, SimDuration::ZERO), |(s, t), st| {
                (s + st.stalls, t + st.total_stall)
            });
        let confirmed_txs = self.hosts[0]
            .daemon
            .chain
            .iter_main()
            .map(|b| b.transactions.len().saturating_sub(1))
            .sum();
        let app_readings = self.hosts.iter().map(|h| h.apps.total_readings()).sum();

        // Fold the run lifecycle and every subsystem's counters into the
        // registry so one snapshot describes the whole experiment.
        let reg = &mut self.registry;
        reg.set_counter("world.exchanges_started_total", self.started as u64);
        reg.set_counter("world.exchanges_completed_total", self.completed as u64);
        reg.set_counter("world.exchanges_failed_total", self.failed as u64);
        reg.set_counter("world.blocks_mined_total", self.blocks_mined);
        reg.set_counter(
            "world.standby_blocks_mined_total",
            self.standby_blocks_mined,
        );
        reg.set_gauge("world.sim_time_seconds", sim_time.as_secs_f64());

        let daemon_totals = self
            .hosts
            .iter()
            .map(|h| h.daemon.stats())
            .fold((0u64, 0u64), |(blocks, txs), st| {
                (blocks + st.blocks_accepted, txs + st.txs_accepted)
            });
        reg.set_counter("daemon.blocks_accepted_total", daemon_totals.0);
        reg.set_counter("daemon.txs_accepted_total", daemon_totals.1);
        reg.set_counter("daemon.stalls_total", stalls);
        reg.set_gauge("daemon.stall_seconds_total", total_stall.as_secs_f64());

        let chain_stats = self.hosts[0].daemon.chain.stats();
        reg.set_counter("chain.blocks_connected_total", chain_stats.blocks_connected);
        reg.set_counter(
            "chain.blocks_disconnected_total",
            chain_stats.blocks_disconnected,
        );
        reg.set_counter("chain.reorgs_total", chain_stats.reorgs);
        reg.set_counter("chain.txs_connected_total", chain_stats.txs_connected);
        reg.set_counter("chain.utxos_created_total", chain_stats.utxos_created);
        reg.set_counter("chain.utxos_spent_total", chain_stats.utxos_spent);

        let pool = self.hosts.iter().map(|h| h.daemon.mempool.stats()).fold(
            bcwan_chain::MempoolStats::default(),
            |mut acc, s| {
                acc.accepted += s.accepted;
                acc.rejected_duplicate += s.rejected_duplicate;
                acc.rejected_conflict += s.rejected_conflict;
                acc.rejected_invalid += s.rejected_invalid;
                acc.evicted += s.evicted;
                acc
            },
        );
        reg.set_counter("mempool.accepted_total", pool.accepted);
        reg.set_counter("mempool.rejected_duplicate_total", pool.rejected_duplicate);
        reg.set_counter("mempool.rejected_conflict_total", pool.rejected_conflict);
        reg.set_counter("mempool.rejected_invalid_total", pool.rejected_invalid);
        reg.set_counter("mempool.evicted_total", pool.evicted);

        // Fleet-wide sigcache totals (mempool admission warms block
        // connect): ECDSA spends under validate.sigcache.*, escrow
        // OP_CHECKRSA512PAIR spends under validate.sigcache.rsa.*.
        let sig = self.hosts.iter().map(|h| h.daemon.chain.sig_cache()).fold(
            (0u64, 0u64, 0u64, 0u64),
            |acc, c| {
                (
                    acc.0 + c.hits(),
                    acc.1 + c.misses(),
                    acc.2 + c.rsa_hits(),
                    acc.3 + c.rsa_misses(),
                )
            },
        );
        reg.set_counter("validate.sigcache.hit", sig.0);
        reg.set_counter("validate.sigcache.miss", sig.1);
        reg.set_counter("validate.sigcache.rsa.hit", sig.2);
        reg.set_counter("validate.sigcache.rsa.miss", sig.3);

        let net = self.network.stats();
        reg.set_counter("net.sent_total", net.sent);
        reg.set_counter("net.delivered_total", net.delivered);
        reg.set_counter("net.dropped_fault_total", net.dropped_fault);
        reg.set_counter("net.dropped_partition_total", net.dropped_partition);
        reg.set_counter("net.duplicated_total", net.duplicated);

        // Persistent-store activity: flush what remains dirty, then fold
        // per-host summaries into `store.*` counters — fleet-wide
        // totals, plus per-host labeled rows for fleets small enough
        // that the extra rows stay readable.
        let mut store_rows: Vec<(usize, bcwan_chain::StoreSummary)> = Vec::new();
        for (i, h) in self.hosts.iter_mut().enumerate() {
            h.daemon.chain.flush();
            if let Some(s) = h.daemon.chain.store_summary() {
                store_rows.push((i, s));
            }
        }
        let reg = &mut self.registry;
        let label_hosts = !store_rows.is_empty() && store_rows.len() <= 32;
        let mut totals = bcwan_chain::StoreSummary::default();
        for (i, s) in &store_rows {
            totals.store.flush_total += s.store.flush_total;
            totals.store.reindex_total += s.store.reindex_total;
            totals.store.bytes_written += s.store.bytes_written;
            totals.store.blocks_appended += s.store.blocks_appended;
            totals.store.undo_appended += s.store.undo_appended;
            totals.store.compact_total += s.store.compact_total;
            totals.cache_hit += s.cache_hit;
            totals.cache_miss += s.cache_miss;
            if label_hosts {
                let set = [
                    ("store.flush_total", s.store.flush_total),
                    ("store.cache_hit_total", s.cache_hit),
                    ("store.cache_miss_total", s.cache_miss),
                    ("store.bytes_written_total", s.store.bytes_written),
                ];
                for (base, value) in set {
                    reg.set_counter(&bcwan_sim::labeled(base, "host", i), value);
                }
            }
        }
        if !store_rows.is_empty() {
            reg.set_counter("store.flush_total", totals.store.flush_total);
            reg.set_counter("store.reindex_total", totals.store.reindex_total);
            reg.set_counter("store.bytes_written_total", totals.store.bytes_written);
            reg.set_counter("store.blocks_appended_total", totals.store.blocks_appended);
            reg.set_counter("store.undo_appended_total", totals.store.undo_appended);
            reg.set_counter("store.compact_total", totals.store.compact_total);
            reg.set_counter("store.cache_hit_total", totals.cache_hit);
            reg.set_counter("store.cache_miss_total", totals.cache_miss);
        }
        reg.set_counter("world.restart.warm_total", self.restarts_warm);
        reg.set_counter("world.restart.cold_total", self.restarts_cold);

        // Per-gateway radio rows, same label scheme and ≤32-host gate as
        // the `store.*` fold above (host index 1..=actor_hosts; the
        // unlabeled totals were counted on the hot path).
        if !self.frames_lost_by_gw.is_empty() && self.frames_lost_by_gw.len() <= 32 {
            for (i, (&lost, &retries)) in self
                .frames_lost_by_gw
                .iter()
                .zip(&self.retries_by_gw)
                .enumerate()
            {
                let host = i + 1;
                reg.set_counter(
                    &bcwan_sim::labeled("world.lora_frames_lost_total", "host", host),
                    lost,
                );
                reg.set_counter(
                    &bcwan_sim::labeled("world.lora_retries_total", "host", host),
                    retries,
                );
            }
        }

        if self.tracer.is_enabled() {
            reg.set_counter("trace.unmatched_ends_total", self.tracer.unmatched_ends());
            reg.set_gauge("trace.open_spans", self.tracer.open_spans() as f64);
        }

        let phases: Vec<(String, Series)> = self
            .tracer
            .phase_names()
            .into_iter()
            .filter_map(|name| {
                self.tracer
                    .durations(name)
                    .map(|s| (name.to_string(), s.clone()))
            })
            .collect();

        // Final settlement census from the always-on auditor: one last
        // reconcile plus the FSM↔chain agreement check over every
        // exchange that published an escrow.
        let fsm_census: Vec<(usize, Phase, bool)> = self
            .exchanges
            .iter()
            .enumerate()
            .filter(|(_, ex)| ex.escrow.is_some())
            .map(|(i, ex)| (i, ex.fsm.phase(), ex.fsm.is_settled()))
            .collect();
        let audit =
            self.auditor
                .final_audit(&self.hosts[0].daemon.chain, &fsm_census, &mut self.registry);
        let (escrows_claimed, escrows_refunded, escrows_open, invariant_violations) =
            (audit.claimed, audit.refunded, audit.open, audit.violations);
        let (utxo_total, utxo_fingerprint) = {
            let utxo = self.hosts[0].daemon.chain.utxo();
            let total = utxo.iter().map(|(_, e)| e.output.value).sum();
            // Order-independent: XOR of per-entry FNV-1a hashes.
            let mut fp = 0u64;
            for (op, entry) in utxo.iter() {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                let mut eat = |bytes: &[u8]| {
                    for b in bytes {
                        h ^= u64::from(*b);
                        h = h.wrapping_mul(0x1_0000_01b3);
                    }
                };
                eat(&op.txid.0);
                eat(&op.vout.to_le_bytes());
                eat(&entry.output.value.to_le_bytes());
                fp ^= h;
            }
            (total, fp)
        };
        let reg = &mut self.registry;
        reg.set_counter("world.escrows_claimed_total", escrows_claimed as u64);
        reg.set_counter("world.escrows_refunded_total", escrows_refunded as u64);
        reg.set_counter("world.escrows_open_total", escrows_open as u64);
        // `chaos.invariant.violation_total` and the per-class
        // `invariant.*` rows were published by the auditor above.

        // Close the timeline with a frame that includes the end-of-run
        // folds above.
        if let Some(timeline) = self.timeline.as_mut() {
            timeline.maybe_sample(queue.now(), &self.registry);
        }

        ExperimentResult {
            completed: self.completed,
            failed: self.failed,
            latencies: self.latencies,
            sim_time,
            blocks_mined: self.blocks_mined,
            standby_blocks_mined: self.standby_blocks_mined,
            stalls,
            total_stall,
            confirmed_txs,
            app_readings,
            phase_radio: self.phase_radio,
            phase_forward: self.phase_forward,
            phase_settlement: self.phase_settlement,
            metrics: self.registry.snapshot(),
            phases,
            escrows_claimed,
            escrows_refunded,
            escrows_open,
            invariant_violations,
            utxo_total,
            utxo_fingerprint,
            honest_revenue: self.auditor.honest_revenue(),
            adversarial_revenue: self.auditor.adversarial_revenue(),
            gateway_settlements: self.auditor.gateway_outcomes(),
            restarts_warm: self.restarts_warm,
            restarts_cold: self.restarts_cold,
            timeline: self.timeline,
        }
    }

    /// Brings the always-on auditor in line with the master's chain.
    /// Called after every event that can move host 0's tip, so a
    /// violation is attributed to the block where it lands — visible in
    /// the very next timeline frame — instead of surfacing at end of
    /// run.
    fn audit_master(&mut self) {
        self.auditor
            .reconcile(&self.hosts[0].daemon.chain, &mut self.registry);
    }

    fn next_block_delay(&mut self) -> SimDuration {
        let mean = self.cfg.chain_params.target_block_interval.as_secs_f64();
        SimDuration::from_secs_f64(self.rng.exponential(mean))
    }

    fn airtime(&self, phy_len: usize) -> SimDuration {
        time_on_air(&self.cfg.radio, phy_len)
    }

    /// Floods a chain message from `from` to all its peers.
    fn flood(&mut self, queue: &mut EventQueue<Event>, at: SimTime, from: u32, msg: &WanMessage) {
        let deliveries = self.network.broadcast(&mut self.rng, NodeId(from), msg);
        // Chaos: block propagation can be artificially delayed.
        let extra = if self.chaos.is_idle() {
            SimDuration::ZERO
        } else if matches!(msg, WanMessage::Chain(ChainMessage::Block(_))) {
            let d = self.chaos.block_delay(at);
            if d > SimDuration::ZERO {
                self.registry.inc(self.chaos.meters().blocks_delayed);
            }
            d
        } else {
            SimDuration::ZERO
        };
        let mut copies = 0;
        for (delay, delivery) in deliveries {
            if self.chaos_drops(at, from, delivery.to.0) {
                continue;
            }
            copies += 1;
            queue.schedule_at(at + delay + extra, Event::Wan(delivery));
        }
        self.count_wan(msg, copies);
    }

    /// Broadcasts `msg` to the peers whose host id has the given parity
    /// only — the equivocator's tool for showing each half of the
    /// overlay a different claim. Draws the same per-delivery latency
    /// samples as a full [`Self::flood`], so the RNG stream (and with
    /// it same-seed determinism) is unaffected by the filtering.
    fn flood_parity(
        &mut self,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        from: u32,
        msg: &WanMessage,
        parity: u32,
    ) {
        let deliveries = self.network.broadcast(&mut self.rng, NodeId(from), msg);
        let mut copies = 0;
        for (delay, delivery) in deliveries {
            if delivery.to.0 % 2 != parity {
                continue;
            }
            if self.chaos_drops(at, from, delivery.to.0) {
                continue;
            }
            copies += 1;
            queue.schedule_at(at + delay, Event::Wan(delivery));
        }
        self.count_wan(msg, copies);
    }

    /// Whether chaos kills a message on the `from → to` overlay link at
    /// `at` (crashed endpoint, partition cut, or an armed connection
    /// kill). Counts the drop it attributes.
    fn chaos_drops(&mut self, at: SimTime, from: u32, to: u32) -> bool {
        if self.chaos.is_idle() {
            return false;
        }
        let meters = self.chaos.meters();
        if self.chaos.host_down(from, at) || self.chaos.host_down(to, at) {
            self.registry.inc(meters.crash_drops);
            return true;
        }
        if self.chaos.partitioned(from, to, at) {
            self.registry.inc(meters.partition_drops);
            return true;
        }
        if self.chaos.take_conn_kill(from, to, at) {
            self.registry.inc(meters.conn_kills);
            return true;
        }
        false
    }

    /// Accounts `copies` transmissions of `msg` by kind.
    fn count_wan(&mut self, msg: &WanMessage, copies: usize) {
        if copies == 0 {
            return;
        }
        let k = msg.kind_index();
        self.registry.add(self.meters.wan_msgs[k], copies as u64);
        self.registry
            .add(self.meters.wan_bytes[k], (msg.wire_size() * copies) as u64);
    }

    /// Unicasts a WAN message over a direct TCP-like dial (the paper's
    /// gateway→recipient leg, and sync requests/responses): the sender
    /// knows the peer's IP from the on-chain directory, so the static
    /// gossip graph does not constrain it. Lossy faults do not apply;
    /// chaos-level cuts do.
    fn unicast(
        &mut self,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        from: u32,
        to: u32,
        msg: WanMessage,
    ) {
        if let Some((delay, delivery)) =
            self.network
                .dial(&mut self.rng, NodeId(from), NodeId(to), msg)
        {
            if self.chaos_drops(at, from, to) {
                return;
            }
            self.count_wan(&delivery.msg, 1);
            queue.schedule_at(at + delay, Event::Wan(delivery));
        }
    }

    /// Samples LoRa frame loss on `gateway`'s radio (chaos bursts
    /// override the base rate when stronger; analytic ALOHA contention
    /// compounds with it when enabled). Always consumes exactly one
    /// draw, so enabling contention does not shift the RNG stream.
    fn frame_lost(&mut self, now: SimTime, gateway: u32) -> bool {
        let base = self.cfg.lora_loss_probability;
        let boost = if self.chaos.is_idle() {
            0.0
        } else {
            self.chaos.lora_loss_boost(now)
        };
        let flat = base.max(boost);
        let p = if self.lora_success < 1.0 {
            1.0 - (1.0 - flat) * self.lora_success
        } else {
            flat
        };
        let lost = self.rng.chance(p);
        if lost {
            self.registry.inc(self.meters.frames_lost);
            if let Some(slot) = self
                .frames_lost_by_gw
                .get_mut((gateway as usize).wrapping_sub(1))
            {
                *slot += 1;
            }
            if boost > base {
                self.registry.inc(self.chaos.meters().lora_drops);
            }
        }
        lost
    }

    /// Puts the request frame on the air and arms the retry timer.
    fn send_request(
        &mut self,
        now: SimTime,
        exchange: usize,
        attempt: u32,
        queue: &mut EventQueue<Event>,
    ) {
        let request_air = self.airtime(28);
        let gateway = self.exchanges[exchange].gateway;
        self.tracer
            .span_start("request_uplink", exchange as u64, now);
        if !self.frame_lost(now, gateway) {
            queue.schedule_at(now + request_air, Event::RequestArrived { exchange });
        }
        // Retry timer: downlink should be back within a couple of seconds.
        queue.schedule_at(
            now + request_air + SimDuration::from_secs(3),
            Event::RequestTimeout { exchange, attempt },
        );
    }

    /// Puts the data frame on the air and arms the retry timer.
    fn send_data(
        &mut self,
        now: SimTime,
        exchange: usize,
        attempt: u32,
        queue: &mut EventQueue<Event>,
    ) {
        let data_air = self.airtime(160);
        let gateway = self.exchanges[exchange].gateway;
        if !self.frame_lost(now, gateway) {
            queue.schedule_at(now + data_air, Event::DataArrived { exchange });
        }
        queue.schedule_at(
            now + data_air + SimDuration::from_secs(8),
            Event::DataTimeout { exchange, attempt },
        );
    }

    fn handle_request_timeout(
        &mut self,
        now: SimTime,
        exchange: usize,
        attempt: u32,
        queue: &mut EventQueue<Event>,
    ) {
        let ex = &self.exchanges[exchange];
        // `uplink` is set the instant the node receives the key (it seals
        // immediately), so it is the node-side receipt indicator; `e_pk`
        // alone only proves the *gateway* generated a key.
        if ex.done || ex.uplink.is_some() {
            return;
        }
        if attempt >= MAX_RADIO_RETRIES {
            self.abort_exchange(now, exchange);
            return;
        }
        self.registry.inc(self.meters.radio_retries);
        self.count_gateway_retry(exchange);
        self.send_request(now, exchange, attempt + 1, queue);
    }

    fn handle_data_timeout(
        &mut self,
        now: SimTime,
        exchange: usize,
        attempt: u32,
        queue: &mut EventQueue<Event>,
    ) {
        let ex = &self.exchanges[exchange];
        // The gateway got the frame (or the exchange resolved): done.
        if ex.done || ex.data_accepted {
            return;
        }
        if attempt >= MAX_RADIO_RETRIES {
            self.abort_exchange(now, exchange);
            return;
        }
        self.registry.inc(self.meters.radio_retries);
        self.count_gateway_retry(exchange);
        self.send_data(now, exchange, attempt + 1, queue);
    }

    /// Tallies a radio retransmission against the exchange's gateway for
    /// the per-gateway labeled `world.lora_retries_total` rows.
    fn count_gateway_retry(&mut self, exchange: usize) {
        let gateway = self.exchanges[exchange].gateway;
        if let Some(slot) = self
            .retries_by_gw
            .get_mut((gateway as usize).wrapping_sub(1))
        {
            *slot += 1;
        }
    }

    /// Gives up on an exchange before money moved: `Abort` is only legal
    /// outside `Escrowed`, so an illegal call is counted, not obeyed.
    fn abort_exchange(&mut self, now: SimTime, exchange: usize) {
        let ex = &mut self.exchanges[exchange];
        if ex.done {
            return;
        }
        if ex.fsm.apply(FsmEvent::Abort, now).is_err() {
            self.registry.inc(self.meters.illegal_transitions);
            return;
        }
        ex.done = true;
        self.failed += 1;
    }

    /// Arms (or re-arms) the deadline for an exchange's current phase.
    fn arm_deadline(&mut self, exchange: usize, queue: &mut EventQueue<Event>) {
        if let Some((at, seq)) = self.exchanges[exchange].fsm.deadline(&self.cfg.fsm) {
            queue.schedule_at(at, Event::FsmDeadline { exchange, seq });
        }
    }

    fn handle_sensor_fire(
        &mut self,
        now: SimTime,
        sensor_idx: usize,
        queue: &mut EventQueue<Event>,
    ) {
        // Keep initiating until the target number of *completions* is in;
        // allow some overshoot in flight.
        if self.started < self.cfg.target_exchanges {
            let sensor = &self.sensors[sensor_idx];
            if now >= sensor.next_allowed {
                // Pick a foreign gateway uniformly.
                let home = sensor.home;
                let gateway = loop {
                    let g = self.rng.index(self.cfg.actor_hosts as usize) as u32 + 1;
                    if g != home || self.cfg.actor_hosts == 1 {
                        break g;
                    }
                };
                let exchange = self.exchanges.len();
                self.exchanges.push(ExchangeState {
                    sensor: sensor_idx,
                    gateway,
                    home,
                    e_pk: None,
                    uplink: None,
                    measure_start: None,
                    data_at_gateway: None,
                    data_accepted: false,
                    delivered: None,
                    escrow: None,
                    claim: None,
                    refund: None,
                    seen_claim_txid: None,
                    equivocation_detected: false,
                    censor_sweeps: 0,
                    fsm: ExchangeFsm::new(now),
                    done: false,
                });
                self.started += 1;
                // Duty bookkeeping for the whole exchange.
                let air = self.airtime(28) + self.airtime(160);
                let off = SimDuration::from_secs_f64(air.as_secs_f64() / self.cfg.duty_cycle);
                self.sensors[sensor_idx].next_allowed = now + off;
                // Request frame flies (with loss + retry semantics).
                self.send_request(now, exchange, 0, queue);
            }
            // Schedule the next initiation.
            let gap =
                SimDuration::from_secs_f64(self.rng.exponential(self.send_interval.as_secs_f64()));
            queue.schedule_in(gap, Event::SensorFire { sensor: sensor_idx });
        }
    }

    fn handle_request_arrived(
        &mut self,
        now: SimTime,
        exchange: usize,
        queue: &mut EventQueue<Event>,
    ) {
        // A crashed gateway's radio does not answer; the node's timeout
        // retries until the gateway restarts or the budget runs out.
        if !self.chaos.is_idle() {
            let gateway = self.exchanges[exchange].gateway;
            if self.chaos.host_down(gateway, now) {
                self.registry.inc(self.chaos.meters().crash_drops);
                return;
            }
        }
        self.tracer.span_end("request_uplink", exchange as u64, now);
        // A retransmitted request for an existing session resends the
        // same ephemeral key instead of generating a new one.
        if self.exchanges[exchange].e_pk.is_some() {
            queue.schedule_at(now, Event::KeySent { exchange });
            return;
        }
        self.tracer.span_start("keygen", exchange as u64, now);
        let gateway = self.exchanges[exchange].gateway;
        let rsa_size = self.cfg.rsa_size;
        let keygen_cost = self.cfg.costs.rsa_keygen;
        let host = &mut self.hosts[gateway as usize];
        // Real keygen on the gateway CPU.
        let (e_pk, e_sk) = generate_keypair(&mut host.rng, rsa_size);
        host.sessions.insert(e_pk.to_bytes(), (exchange, e_sk));
        self.exchanges[exchange].e_pk = Some(e_pk);
        let done = host.occupy_cpu(now, keygen_cost);
        queue.schedule_at(done, Event::KeySent { exchange });
    }

    fn handle_key_sent(&mut self, now: SimTime, exchange: usize, queue: &mut EventQueue<Event>) {
        // Paper's measurement starts here: the gateway's first message.
        // Retransmissions keep the original start.
        if self.exchanges[exchange].measure_start.is_none() {
            self.exchanges[exchange].measure_start = Some(now);
            self.tracer.span_end("keygen", exchange as u64, now);
        }
        self.tracer.span_start("key_downlink", exchange as u64, now);
        let e_pk = self.exchanges[exchange]
            .e_pk
            .as_ref()
            .expect("keygen done")
            .clone();
        let frame = LoraFrame::DownlinkEphemeralKey {
            device_id: self.sensors[self.exchanges[exchange].sensor]
                .credentials
                .device_id
                .0,
            public_key: e_pk.to_bytes(),
        };
        let air = self.airtime(frame.phy_len());
        let gateway = self.exchanges[exchange].gateway;
        if !self.frame_lost(now, gateway) {
            queue.schedule_at(now + air, Event::KeyArrived { exchange });
        }
        // A lost downlink surfaces as the node's request timeout, which
        // resends the request; the gateway reuses the same session.
    }

    fn handle_key_arrived(&mut self, now: SimTime, exchange: usize, queue: &mut EventQueue<Event>) {
        let ex = &self.exchanges[exchange];
        if ex.uplink.is_some() {
            return; // duplicate key downlink (retry path); data already sent
        }
        self.tracer.span_end("key_downlink", exchange as u64, now);
        self.tracer.span_start("data_uplink", exchange as u64, now);
        let ex = &self.exchanges[exchange];
        let sensor = &self.sensors[ex.sensor];
        let e_pk = ex.e_pk.as_ref().expect("key present");
        // Node CPU: AES + RSA wrap + sign (real crypto).
        let mut reading = Vec::with_capacity(15);
        reading.extend_from_slice(b"t=");
        reading.extend_from_slice(&(exchange as u32).to_le_bytes());
        reading.extend_from_slice(b";h=40%");
        let mut node_rng = self.rng.fork(0x5e_000 + exchange as u64);
        let sealed = seal_reading(&mut node_rng, &sensor.credentials, e_pk, &reading)
            .expect("reading fits RSA block");
        let node_cost = self.cfg.costs.node_encrypt + self.cfg.costs.node_sign;
        self.exchanges[exchange].uplink = Some(sealed.clone());
        let frame = LoraFrame::DataUplink {
            device_id: sensor.credentials.device_id.0,
            recipient: recipient_bytes(&sensor.credentials.recipient.0),
            em: sealed.em,
            sig: sealed.sig,
        };
        let _ = frame.phy_len();
        self.send_data(now + node_cost, exchange, 0, queue);
    }

    fn handle_data_arrived(
        &mut self,
        now: SimTime,
        exchange: usize,
        queue: &mut EventQueue<Event>,
    ) {
        if self.exchanges[exchange].data_accepted || self.exchanges[exchange].done {
            return; // duplicate of a retransmitted frame
        }
        if !self.chaos.is_idle() {
            let gateway = self.exchanges[exchange].gateway;
            if self.chaos.host_down(gateway, now) {
                self.registry.inc(self.chaos.meters().crash_drops);
                return; // frame unheard; the node's data timeout resends
            }
        }
        self.exchanges[exchange].data_accepted = true;
        self.exchanges[exchange].data_at_gateway = Some(now);
        self.tracer.span_end("data_uplink", exchange as u64, now);
        self.tracer
            .span_start("gateway_forward", exchange as u64, now);
        let (gateway, home) = {
            let ex = &self.exchanges[exchange];
            (ex.gateway, ex.home)
        };
        // The gateway now holds the sealed uplink: the FSM enters
        // `Sealed` and the bounded re-delivery deadline starts ticking.
        let _ = self.exchanges[exchange].fsm.apply(FsmEvent::Sealed, now);
        let lookup_cost = self.cfg.costs.directory_lookup;
        // Directory lookup (§4.3) — the home address must be known.
        let home_addr = self.hosts[home as usize].wallet.address();
        let endpoint = self.hosts[gateway as usize].directory.lookup(&home_addr);
        if endpoint.is_none() {
            self.abort_exchange(now, exchange);
            return;
        }
        let done = self.hosts[gateway as usize].occupy_cpu(now, lookup_cost);
        let ex = &self.exchanges[exchange];
        let msg = WanMessage::Deliver {
            device_id: self.sensors[ex.sensor].credentials.device_id,
            e_pk_bytes: ex.e_pk.as_ref().expect("present").to_bytes(),
            uplink: ex.uplink.clone().expect("present"),
        };
        self.unicast(queue, done, gateway, home, msg);
        self.arm_deadline(exchange, queue);
    }

    fn handle_wan(
        &mut self,
        now: SimTime,
        delivery: Delivery<WanMessage>,
        queue: &mut EventQueue<Event>,
    ) {
        let to = delivery.to.0;
        // A message can be in flight when its receiver crashes; it is
        // lost on arrival, not retroactively.
        if !self.chaos.is_idle() && self.chaos.host_down(to, now) {
            self.registry.inc(self.chaos.meters().crash_drops);
            return;
        }
        match delivery.msg {
            WanMessage::Deliver {
                device_id,
                e_pk_bytes,
                uplink,
            } => self.handle_deliver(now, to, device_id, e_pk_bytes, uplink, queue),
            WanMessage::Chain(ChainMessage::Tx(tx)) => self.handle_chain_tx(now, to, tx, queue),
            WanMessage::Chain(ChainMessage::Block(block)) => {
                self.handle_chain_block(now, to, block, queue)
            }
            WanMessage::Chain(ChainMessage::GetBlocksFrom(height)) => {
                self.serve_blocks_from(now, to, delivery.from.0, height, queue)
            }
            WanMessage::Chain(ChainMessage::GetHeadersFrom(height)) => {
                self.serve_headers_from(now, to, delivery.from.0, height, queue)
            }
            WanMessage::Chain(ChainMessage::Headers {
                start_height,
                headers,
            }) => self.handle_headers(now, to, start_height, headers, queue),
            WanMessage::Chain(_) => { /* GetBlock/TipAnnounce unused here */ }
        }
    }

    /// Serves a peer's catch-up request with a bounded batch of
    /// main-chain blocks (the §5.1 start-up sync, reused after crash
    /// restarts and orphan gaps).
    fn serve_blocks_from(
        &mut self,
        now: SimTime,
        to: u32,
        requester: u32,
        height: u64,
        queue: &mut EventQueue<Event>,
    ) {
        let blocks = crate::sync::serve_blocks_from_bounded(
            &self.hosts[to as usize].daemon.chain,
            height,
            crate::fleet::SYNC_BATCH,
        );
        for block in blocks {
            self.unicast(
                queue,
                now,
                to,
                requester,
                WanMessage::Chain(ChainMessage::Block(block)),
            );
        }
    }

    /// Serves a headers-first locate request with one bounded batch of
    /// main-chain headers (88 bytes each, no bodies).
    fn serve_headers_from(
        &mut self,
        now: SimTime,
        to: u32,
        requester: u32,
        height: u64,
        queue: &mut EventQueue<Event>,
    ) {
        let headers = crate::sync::serve_headers_from(
            &self.hosts[to as usize].daemon.chain,
            height,
            crate::sync::HEADER_BATCH,
        );
        self.unicast(
            queue,
            now,
            to,
            requester,
            WanMessage::Chain(ChainMessage::Headers {
                start_height: height,
                headers,
            }),
        );
    }

    /// Feeds a received header batch into the host's catch-up machine
    /// and transmits whatever it asks for next (a further locate probe,
    /// or the first striped body batches).
    fn handle_headers(
        &mut self,
        now: SimTime,
        to: u32,
        start_height: u64,
        headers: Vec<bcwan_chain::BlockHeader>,
        queue: &mut EventQueue<Event>,
    ) {
        let host = &mut self.hosts[to as usize];
        let Some(hs) = host.header_sync.as_mut() else {
            return; // stale batch from a finished or restarted sync
        };
        let reqs = hs.on_headers(&host.daemon.chain, start_height, &headers);
        if !hs.is_active() {
            host.header_sync = None;
        }
        self.send_sync_requests(now, to, reqs, queue);
    }

    /// Transmits a batch of requests produced by a host's
    /// [`HeaderSync`](crate::sync::HeaderSync) machine.
    fn send_sync_requests(
        &mut self,
        now: SimTime,
        to: u32,
        reqs: Vec<crate::sync::SyncRequest>,
        queue: &mut EventQueue<Event>,
    ) {
        for req in reqs {
            let (peer, msg) = match req {
                crate::sync::SyncRequest::Headers { peer, from } => {
                    (peer.0, ChainMessage::GetHeadersFrom(from))
                }
                crate::sync::SyncRequest::Bodies { peer, from } => {
                    (peer.0, ChainMessage::GetBlocksFrom(from))
                }
            };
            self.unicast(queue, now, to, peer, WanMessage::Chain(msg));
        }
    }

    /// Step 7→9: recipient verifies and escrows payment.
    fn handle_deliver(
        &mut self,
        now: SimTime,
        to: u32,
        device_id: DeviceId,
        e_pk_bytes: Vec<u8>,
        uplink: SealedUplink,
        queue: &mut EventQueue<Event>,
    ) {
        let Ok(e_pk) = RsaPublicKey::from_bytes(&e_pk_bytes) else {
            self.failed += 1;
            return;
        };
        // Which exchange is this? (Simulation-level bookkeeping only; the
        // protocol itself keys on device + ephemeral key.) Looked up
        // regardless of progress so a re-delivered copy is recognized.
        let Some(exchange) = self.exchanges.iter().position(|ex| {
            ex.home == to
                && ex
                    .e_pk
                    .as_ref()
                    .is_some_and(|pk| pk.to_bytes() == e_pk_bytes)
        }) else {
            self.failed += 1;
            return;
        };
        // Idempotent re-delivery: once this exchange has an escrow (or is
        // over), a duplicate Deliver must not double-escrow or double-count.
        if self.exchanges[exchange].done || self.exchanges[exchange].escrow.is_some() {
            return;
        }
        let verify_cost = self.cfg.costs.verify_signature;
        let tx_build = self.cfg.costs.tx_build;
        let reward = self.cfg.reward;
        let fee = self.cfg.fee;

        let host = &mut self.hosts[to as usize];
        let Some(record) = host.registry.get(&device_id) else {
            self.abort_exchange(now, exchange);
            return;
        };
        // Step 8: authenticity.
        if !verify_uplink(record, &e_pk, &uplink) {
            self.abort_exchange(now, exchange);
            return;
        }
        let verified_at = host.occupy_cpu(now, verify_cost);
        self.exchanges[exchange].delivered = Some(verified_at);
        let _ = self.exchanges[exchange]
            .fsm
            .apply(FsmEvent::Delivered, verified_at);
        self.tracer
            .span_end("gateway_forward", exchange as u64, verified_at);

        // Step 9: escrow. Select a coin and build the transaction via the
        // daemon ("create, sign, send").
        let host = &mut self.hosts[to as usize];
        let Some(coin) = host.reserve_coin(reward + fee) else {
            self.abort_exchange(verified_at, exchange);
            return;
        };
        let gateway_addr = self.hosts[self.exchanges[exchange].gateway as usize]
            .wallet
            .address();
        let host = &mut self.hosts[to as usize];
        let current_height = host.daemon.chain.height();
        let escrow_obj = escrow::build_escrow_with_delta(
            &host.wallet,
            &[coin],
            &e_pk,
            &gateway_addr,
            reward,
            fee,
            current_height,
            self.cfg.refund_delta,
        );
        let built_at = host.daemon.occupy(verified_at, tx_build);
        host.pending_open.insert(escrow_obj.outpoint(), exchange);
        host.settle_watch.insert(escrow_obj.outpoint(), exchange);
        // Admit into own mempool and flood.
        let (admitted_at, result) =
            host.daemon
                .accept_transaction(built_at, escrow_obj.tx.clone(), &self.cfg.costs);
        if result.is_err() {
            host.pending_open.remove(&escrow_obj.outpoint());
            host.settle_watch.remove(&escrow_obj.outpoint());
            self.abort_exchange(admitted_at, exchange);
            return;
        }
        host.daemon.relay.mark_seen(escrow_obj.tx.txid().0);
        self.tracer.record_span(
            "escrow_publish",
            admitted_at.saturating_duration_since(verified_at),
        );
        self.tracer
            .span_start("confirmation_wait", exchange as u64, admitted_at);
        self.exchanges[exchange].uplink = Some(uplink);
        self.exchanges[exchange].escrow = Some(escrow_obj.clone());
        // The auditor watches the escrow from birth: any main-chain
        // spend of it is now classified and revenue-attributed.
        let gateway = self.exchanges[exchange].gateway;
        self.auditor.watch(
            escrow_obj.outpoint(),
            exchange,
            gateway,
            self.adversarial.contains(&gateway),
        );
        let _ = self.exchanges[exchange]
            .fsm
            .apply(FsmEvent::EscrowPublished, admitted_at);
        let msg = WanMessage::Chain(ChainMessage::Tx(escrow_obj.tx));
        self.flood(queue, admitted_at, to, &msg);
        // The settlement watchdog takes over from here.
        self.arm_deadline(exchange, queue);
    }

    /// Chain transaction gossip: mempool admission + protocol reactions.
    fn handle_chain_tx(
        &mut self,
        now: SimTime,
        to: u32,
        tx: Transaction,
        queue: &mut EventQueue<Event>,
    ) {
        let txid = tx.txid();
        let first = self.hosts[to as usize].daemon.relay.mark_seen(txid.0);
        if !first {
            // Seen before — but a reorg may have evicted it from the pool
            // since, in which case a re-broadcast must be re-admitted,
            // not dropped. Cheap check first (the common duplicate sits
            // in the pool); the chain scan only runs for the rare
            // gossip-after-confirmation stragglers.
            let host = &self.hosts[to as usize];
            if host.daemon.mempool.contains(&txid)
                || host.daemon.chain.find_transaction(&txid).is_some()
            {
                return; // genuine duplicate
            }
        }
        // Byzantine detection runs *before* mempool admission: a rival
        // claim is exactly the transaction the pool rejects as a
        // conflict, and the recipient must still see it to know its
        // gateway equivocated.
        self.detect_equivocation(to, &tx, queue);
        let (done, result) = {
            let host = &mut self.hosts[to as usize];
            host.daemon
                .accept_transaction(now, tx.clone(), &self.cfg.costs)
        };
        if result.is_err() {
            return; // double spends, orphans: dropped, not relayed
        }
        // Re-flood.
        let msg = WanMessage::Chain(ChainMessage::Tx(tx.clone()));
        self.flood(queue, done, to, &msg);

        // Gateway reaction: is this an escrow paying one of my sessions?
        self.gateway_check_escrow(done, to, &tx, queue);
        // Recipient reaction: is this a claim revealing a key I await?
        self.recipient_check_claim(done, to, &tx);
    }

    /// The recipient's equivocation detector: a second *distinct*
    /// key-revealing claim spending a watched escrow means the gateway
    /// double-claimed. Only the recipient owns `settle_watch` entries,
    /// so each equivocation is counted exactly once — and the reaction
    /// is to keep the settlement watchdog hot, so the exchange still
    /// terminates through whichever claim confirms or, failing both,
    /// the CLTV refund.
    fn detect_equivocation(&mut self, to: u32, tx: &Transaction, queue: &mut EventQueue<Event>) {
        if self.hosts[to as usize].settle_watch.is_empty() {
            return;
        }
        let txid = tx.txid();
        for input in &tx.inputs {
            let Some(&exchange) = self.hosts[to as usize].settle_watch.get(&input.prevout) else {
                continue;
            };
            if escrow::extract_key_from_claim(tx, &input.prevout).is_none() {
                continue; // refund-branch spend: a claim/refund race is legal
            }
            let newly_detected = {
                let ex = &mut self.exchanges[exchange];
                match ex.seen_claim_txid {
                    None => {
                        ex.seen_claim_txid = Some(txid);
                        false
                    }
                    Some(seen) if seen != txid && !ex.equivocation_detected => {
                        ex.equivocation_detected = true;
                        true
                    }
                    Some(_) => false,
                }
            };
            if newly_detected {
                self.registry.inc(self.meters.equivocations_detected);
                if self.exchanges[exchange].fsm.phase() == Phase::Escrowed {
                    self.arm_deadline(exchange, queue);
                }
            }
        }
    }

    fn gateway_check_escrow(
        &mut self,
        now: SimTime,
        to: u32,
        tx: &Transaction,
        queue: &mut EventQueue<Event>,
    ) {
        let session_keys: Vec<Vec<u8>> = self.hosts[to as usize].sessions.keys().cloned().collect();
        for key_bytes in session_keys {
            let Ok(e_pk) = RsaPublicKey::from_bytes(&key_bytes) else {
                continue;
            };
            if let Some((vout, value)) = escrow::find_escrow_for_key(tx, &e_pk) {
                let (exchange, _) = self.hosts[to as usize].sessions[&key_bytes];
                if self.cfg.confirmation_depth == 0 {
                    self.gateway_claim(now, to, key_bytes, tx.txid(), vout, value, queue);
                } else {
                    let host = &mut self.hosts[to as usize];
                    let entry = (exchange, tx.txid());
                    // The same escrow can be offered twice: once as
                    // gossip, once from the block that confirms it.
                    if !host.awaiting_conf.contains(&entry) {
                        host.awaiting_conf.push(entry);
                    }
                }
            }
        }
    }

    /// Step 10: the gateway publishes the claim, revealing eSk.
    #[allow(clippy::too_many_arguments)] // one call site; args are the escrow tuple
    fn gateway_claim(
        &mut self,
        now: SimTime,
        to: u32,
        e_pk_bytes: Vec<u8>,
        escrow_txid: TxId,
        vout: u32,
        value: u64,
        queue: &mut EventQueue<Event>,
    ) {
        // A misbehaving gateway sits on the claim; the session survives,
        // so it could still claim after the window — and the recipient's
        // refund driver races it through the CLTV branch.
        if !self.chaos.is_idle() && self.chaos.withhold_claim(to, now) {
            self.registry.inc(self.chaos.meters().claims_withheld);
            return;
        }
        let tx_build = self.cfg.costs.tx_build;
        let fee = self.cfg.fee;
        let host = &mut self.hosts[to as usize];
        let Some((exchange, e_sk)) = host.sessions.remove(&e_pk_bytes) else {
            return;
        };
        self.tracer
            .span_end("confirmation_wait", exchange as u64, now);
        self.tracer
            .span_start("claim_and_decrypt", exchange as u64, now);
        let escrow_script = {
            let ex = &self.exchanges[exchange];
            match &ex.escrow {
                Some(e) => e.script.clone(),
                None => {
                    // Gateway reconstructs the script from the tx itself.
                    let host = &self.hosts[to as usize];
                    match host
                        .daemon
                        .mempool
                        .get(&escrow_txid)
                        .map(|t| t.outputs[vout as usize].script_pubkey.clone())
                    {
                        Some(s) => s,
                        None => return,
                    }
                }
            }
        };
        let outpoint = OutPoint {
            txid: escrow_txid,
            vout,
        };
        let host = &mut self.hosts[to as usize];
        let claim = escrow::build_claim(&host.wallet, outpoint, &escrow_script, value, &e_sk, fee);
        let built = host.daemon.occupy(now, tx_build);
        // Keep the signed claim: it stays valid as long as the escrow
        // output exists, so the settlement watchdog can re-broadcast it
        // after a crash or a reorg that orphans it.
        self.exchanges[exchange].claim = Some(claim.clone());

        // Byzantine equivocation: the gateway signs a *second* claim
        // against the same escrow (higher fee → different output value →
        // different txid) and shows each half of the overlay a different
        // one. Both claims necessarily reveal the true eSk — the script's
        // OP_CHECKRSA512PAIR forces it — so the reading is never stolen;
        // the attack creates settlement ambiguity, which first-seen
        // mempools, the recipient's detector and the auditor resolve.
        let equivocate =
            !self.chaos.is_idle() && self.chaos.equivocate_claim(to, now) && fee + 1 < value;
        if equivocate {
            let rival = {
                let host = &self.hosts[to as usize];
                escrow::build_claim(
                    &host.wallet,
                    outpoint,
                    &escrow_script,
                    value,
                    &e_sk,
                    fee + 1,
                )
            };
            let host = &mut self.hosts[to as usize];
            let (admitted, result) =
                host.daemon
                    .accept_transaction(built, claim.clone(), &self.cfg.costs);
            if result.is_err() {
                return;
            }
            host.daemon.relay.mark_seen(claim.txid().0);
            host.daemon.relay.mark_seen(rival.txid().0);
            // Counted only once both conflicting claims are live: the
            // session is gone, so this path runs once per exchange.
            self.registry.inc(self.chaos.meters().equivocations);
            self.flood_parity(
                queue,
                admitted,
                to,
                &WanMessage::Chain(ChainMessage::Tx(claim)),
                0,
            );
            self.flood_parity(
                queue,
                admitted,
                to,
                &WanMessage::Chain(ChainMessage::Tx(rival)),
                1,
            );
            return;
        }

        let host = &mut self.hosts[to as usize];
        let (admitted, result) =
            host.daemon
                .accept_transaction(built, claim.clone(), &self.cfg.costs);
        if result.is_err() {
            // The escrow is not in this host's view (yet): not fatal —
            // the watchdog re-admits once the chain catches up.
            return;
        }
        host.daemon.relay.mark_seen(claim.txid().0);
        let msg = WanMessage::Chain(ChainMessage::Tx(claim));
        self.flood(queue, admitted, to, &msg);
    }

    /// The recipient spots the claim spending its escrow and decrypts.
    fn recipient_check_claim(&mut self, now: SimTime, to: u32, tx: &Transaction) {
        let outpoints: Vec<OutPoint> = self.hosts[to as usize]
            .pending_open
            .keys()
            .copied()
            .collect();
        for op in outpoints {
            let Some(e_sk) = escrow::extract_key_from_claim(tx, &op) else {
                continue;
            };
            let open_cost = self.cfg.costs.open_reading;
            let host = &mut self.hosts[to as usize];
            let exchange = host.pending_open.remove(&op).expect("present");
            let done = host.occupy_cpu(now, open_cost);
            let ex = &mut self.exchanges[exchange];
            if ex.done {
                continue;
            }
            let device_id = self.sensors[ex.sensor].credentials.device_id;
            let host = &self.hosts[to as usize];
            let record = host.registry.get(&device_id).expect("provisioned");
            let uplink = ex.uplink.as_ref().expect("delivered");
            match open_reading(record, &e_sk, &uplink.em) {
                Ok(reading) => {
                    ex.done = true;
                    self.completed += 1;
                    self.tracer
                        .span_end("claim_and_decrypt", exchange as u64, done);
                    // Final hop (Figs. 1–2): hand the plaintext to the
                    // customer's application server.
                    self.hosts[to as usize]
                        .apps
                        .dispatch(device_id, reading, done)
                        .expect("default app server registered");
                    if let Some(start) = ex.measure_start {
                        let total = done.saturating_duration_since(start).as_secs_f64();
                        self.latencies.record(total);
                        self.registry.observe(self.meters.latency, total);
                        if let (Some(at_gw), Some(delivered)) = (ex.data_at_gateway, ex.delivered) {
                            self.phase_radio
                                .record(at_gw.saturating_duration_since(start).as_secs_f64());
                            self.phase_forward
                                .record(delivered.saturating_duration_since(at_gw).as_secs_f64());
                            self.phase_settlement
                                .record(done.saturating_duration_since(delivered).as_secs_f64());
                        }
                    }
                }
                Err(_) => {
                    ex.done = true;
                    self.failed += 1;
                }
            }
        }
    }

    fn handle_chain_block(
        &mut self,
        now: SimTime,
        to: u32,
        block: Block,
        queue: &mut EventQueue<Event>,
    ) {
        {
            let host = &mut self.hosts[to as usize];
            if !host.daemon.relay.mark_seen(block.hash().0) {
                return;
            }
        }
        // Blocks can arrive out of order over the WAN; buffer orphans and
        // connect them once their parent lands (the paper's nodes
        // re-sync; this is the event-driven equivalent).
        let mut pending = vec![block];
        let mut at = now;
        while let Some(block) = pending.pop() {
            let hash = block.hash();
            let (done, action) = {
                let host = &mut self.hosts[to as usize];
                let mut rng = host.rng.fork(0xb10c ^ u64::from(to));
                host.daemon.accept_block(at, block.clone(), &mut rng)
            };
            match action {
                Err(bcwan_chain::ChainError::Orphan(parent)) => {
                    self.hosts[to as usize]
                        .orphans
                        .entry(parent)
                        .or_default()
                        .push(block);
                    // A parent gap means this host missed gossip (crash,
                    // partition, kill): ask the master to fill it in,
                    // rate-limited so a burst of orphans asks once.
                    self.request_sync(done, to, queue);
                    continue;
                }
                Err(_) => continue,
                Ok(_) => {}
            }
            at = done;
            // Settlement bookkeeping: claims/refunds this block confirmed
            // or (after a reorg) disconnected, seen from the recipient.
            self.apply_settlements(done, to, queue);
            // Absorb any directory announcements.
            for tx in &block.transactions {
                for ann in IpAnnouncement::all_from_transaction(tx) {
                    self.hosts[to as usize].directory.absorb(ann);
                }
            }
            // Re-flood the block.
            let msg = WanMessage::Chain(ChainMessage::Block(block));
            self.flood(queue, done, to, &msg);

            // Confirmation-depth gateways: check their waiting escrows.
            self.gateway_check_confirmations(done, to, queue);

            // Any orphans waiting on this block connect next.
            if let Some(children) = self.hosts[to as usize].orphans.remove(&hash) {
                pending.extend(children);
            }
        }
        // Keep an in-progress headers-first sync's body window full as
        // batches land and retire.
        let host = &mut self.hosts[to as usize];
        if let Some(hs) = host.header_sync.as_mut() {
            let reqs = hs.on_progress(&host.daemon.chain);
            if !hs.is_active() {
                host.header_sync = None;
            }
            self.send_sync_requests(at, to, reqs, queue);
        }
        if to == 0 {
            self.audit_master();
        }
    }

    fn gateway_check_confirmations(
        &mut self,
        now: SimTime,
        to: u32,
        queue: &mut EventQueue<Event>,
    ) {
        if self.cfg.confirmation_depth == 0 {
            return;
        }
        let waiting = std::mem::take(&mut self.hosts[to as usize].awaiting_conf);
        let mut still_waiting = Vec::new();
        for (exchange, escrow_txid) in waiting {
            let depth_ok = {
                let host = &self.hosts[to as usize];
                match host.daemon.chain.find_transaction(&escrow_txid) {
                    Some((height, _)) => {
                        host.daemon.chain.height() - height + 1 >= self.cfg.confirmation_depth
                    }
                    None => false,
                }
            };
            if depth_ok {
                let ex = &self.exchanges[exchange];
                let Some(e_pk) = ex.e_pk.as_ref() else {
                    continue;
                };
                let e_pk_bytes = e_pk.to_bytes();
                let (vout, value) = {
                    let host = &self.hosts[to as usize];
                    let Some((_, tx)) = host.daemon.chain.find_transaction(&escrow_txid) else {
                        continue;
                    };
                    match escrow::find_escrow_for_key(tx, e_pk) {
                        Some(v) => v,
                        None => continue,
                    }
                };
                self.gateway_claim(now, to, e_pk_bytes, escrow_txid, vout, value, queue);
            } else {
                still_waiting.push((exchange, escrow_txid));
            }
        }
        self.hosts[to as usize].awaiting_conf.extend(still_waiting);
    }

    /// Rate-limited headers-first catch-up toward the best sync source —
    /// the master (host 0) in the common case; after a miner failover
    /// the restarted master itself catches up from the tallest standby.
    ///
    /// The source answers the locate probes (`GetHeadersFrom`); once the
    /// fork is found, body batches are striped across up to three live
    /// peers that are ahead of us. A machine still making progress keeps
    /// running with a raised target; a stalled one (lost responses, a
    /// source that reorganized mid-sync) is restarted — re-locating the
    /// fork costs a few 22 KiB header batches, not block bodies.
    fn request_sync(&mut self, now: SimTime, to: u32, queue: &mut EventQueue<Event>) {
        let Some(source) = self.sync_source(now, to) else {
            return; // nobody live is ahead of us
        };
        let sync_cooldown = SimDuration::from_secs(5);
        if let Some(last) = self.hosts[to as usize].last_sync_req {
            if now < last + sync_cooldown {
                return;
            }
        }
        let target = self.hosts[source as usize].daemon.chain.height();
        let peers = self.sync_peers(now, to, source);
        let host = &mut self.hosts[to as usize];
        let height = host.daemon.chain.height();
        let progressed = host.last_sync_req.is_some() && height > host.last_sync_height;
        host.last_sync_height = height;
        host.last_sync_req = Some(now);
        let reqs = match host.header_sync.as_mut() {
            Some(hs) if progressed && hs.is_active() => {
                hs.on_tip(target);
                let reqs = hs.on_progress(&host.daemon.chain);
                if !hs.is_active() {
                    host.header_sync = None;
                }
                reqs
            }
            _ => {
                let (hs, reqs) = crate::sync::HeaderSync::start(peers, height, target);
                host.header_sync = Some(hs);
                reqs
            }
        };
        self.send_sync_requests(now, to, reqs, queue);
    }

    /// Peers to stripe body batches across: the locate source first,
    /// then the tallest other live hosts strictly ahead of us, at most
    /// three total.
    fn sync_peers(&self, now: SimTime, to: u32, primary: u32) -> Vec<NodeId> {
        let my_height = self.hosts[to as usize].daemon.chain.height();
        let mut peers = vec![NodeId(primary)];
        let mut candidates: Vec<(u64, u32)> = self
            .hosts
            .iter()
            .enumerate()
            .filter_map(|(i, h)| {
                let id = i as u32;
                if id == to || id == primary {
                    return None;
                }
                if !self.chaos.is_idle() && self.chaos.host_down(id, now) {
                    return None;
                }
                let height = h.daemon.chain.height();
                (height > my_height).then_some((height, id))
            })
            .collect();
        // Tallest first; ties broken by id for determinism.
        candidates.sort_by(|a, b| b.cmp(a));
        peers.extend(candidates.into_iter().take(2).map(|(_, id)| NodeId(id)));
        peers
    }

    /// The best catch-up peer for `to`: the master (host 0) while it is
    /// up *and a gossip neighbour* — the §5.1 topology — otherwise the
    /// tallest linked live host, which spreads sync load across a
    /// sparse ring-lattice overlay and is exactly what a restarted
    /// master needs after a standby mined past it. When no linked live
    /// peer is ahead (deep partition, tiny neighbourhood), falls back
    /// to the tallest live host anywhere — sync dials directly by IP,
    /// so linkage is a preference, not a constraint. Censorship
    /// suspects rank below every clean source (a censor serving our
    /// catch-up could keep feeding us its claim-free branch), but still
    /// beat syncing from nobody. `None` when nobody live is strictly
    /// ahead.
    fn sync_source(&self, now: SimTime, to: u32) -> Option<u32> {
        let topology = self.network.topology();
        let master_up = self.chaos.is_idle() || !self.chaos.host_down(0, now);
        if to != 0
            && master_up
            && !self.censor_suspects.contains(&0)
            && topology.linked(NodeId(to), NodeId(0))
        {
            return Some(0);
        }
        let my_height = self.hosts[to as usize].daemon.chain.height();
        // (linked, any) × (clean, all): clean sources win, linked breaks
        // the tie among them — preserving the old order exactly when no
        // host is suspected.
        let mut best_linked: Option<(u64, u32)> = None;
        let mut best_any: Option<(u64, u32)> = None;
        let mut best_linked_clean: Option<(u64, u32)> = None;
        let mut best_any_clean: Option<(u64, u32)> = None;
        for (i, h) in self.hosts.iter().enumerate() {
            let id = i as u32;
            if id == to || self.chaos.host_down(id, now) {
                continue;
            }
            let height = h.daemon.chain.height();
            let clean = !self.censor_suspects.contains(&id);
            let linked = topology.linked(NodeId(to), NodeId(id));
            if best_any.is_none_or(|(best_h, _)| height > best_h) {
                best_any = Some((height, id));
            }
            if linked && best_linked.is_none_or(|(best_h, _)| height > best_h) {
                best_linked = Some((height, id));
            }
            if clean {
                if best_any_clean.is_none_or(|(best_h, _)| height > best_h) {
                    best_any_clean = Some((height, id));
                }
                if linked && best_linked_clean.is_none_or(|(best_h, _)| height > best_h) {
                    best_linked_clean = Some((height, id));
                }
            }
        }
        let ahead = |o: Option<(u64, u32)>| o.filter(|&(h, _)| h > my_height);
        ahead(best_linked_clean)
            .or(ahead(best_any_clean))
            .or(ahead(best_linked))
            .or(ahead(best_any))
            .map(|(_, id)| id)
    }

    /// Drives FSM settlement from host `to`'s last main-chain change:
    /// disconnected transactions orphan claims/refunds back to
    /// `Escrowed`; connected transactions confirm them. Only the
    /// recipient (who owns `settle_watch` entries) transitions machines,
    /// so each event is applied exactly once. Connected transactions are
    /// also re-offered to the gateway/recipient reaction paths — after a
    /// crash the tx gossip is gone, and the block is the only copy.
    fn apply_settlements(&mut self, now: SimTime, to: u32, queue: &mut EventQueue<Event>) {
        let connected = self.hosts[to as usize].daemon.last_connected_txs().to_vec();
        let disconnected = self.hosts[to as usize]
            .daemon
            .last_disconnected_txs()
            .to_vec();
        if !self.hosts[to as usize].settle_watch.is_empty() {
            // Disconnects first: a reorg that moves a claim between
            // branches must pass through Escrowed, not skip a state.
            for tx in &disconnected {
                for input in &tx.inputs {
                    let Some(&exchange) = self.hosts[to as usize].settle_watch.get(&input.prevout)
                    else {
                        continue;
                    };
                    let is_claim = escrow::extract_key_from_claim(tx, &input.prevout).is_some();
                    let event = if is_claim {
                        FsmEvent::ClaimOrphaned
                    } else {
                        FsmEvent::RefundOrphaned
                    };
                    if self.exchanges[exchange].fsm.apply(event, now).is_ok() {
                        // Money is back at stake: restart the watchdog,
                        // which re-broadcasts the stored claim/refund.
                        self.arm_deadline(exchange, queue);
                    } else {
                        self.registry.inc(self.meters.illegal_transitions);
                    }
                }
            }
            for tx in &connected {
                for input in &tx.inputs {
                    let Some(&exchange) = self.hosts[to as usize].settle_watch.get(&input.prevout)
                    else {
                        continue;
                    };
                    let is_claim = escrow::extract_key_from_claim(tx, &input.prevout).is_some();
                    let event = if is_claim {
                        FsmEvent::ClaimConfirmed
                    } else {
                        FsmEvent::RefundConfirmed
                    };
                    match self.exchanges[exchange].fsm.apply(event, now) {
                        Ok(_) if !is_claim => {
                            // The CLTV branch closed the exchange: the
                            // gateway never revealed the key, so the
                            // reading is lost but the coins came home.
                            let ex = &mut self.exchanges[exchange];
                            if !ex.done {
                                ex.done = true;
                                self.failed += 1;
                            }
                        }
                        Ok(_) => {}
                        Err(_) => self.registry.inc(self.meters.illegal_transitions),
                    }
                }
            }
        }
        // Crash recovery: the block may be the first (and only) place
        // this host sees an escrow or claim it missed as gossip — and
        // the first place a rival claim surfaces, if the equivocator
        // only ever showed it to the other side of the overlay.
        for tx in &connected {
            self.detect_equivocation(to, tx, queue);
            self.gateway_check_escrow(now, to, tx, queue);
            self.recipient_check_claim(now, to, tx);
        }
    }

    /// A crashed host restarts. Volatile state (mempool, relay filters,
    /// in-flight syncs) is always gone. What happens to the chain
    /// depends on durability:
    ///
    /// - **Warm** (a store is attached): the in-memory chain is
    ///   discarded — a killed process keeps nothing — and the host
    ///   reopens whatever its store committed before the crash
    ///   (`Chain::open_store`), rolling the coins snapshot forward from
    ///   undo/block records without re-validating scripts. It then
    ///   catches up to the fleet tip headers-first.
    /// - **Cold** (memory-only, or the store failed to reopen): the old
    ///   model — the in-memory chain survives by fiat.
    fn handle_chaos_restart(&mut self, now: SimTime, host: u32, queue: &mut EventQueue<Event>) {
        let mut warm = false;
        if let Some(root) = self.cfg.store_dir.clone() {
            let h = &mut self.hosts[host as usize];
            if h.daemon.chain.has_store() {
                let dir = root.join(format!("host-{host}"));
                match Chain::open_store(
                    self.cfg.chain_params.clone(),
                    &dir,
                    bcwan_chain::StoreConfig::default(),
                ) {
                    Ok(opened) => {
                        h.daemon.chain = opened.chain;
                        h.directory = Directory::from_chain(&h.daemon.chain);
                        warm = true;
                    }
                    Err(_) => {
                        // Unopenable store: fall back to the in-memory
                        // chain rather than losing the host entirely.
                    }
                }
            }
        }
        if warm {
            self.restarts_warm += 1;
        } else {
            self.restarts_cold += 1;
        }
        let h = &mut self.hosts[host as usize];
        h.daemon.crash_restart(now);
        h.orphans.clear();
        h.cpu_busy_until = now;
        h.last_sync_req = None;
        h.header_sync = None;
        if host == 0 {
            // A warm restart can reopen a shorter durable chain: the
            // auditor must roll its ledger back with it.
            self.audit_master();
        }
        self.request_sync(now, host, queue);
    }

    /// A per-exchange deadline fired. Stale stamps (the exchange moved
    /// on or retried since) are dropped; live ones drive the phase's
    /// recovery action.
    fn handle_fsm_deadline(
        &mut self,
        now: SimTime,
        exchange: usize,
        seq: u32,
        queue: &mut EventQueue<Event>,
    ) {
        let ex = &self.exchanges[exchange];
        if ex.done && ex.fsm.is_settled() {
            return;
        }
        if ex.fsm.seq() != seq {
            return; // stale: the phase or retry count moved on
        }
        match ex.fsm.phase() {
            Phase::Sealed => {
                // The recipient never escrowed: re-deliver (idempotent on
                // the receiving side), bounded by the retry budget.
                if ex.fsm.retries_exhausted(&self.cfg.fsm) {
                    self.abort_exchange(now, exchange);
                    return;
                }
                self.exchanges[exchange].fsm.note_retry(now);
                self.registry.inc(self.meters.deliver_retries);
                self.redeliver(now, exchange, queue);
                self.arm_deadline(exchange, queue);
            }
            Phase::Escrowed => {
                // Unbounded settlement watchdog: money is on the table.
                self.exchanges[exchange].fsm.note_retry(now);
                self.settle_sweep(now, exchange, queue);
                self.arm_deadline(exchange, queue);
            }
            _ => {}
        }
    }

    /// Re-sends the gateway → recipient Deliver for a `Sealed` exchange.
    fn redeliver(&mut self, now: SimTime, exchange: usize, queue: &mut EventQueue<Event>) {
        let ex = &self.exchanges[exchange];
        let (gateway, home) = (ex.gateway, ex.home);
        let (Some(e_pk), Some(uplink)) = (ex.e_pk.as_ref(), ex.uplink.clone()) else {
            return;
        };
        let msg = WanMessage::Deliver {
            device_id: self.sensors[ex.sensor].credentials.device_id,
            e_pk_bytes: e_pk.to_bytes(),
            uplink,
        };
        self.unicast(queue, now, gateway, home, msg);
    }

    /// The `Escrowed` watchdog: re-broadcasts whatever piece of the
    /// settlement went missing, and opens the CLTV refund branch when
    /// the claim never lands.
    fn settle_sweep(&mut self, now: SimTime, exchange: usize, queue: &mut EventQueue<Event>) {
        let Some(escrow_obj) = self.exchanges[exchange].escrow.clone() else {
            return;
        };
        let (gateway, home) = {
            let ex = &self.exchanges[exchange];
            (ex.gateway, ex.home)
        };
        let escrow_txid = escrow_obj.tx.txid();

        // (a) Recipient: the miner lost track of the escrow (reorg +
        // eviction, a crash wiped a pool, or the gossip never got
        // through) — re-admit and re-flood it. Visibility is judged at
        // the *acting miner*: a transaction only the home pool knows
        // about will never be mined.
        if !self.chaos.host_down(home, now) && self.miner_lacks(now, &escrow_txid) {
            self.rebroadcast(now, home, escrow_obj.tx.clone(), queue);
        }

        // (b) Gateway: a built claim that is in neither pool nor chain is
        // re-broadcast — the reorg-orphaned-claim recovery path. A
        // session that never claimed (its host was down when the escrow
        // gossiped) claims now from the confirmed copy.
        let withholding = !self.chaos.is_idle() && self.chaos.withhold_claim(gateway, now);
        if !self.chaos.host_down(gateway, now) && !withholding {
            if let Some(claim) = self.exchanges[exchange].claim.clone() {
                if self.miner_lacks(now, &claim.txid()) {
                    self.rebroadcast(now, gateway, claim, queue);
                }
            } else if let Some(e_pk) = self.exchanges[exchange].e_pk.clone() {
                let e_pk_bytes = e_pk.to_bytes();
                let host = &self.hosts[gateway as usize];
                if host.sessions.contains_key(&e_pk_bytes) {
                    let found = host
                        .daemon
                        .mempool
                        .get(&escrow_txid)
                        .map(|tx| escrow::find_escrow_for_key(tx, &e_pk))
                        .or_else(|| {
                            host.daemon
                                .chain
                                .find_transaction(&escrow_txid)
                                .map(|(_, tx)| escrow::find_escrow_for_key(tx, &e_pk))
                        })
                        .flatten();
                    if let Some((vout, value)) = found {
                        self.gateway_claim(
                            now,
                            gateway,
                            e_pk_bytes,
                            escrow_txid,
                            vout,
                            value,
                            queue,
                        );
                    }
                }
            }
        }

        // (c) Recipient refund driver: past the refund height with no
        // claim settled, spend the escrow back through the CLTV branch.
        // A pooled claim wins locally (first-seen conflict policy); the
        // refund only floods where the claim never showed.
        if !self.chaos.host_down(home, now) {
            let height = self.hosts[home as usize].daemon.chain.height();
            if height >= escrow_obj.refund_height {
                let refund = match self.exchanges[exchange].refund.clone() {
                    Some(r) => r,
                    None => {
                        let r = escrow::build_refund(
                            &self.hosts[home as usize].wallet,
                            &escrow_obj,
                            self.cfg.reward,
                            self.cfg.fee,
                        );
                        self.exchanges[exchange].refund = Some(r.clone());
                        self.registry.inc(self.meters.refunds_submitted);
                        r
                    }
                };
                if self.miner_lacks(now, &refund.txid()) {
                    self.rebroadcast(now, home, refund, queue);
                }
            }
        }

        // (d) Censorship suspicion: our settlement sits in the acting
        // miner's *own pool* sweep after sweep without confirming. An
        // honest miner includes pooled transactions within a block or
        // two, and the sweep backoff (10+20+40+60 s) spans several block
        // intervals — so crossing the threshold means the miner keeps
        // building templates around our money. Demote it: mining duty
        // and catch-up sync route around suspects for the rest of the
        // run (a false positive only rotates the miner, it loses
        // nothing).
        if !self.chaos.host_down(home, now) {
            if let Some(miner) = self.active_miner(now) {
                let pending_txid = {
                    let ex = &self.exchanges[exchange];
                    ex.claim
                        .as_ref()
                        .map(|t| t.txid())
                        .or_else(|| ex.refund.as_ref().map(|t| t.txid()))
                };
                let stuck = pending_txid.is_some_and(|txid| {
                    let d = &self.hosts[miner as usize].daemon;
                    d.mempool.contains(&txid) && d.chain.find_transaction(&txid).is_none()
                });
                if stuck {
                    self.exchanges[exchange].censor_sweeps += 1;
                    if self.exchanges[exchange].censor_sweeps == self.cfg.fsm.censor_suspect_sweeps
                    {
                        self.registry.inc(self.meters.censorship_suspected);
                        self.censor_suspects.insert(miner);
                    }
                } else {
                    self.exchanges[exchange].censor_sweeps = 0;
                }
            }
        }
    }

    /// Who mines right now: the master (host 0) in every clean run, and
    /// under chaos the live host with the tallest chain — ties break
    /// toward the lowest id, so the master takes back over once it has
    /// caught up after a failover. Hosts suspected of claim censorship
    /// are passed over while any other live host can mine (the
    /// route-around half of the censorship defence); with nobody else
    /// up, a suspect still beats no miner at all. `None` while every
    /// host is crashed.
    fn active_miner(&self, now: SimTime) -> Option<u32> {
        if self.chaos.is_idle() && self.censor_suspects.is_empty() {
            return Some(0);
        }
        let mut best: Option<(u64, u32)> = None;
        let mut best_clean: Option<(u64, u32)> = None;
        for (i, h) in self.hosts.iter().enumerate() {
            let id = i as u32;
            if self.chaos.host_down(id, now) {
                continue;
            }
            let height = h.daemon.chain.height();
            if best.is_none_or(|(best_h, _)| height > best_h) {
                best = Some((height, id));
            }
            if !self.censor_suspects.contains(&id)
                && best_clean.is_none_or(|(best_h, _)| height > best_h)
            {
                best_clean = Some((height, id));
            }
        }
        best_clean.or(best).map(|(_, id)| id)
    }

    /// True when the acting miner has `txid` in neither its mempool nor
    /// its main chain — i.e. the transaction will never confirm without
    /// another broadcast. With every host down there is no miner to
    /// judge by, so nothing is re-broadcast until the next sweep.
    fn miner_lacks(&self, now: SimTime, txid: &TxId) -> bool {
        let Some(miner) = self.active_miner(now) else {
            return false;
        };
        let miner = &self.hosts[miner as usize].daemon;
        !miner.mempool.contains(txid) && miner.chain.find_transaction(txid).is_none()
    }

    /// Re-admits `tx` on `host` (if its pool lost it), forgets the relay
    /// dedup so it floods again, and gossips it. Insert failures are
    /// fine — a conflicting settlement already sits in the pool.
    fn rebroadcast(
        &mut self,
        now: SimTime,
        host: u32,
        tx: Transaction,
        queue: &mut EventQueue<Event>,
    ) {
        let txid = tx.txid();
        let h = &mut self.hosts[host as usize];
        let mut at = now;
        if !h.daemon.mempool.contains(&txid) {
            let (done, result) = h
                .daemon
                .accept_transaction(now, tx.clone(), &self.cfg.costs);
            if result.is_err() {
                return;
            }
            at = done;
        }
        let h = &mut self.hosts[host as usize];
        h.daemon.relay.forget(&txid.0);
        h.daemon.relay.mark_seen(txid.0);
        self.registry.inc(self.meters.rebroadcasts);
        self.flood(queue, at, host, &WanMessage::Chain(ChainMessage::Tx(tx)));
    }

    fn handle_mine_tick(&mut self, now: SimTime, queue: &mut EventQueue<Event>) {
        // Interval metrics ride the mining heartbeat — the one periodic
        // event every run has. Edge-triggered, so a slow block interval
        // just lowers the effective sampling rate.
        if let Some(timeline) = self.timeline.as_mut() {
            timeline.maybe_sample(now, &self.registry);
        }
        // Stop mining when work is done and nothing is pending anywhere.
        let work_left = self.completed + self.failed < self.started
            || self.started < self.cfg.target_exchanges
            || self.hosts.iter().any(|h| !h.daemon.mempool.is_empty())
            // Money still in escrow keeps blocks coming: the refund
            // branch needs the chain to reach the CLTV height.
            || self
                .exchanges
                .iter()
                .any(|ex| ex.fsm.phase() == Phase::Escrowed);
        if !work_left {
            return;
        }
        // Miner failover: the master mines unless it is crashed, in
        // which case the tallest live standby takes over until the
        // master catches back up. With every host down the tick just
        // reschedules — a block nobody could gossip helps no one.
        let Some(miner) = self.active_miner(now) else {
            let delay = self.next_block_delay();
            queue.schedule_in(delay, Event::MineTick);
            return;
        };
        // Scheduled fork injection: mine a heavier side branch instead
        // of extending the tip, forcing every host through a reorg.
        if !self.chaos.is_idle() {
            if let Some(depth) = self.chaos.take_fork(now) {
                self.mine_fork(now, miner, depth, queue);
                let delay = self.next_block_delay();
                queue.schedule_in(delay, Event::MineTick);
                return;
            }
        }
        // Byzantine censorship: a miner inside its CensorClaims window
        // silently excludes every settlement transaction — anything
        // spending a known escrow outpoint, claim and refund alike —
        // from its template. The pool keeps them (censorship is not
        // eviction), so an honest miner taking over mines them at once.
        let censoring = !self.chaos.is_idle() && self.chaos.censoring_miner(miner, now);
        let escrow_ops: HashSet<OutPoint> = if censoring {
            self.exchanges
                .iter()
                .filter_map(|ex| ex.escrow.as_ref().map(|e| e.outpoint()))
                .collect()
        } else {
            HashSet::new()
        };
        if censoring {
            let withheld = self.hosts[miner as usize]
                .daemon
                .mempool
                .iter()
                .filter(|tx| tx.inputs.iter().any(|i| escrow_ops.contains(&i.prevout)))
                .count() as u64;
            if withheld > 0 {
                // Per-template exclusion events, not distinct txs: the
                // same stuck claim counts once per censored block.
                self.registry
                    .add(self.chaos.meters().claims_censored, withheld);
            }
        }
        let block = {
            let host = &mut self.hosts[miner as usize];
            let params = host.daemon.chain.params().clone();
            let height = host.daemon.chain.height() + 1;
            let tag: &[u8] = if miner == 0 { b"master" } else { b"standby" };
            let mut txs = vec![Transaction::coinbase(
                height,
                tag,
                vec![TxOut {
                    value: params.coinbase_reward,
                    script_pubkey: host.wallet.locking_script(),
                }],
            )];
            let budget = params.max_block_size.saturating_sub(txs[0].size() + 88);
            if censoring {
                txs.extend(host.daemon.mempool.block_template_excluding(budget, |tx| {
                    tx.inputs.iter().any(|i| escrow_ops.contains(&i.prevout))
                }));
            } else {
                txs.extend(host.daemon.mempool.block_template(budget));
            }
            // Fees go unclaimed (coinbase pays subsidy only) — simpler and
            // valid (coinbase may pay less than allowed).
            Block::mine(
                host.daemon.chain.tip(),
                now.as_micros(),
                params.difficulty_bits,
                txs,
            )
        };
        let (done, action) = {
            let host = &mut self.hosts[miner as usize];
            let mut rng = host.rng.fork(0x113e);
            host.daemon.accept_block(now, block.clone(), &mut rng)
        };
        if matches!(action, Ok(BlockAction::Extended(_))) {
            self.blocks_mined += 1;
            if miner != 0 {
                self.standby_blocks_mined += 1;
            }
            self.hosts[miner as usize]
                .daemon
                .relay
                .mark_seen(block.hash().0);
            let msg = WanMessage::Chain(ChainMessage::Block(block));
            self.flood(queue, done, miner, &msg);
            if miner != 0 {
                // A standby miner is also a protocol actor (recipient or
                // gateway). Its own blocks never echo back through the
                // relay, so the settlement bookkeeping that normally runs
                // on block receipt must run here.
                self.apply_settlements(done, miner, queue);
                self.gateway_check_confirmations(done, miner, queue);
            } else {
                self.audit_master();
            }
        }
        let delay = self.next_block_delay();
        queue.schedule_in(delay, Event::MineTick);
    }

    /// Mines `depth + 1` empty blocks on top of the block `depth` below
    /// the acting miner's tip, overtaking the main chain and triggering
    /// a reorg everywhere. The miner's own mempool repair re-pools the
    /// orphaned transactions, so settlements re-confirm on the new
    /// branch through normal mining.
    fn mine_fork(&mut self, now: SimTime, miner: u32, depth: u32, queue: &mut EventQueue<Event>) {
        self.registry.inc(self.chaos.meters().forks);
        let (params, height) = {
            let host = &self.hosts[miner as usize];
            (
                host.daemon.chain.params().clone(),
                host.daemon.chain.height(),
            )
        };
        let depth = (depth as u64).min(height) as u32;
        let fork_height = height - depth as u64;
        let mut parent = self.hosts[miner as usize]
            .daemon
            .chain
            .block_at(fork_height)
            .expect("fork point on main chain")
            .hash();
        for i in 0..=depth as u64 {
            let block_height = fork_height + 1 + i;
            let coinbase = Transaction::coinbase(
                block_height,
                b"fork",
                vec![TxOut {
                    value: params.coinbase_reward,
                    script_pubkey: self.hosts[miner as usize].wallet.locking_script(),
                }],
            );
            let block = Block::mine(
                parent,
                now.as_micros() + i,
                params.difficulty_bits,
                vec![coinbase],
            );
            parent = block.hash();
            let (done, action) = {
                let host = &mut self.hosts[miner as usize];
                let mut rng = host.rng.fork(0xf04c);
                host.daemon.accept_block(now, block.clone(), &mut rng)
            };
            if action.is_err() {
                return;
            }
            self.blocks_mined += 1;
            if miner != 0 {
                self.standby_blocks_mined += 1;
            }
            self.hosts[miner as usize]
                .daemon
                .relay
                .mark_seen(block.hash().0);
            self.apply_settlements(done, miner, queue);
            let msg = WanMessage::Chain(ChainMessage::Block(block));
            self.flood(queue, done, miner, &msg);
        }
        if miner == 0 {
            self.audit_master();
        }
    }
}

/// Rebuilds an identical chain for another host (shared bootstrap).
/// A ring lattice: every node links to its `degree` nearest neighbours
/// (`degree/2` on each side, minimum one hop). `O(n·degree)` links keep
/// 1 000-host fleets constructible where a full mesh would need half a
/// million; gossip still reaches everyone through re-flooding, in
/// `O(n/degree)` hops worst case.
fn ring_lattice(n: u32, degree: u32) -> Topology {
    let mut topology = Topology::empty(n);
    if n < 2 {
        return topology;
    }
    let half = (degree / 2).max(1).min(n.saturating_sub(1) / 2 + 1);
    for i in 0..n {
        for hop in 1..=half {
            topology.connect(NodeId(i), NodeId((i + hop) % n));
        }
    }
    topology
}

fn clone_chain(params: &ChainParams, source: &Chain) -> Chain {
    let blocks: Vec<Block> = source.iter_main().cloned().collect();
    let mut chain = Chain::new(params.clone(), blocks[0].clone());
    for block in blocks.into_iter().skip(1) {
        chain.add_block(block).expect("bootstrap blocks valid");
    }
    chain
}

/// Like [`clone_chain`] but backed by a fresh persistent store at `dir`:
/// the genesis and warm-up blocks are written through to disk, so a
/// later crash-restart can reopen the chain instead of keeping memory.
fn clone_chain_with_store(params: &ChainParams, source: &Chain, dir: &std::path::Path) -> Chain {
    let blocks: Vec<Block> = source.iter_main().cloned().collect();
    let mut chain = Chain::create_with_store(
        params.clone(),
        blocks[0].clone(),
        dir,
        bcwan_chain::StoreConfig::default(),
    )
    .expect("host store directory writable");
    for block in blocks.into_iter().skip(1) {
        chain.add_block(block).expect("bootstrap blocks valid");
    }
    chain
}

fn recipient_bytes(addr: &[u8; 20]) -> [u8; ADDRESS_LEN] {
    *addr
}

impl Actor<Event> for World {
    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::SensorFire { sensor } => self.handle_sensor_fire(now, sensor, queue),
            Event::RequestArrived { exchange } => self.handle_request_arrived(now, exchange, queue),
            Event::KeySent { exchange } => self.handle_key_sent(now, exchange, queue),
            Event::KeyArrived { exchange } => self.handle_key_arrived(now, exchange, queue),
            Event::DataArrived { exchange } => self.handle_data_arrived(now, exchange, queue),
            Event::RequestTimeout { exchange, attempt } => {
                self.handle_request_timeout(now, exchange, attempt, queue)
            }
            Event::DataTimeout { exchange, attempt } => {
                self.handle_data_timeout(now, exchange, attempt, queue)
            }
            Event::Wan(delivery) => self.handle_wan(now, delivery, queue),
            Event::MineTick => self.handle_mine_tick(now, queue),
            Event::FsmDeadline { exchange, seq } => {
                self.handle_fsm_deadline(now, exchange, seq, queue)
            }
            Event::ChaosRestart { host } => self.handle_chaos_restart(now, host, queue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_completes_exchanges() {
        let result = World::new(WorkloadConfig::tiny(6, 42)).run();
        assert!(result.completed >= 6, "completed {}", result.completed);
        assert_eq!(result.failed, 0, "no failures expected");
        assert_eq!(
            result.app_readings, result.completed,
            "every decrypted reading reaches an application server"
        );
        let summary = result.latencies.summary().unwrap();
        // Without CPU costs: airtimes + a few 20 ms WAN hops ≈ 0.5–1 s.
        assert!(summary.mean > 0.3, "mean {summary}");
        assert!(summary.mean < 3.0, "mean {summary}");
    }

    #[test]
    fn fleet_preset_completes_on_ring_lattice() {
        // 60 gateways on a degree-6 ring: gossip reaches everyone only
        // through re-flooding, and catch-up sync must pick linked
        // sources. The run still completes cleanly.
        let result = World::new(WorkloadConfig::fleet(60, 12, 5)).run();
        assert!(result.completed >= 12, "completed {}", result.completed);
        assert_eq!(result.failed, 0, "no failures expected");
        assert_eq!(result.invariant_violations, 0);
        assert_eq!(result.app_readings, result.completed);
    }

    #[test]
    fn ring_lattice_shape() {
        let topo = ring_lattice(10, 6);
        for i in 0..10u32 {
            // Degree 6: three neighbours each side.
            assert_eq!(topo.peers_of(NodeId(i)).len(), 6, "node {i}");
        }
        assert!(topo.linked(NodeId(0), NodeId(3)));
        assert!(!topo.linked(NodeId(0), NodeId(5)));
        // Degenerate sizes stay connected.
        let tiny = ring_lattice(2, 6);
        assert!(tiny.linked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = World::new(WorkloadConfig::tiny(5, 7)).run();
        let b = World::new(WorkloadConfig::tiny(5, 7)).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latencies.samples(), b.latencies.samples());
    }

    #[test]
    fn different_seeds_differ() {
        // Constant-latency/zero-cost runs are latency-identical by design,
        // so give this test a jittered WAN.
        let mut cfg_a = WorkloadConfig::tiny(5, 1);
        cfg_a.latency = LatencyModel::planetlab();
        let mut cfg_b = WorkloadConfig::tiny(5, 2);
        cfg_b.latency = LatencyModel::planetlab();
        let a = World::new(cfg_a).run();
        let b = World::new(cfg_b).run();
        assert_ne!(a.latencies.samples(), b.latencies.samples());
    }

    #[test]
    fn exchanges_confirm_on_chain() {
        let result = World::new(WorkloadConfig::tiny(4, 9)).run();
        // Two transactions per exchange (escrow + claim) eventually mined.
        assert!(
            result.confirmed_txs >= 2 * 4,
            "confirmed {}",
            result.confirmed_txs
        );
        assert!(result.blocks_mined > 0);
    }

    #[test]
    fn stall_configuration_increases_latency() {
        let mut fast_cfg = WorkloadConfig::tiny(8, 11);
        fast_cfg.costs = CostModel::zero();
        let fast = World::new(fast_cfg).run();

        let mut slow_cfg = WorkloadConfig::tiny(8, 11);
        slow_cfg.chain_params = ChainParams::with_verification_stall();
        // At 15 s blocks a tiny 8-exchange run can finish before the
        // first block arrives; shorten the interval so stalls actually
        // land inside the run, as in the full-scale workload.
        slow_cfg.chain_params.target_block_interval = SimDuration::from_secs(4);
        let slow = World::new(slow_cfg).run();

        let fast_mean = fast.latencies.summary().unwrap().mean;
        let slow_mean = slow.latencies.summary().unwrap().mean;
        assert!(
            slow_mean > fast_mean * 2.0,
            "stall should inflate latency: {fast_mean} vs {slow_mean}"
        );
        assert!(slow.stalls > 0);
    }

    #[test]
    fn lora_loss_is_survivable_with_retries() {
        let mut cfg = WorkloadConfig::tiny(6, 31);
        cfg.lora_loss_probability = 0.2;
        let result = World::new(cfg).run();
        // Retries recover most exchanges; a few may exhaust the budget.
        assert!(
            result.completed >= 5,
            "retries should carry most exchanges: {} completed, {} failed",
            result.completed,
            result.failed
        );
        assert_eq!(result.latencies.len(), result.completed);
    }

    #[test]
    fn total_radio_blackout_fails_cleanly() {
        let mut cfg = WorkloadConfig::tiny(3, 32);
        cfg.lora_loss_probability = 1.0;
        let result = World::new(cfg).run();
        assert_eq!(result.completed, 0);
        assert_eq!(result.failed, 3, "every exchange aborts after retries");
    }

    #[test]
    fn per_gateway_radio_rows_sum_to_totals() {
        let mut cfg = WorkloadConfig::tiny(10, 35).with_lora_contention();
        cfg.lora_loss_probability = 0.3;
        let result = World::new(cfg).run();
        let counter = |name: &str| {
            result
                .metrics
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let sum_labeled = |base: &str| {
            let prefix = format!("{base}{{");
            result
                .metrics
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with(&prefix))
                .map(|(_, v)| *v)
                .sum::<u64>()
        };
        let lost = counter("world.lora_frames_lost_total");
        let retries = counter("world.lora_retries_total");
        assert!(lost > 0, "30% loss must lose frames");
        assert!(retries > 0, "lost frames must trigger retries");
        assert_eq!(
            sum_labeled("world.lora_frames_lost_total"),
            lost,
            "per-gateway rows must partition the total"
        );
        assert_eq!(sum_labeled("world.lora_retries_total"), retries);
    }

    #[test]
    fn analytic_contention_adds_loss_over_flat_rate() {
        // Same seed with and without the ALOHA term: the contention run
        // must lose at least as many frames (strictly more under load).
        let flat = World::new(WorkloadConfig::tiny(10, 36)).run();
        let mut cfg = WorkloadConfig::tiny(10, 36).with_lora_contention();
        // Crank the population so the offered load G is non-trivial.
        cfg.sensors_per_host = 400;
        let contended = World::new(cfg).run();
        let lost = |r: &ExperimentResult| {
            r.metrics
                .counters
                .iter()
                .find(|(n, _)| n == "world.lora_frames_lost_total")
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(lost(&flat), 0, "flat run has no loss configured");
        assert!(
            lost(&contended) > 0,
            "a 800-sensor cell at full duty must see ALOHA collisions"
        );
    }

    #[test]
    fn phase_breakdown_sums_to_total() {
        let cfg = WorkloadConfig::tiny(5, 33);
        let result = World::new(cfg).run();
        assert_eq!(result.phase_radio.len(), result.completed);
        for i in 0..result.completed {
            let total = result.latencies.samples()[i];
            let parts = result.phase_radio.samples()[i]
                + result.phase_forward.samples()[i]
                + result.phase_settlement.samples()[i];
            assert!((total - parts).abs() < 1e-6, "{total} vs {parts}");
        }
    }

    #[test]
    fn tracing_decomposes_exchanges_into_phases() {
        let result = World::new(WorkloadConfig::tiny(4, 51).with_tracing()).run();
        assert!(result.completed >= 4);
        let names: Vec<&str> = result.phases.iter().map(|(n, _)| n.as_str()).collect();
        for phase in [
            "request_uplink",
            "keygen",
            "key_downlink",
            "data_uplink",
            "gateway_forward",
            "escrow_publish",
            "confirmation_wait",
            "claim_and_decrypt",
        ] {
            assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
        }
        // Every completed exchange contributes one sample per phase.
        for (name, series) in &result.phases {
            assert!(
                series.len() >= result.completed,
                "{name} has {} samples for {} exchanges",
                series.len(),
                result.completed
            );
        }
        // No stray span bookkeeping on the happy path.
        let unmatched = result
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == "trace.unmatched_ends_total")
            .map(|(_, v)| *v);
        assert_eq!(unmatched, Some(0));
    }

    #[test]
    fn tracing_off_leaves_phases_empty_and_results_identical() {
        let traced = World::new(WorkloadConfig::tiny(4, 51).with_tracing()).run();
        let plain = World::new(WorkloadConfig::tiny(4, 51)).run();
        assert!(plain.phases.is_empty());
        // Tracing is observation only: same simulation either way.
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.latencies.samples(), traced.latencies.samples());
    }

    #[test]
    fn metrics_snapshot_reflects_run_outcome() {
        let result = World::new(WorkloadConfig::tiny(5, 52)).run();
        let counter = |name: &str| {
            result
                .metrics
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(
            counter("world.exchanges_completed_total"),
            result.completed as u64
        );
        assert_eq!(
            counter("world.exchanges_failed_total"),
            result.failed as u64
        );
        assert_eq!(counter("world.blocks_mined_total"), result.blocks_mined);
        assert!(counter("wan.messages.tx_total") > 0, "escrow+claim gossip");
        assert!(counter("wan.bytes.deliver_total") > 0, "forwarded uplinks");
        assert!(counter("chain.blocks_connected_total") > 0);
        assert!(counter("mempool.accepted_total") >= 2 * result.completed as u64);
        assert!(counter("net.delivered_total") > 0);
        let (_, latency) = result
            .metrics
            .histograms
            .iter()
            .find(|(n, _)| n == "world.exchange_latency_seconds")
            .expect("latency histogram registered");
        assert_eq!(latency.count, result.completed as u64);
        assert!(latency.p50 > 0.0);
    }

    #[test]
    fn confirmation_depth_adds_block_waits() {
        let mut base = WorkloadConfig::tiny(4, 13);
        base.chain_params.target_block_interval = SimDuration::from_secs(5);
        let zero_conf = World::new(base.clone()).run();

        let mut depth = base;
        depth.confirmation_depth = 2;
        let two_conf = World::new(depth).run();

        let zero_mean = zero_conf.latencies.summary().unwrap().mean;
        let two_mean = two_conf.latencies.summary().unwrap().mean;
        assert!(
            two_mean > zero_mean + 4.0,
            "2-conf should add ≥ a block interval: {zero_mean} vs {two_mean}"
        );
    }
}
