//! Application servers (paper Figs. 1–2).
//!
//! "[the recipient] will in its turn send it to the right application
//! server. The choice of the application server is not different to what
//! we have in legacy LoRaWAN network" (§4.2). This module supplies that
//! last hop: a per-recipient routing table from devices to application
//! servers, and an in-memory server that stores decrypted readings for
//! the customer application.

use crate::provisioning::DeviceId;
use bcwan_sim::SimTime;
use std::collections::HashMap;
use std::fmt;

/// An application-server identifier within one recipient's deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppServerId(pub u32);

impl fmt::Display for AppServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A decrypted reading as handed to the customer application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reading {
    /// The producing device.
    pub device_id: DeviceId,
    /// Decrypted payload bytes.
    pub payload: Vec<u8>,
    /// When the recipient finished decrypting it.
    pub received_at: SimTime,
}

/// An in-memory application server: stores readings in arrival order.
#[derive(Debug, Default)]
pub struct AppServer {
    name: String,
    readings: Vec<Reading>,
}

impl AppServer {
    /// Creates a named server.
    pub fn new(name: impl Into<String>) -> Self {
        AppServer {
            name: name.into(),
            readings: Vec::new(),
        }
    }

    /// The server's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accepts one reading.
    pub fn deliver(&mut self, reading: Reading) {
        self.readings.push(reading);
    }

    /// All readings in arrival order.
    pub fn readings(&self) -> &[Reading] {
        &self.readings
    }

    /// Number of stored readings.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether the server holds no readings.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// The most recent reading from a device.
    pub fn latest_from(&self, device: &DeviceId) -> Option<&Reading> {
        self.readings.iter().rev().find(|r| r.device_id == *device)
    }
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No route for the device and no default server configured.
    NoRoute(DeviceId),
    /// The routed server id is not registered.
    UnknownServer(AppServerId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoRoute(d) => write!(f, "no application server routed for {d}"),
            RouteError::UnknownServer(s) => write!(f, "application server {s} not registered"),
        }
    }
}

impl std::error::Error for RouteError {}

/// The recipient's device→application-server routing table.
#[derive(Debug, Default)]
pub struct AppRouter {
    servers: HashMap<AppServerId, AppServer>,
    routes: HashMap<DeviceId, AppServerId>,
    default_server: Option<AppServerId>,
}

impl AppRouter {
    /// An empty router.
    pub fn new() -> Self {
        AppRouter::default()
    }

    /// Registers a server and returns its id handle.
    pub fn register(&mut self, id: AppServerId, server: AppServer) {
        self.servers.insert(id, server);
    }

    /// Routes a device to a server.
    pub fn route(&mut self, device: DeviceId, server: AppServerId) {
        self.routes.insert(device, server);
    }

    /// Sets the fallback server for unrouted devices.
    pub fn set_default(&mut self, server: AppServerId) {
        self.default_server = Some(server);
    }

    /// Which server a device's data goes to.
    pub fn server_for(&self, device: &DeviceId) -> Option<AppServerId> {
        self.routes.get(device).copied().or(self.default_server)
    }

    /// Dispatches a decrypted reading to the right server (the final hop
    /// of the exchange). Returns the server that received it.
    ///
    /// # Errors
    ///
    /// [`RouteError`] when no route/default exists or the routed server
    /// was never registered.
    pub fn dispatch(
        &mut self,
        device_id: DeviceId,
        payload: Vec<u8>,
        received_at: SimTime,
    ) -> Result<AppServerId, RouteError> {
        let target = self
            .server_for(&device_id)
            .ok_or(RouteError::NoRoute(device_id))?;
        let server = self
            .servers
            .get_mut(&target)
            .ok_or(RouteError::UnknownServer(target))?;
        server.deliver(Reading {
            device_id,
            payload,
            received_at,
        });
        Ok(target)
    }

    /// Read access to a server.
    pub fn server(&self, id: &AppServerId) -> Option<&AppServer> {
        self.servers.get(id)
    }

    /// Total readings across all servers.
    pub fn total_readings(&self) -> usize {
        self.servers.values().map(AppServer::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn dispatch_follows_routes() {
        let mut router = AppRouter::new();
        router.register(AppServerId(1), AppServer::new("metering"));
        router.register(AppServerId(2), AppServer::new("parking"));
        router.route(DeviceId(10), AppServerId(1));
        router.route(DeviceId(20), AppServerId(2));

        assert_eq!(
            router.dispatch(DeviceId(10), b"water=3".to_vec(), at(1)),
            Ok(AppServerId(1))
        );
        assert_eq!(
            router.dispatch(DeviceId(20), b"spot=free".to_vec(), at(2)),
            Ok(AppServerId(2))
        );
        assert_eq!(router.server(&AppServerId(1)).unwrap().len(), 1);
        assert_eq!(
            router.server(&AppServerId(2)).unwrap().readings()[0].payload,
            b"spot=free".to_vec()
        );
        assert_eq!(router.total_readings(), 2);
    }

    #[test]
    fn default_server_catches_unrouted_devices() {
        let mut router = AppRouter::new();
        router.register(AppServerId(9), AppServer::new("catch-all"));
        router.set_default(AppServerId(9));
        assert_eq!(
            router.dispatch(DeviceId(77), b"x".to_vec(), at(1)),
            Ok(AppServerId(9))
        );
    }

    #[test]
    fn routing_errors() {
        let mut router = AppRouter::new();
        assert_eq!(
            router.dispatch(DeviceId(1), vec![], at(0)),
            Err(RouteError::NoRoute(DeviceId(1)))
        );
        router.route(DeviceId(1), AppServerId(5)); // never registered
        assert_eq!(
            router.dispatch(DeviceId(1), vec![], at(0)),
            Err(RouteError::UnknownServer(AppServerId(5)))
        );
    }

    #[test]
    fn latest_from_tracks_per_device() {
        let mut server = AppServer::new("s");
        assert!(server.is_empty());
        server.deliver(Reading {
            device_id: DeviceId(1),
            payload: b"old".to_vec(),
            received_at: at(1),
        });
        server.deliver(Reading {
            device_id: DeviceId(2),
            payload: b"other".to_vec(),
            received_at: at(2),
        });
        server.deliver(Reading {
            device_id: DeviceId(1),
            payload: b"new".to_vec(),
            received_at: at(3),
        });
        assert_eq!(
            server.latest_from(&DeviceId(1)).unwrap().payload,
            b"new".to_vec()
        );
        assert_eq!(
            server.latest_from(&DeviceId(2)).unwrap().payload,
            b"other".to_vec()
        );
        assert!(server.latest_from(&DeviceId(3)).is_none());
        assert_eq!(server.name(), "s");
    }
}
