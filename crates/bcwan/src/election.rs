//! Master-gateway election (paper §4.2, footnote 3).
//!
//! "With several gateways per actor, each actor will have to elect one of
//! his gateways as the master gateway" — the gateway all the actor's
//! devices address their data to, and the one that publishes the actor's
//! IP in the directory.
//!
//! The election must be computable by every gateway of the actor without
//! coordination, deterministic for a given chain state (so all gateways
//! agree), and rotate over time (so a dead master eventually loses the
//! role). We hash `(actor address ‖ gateway id ‖ epoch)` and pick the
//! minimum — a rendezvous-hash election keyed on the chain's epoch.

use bcwan_chain::Address;
use bcwan_crypto::sha256;

/// One gateway belonging to an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatewayId(pub u32);

/// The deterministic election over an actor's gateways.
///
/// `epoch` is derived from chain height (e.g. `height / epoch_len`), so
/// every correctly-synced gateway computes the same winner, and the
/// winner rotates as the chain advances.
pub fn elect_master(actor: &Address, gateways: &[GatewayId], epoch: u64) -> Option<GatewayId> {
    gateways
        .iter()
        .min_by_key(|gw| election_score(actor, **gw, epoch))
        .copied()
}

/// The rendezvous score; lowest wins.
fn election_score(actor: &Address, gateway: GatewayId, epoch: u64) -> [u8; 32] {
    let mut material = Vec::with_capacity(20 + 4 + 8);
    material.extend_from_slice(&actor.0);
    material.extend_from_slice(&gateway.0.to_le_bytes());
    material.extend_from_slice(&epoch.to_le_bytes());
    sha256(&material)
}

/// Epoch for a chain height with the given epoch length in blocks.
///
/// # Panics
///
/// Panics if `epoch_len` is zero.
pub fn epoch_of(height: u64, epoch_len: u64) -> u64 {
    assert!(epoch_len > 0, "epoch length must be positive");
    height / epoch_len
}

/// Fraction of epochs in `[0, horizon)` for which `gateway` is master —
/// used to check the election is fair across a fleet.
pub fn mastership_share(
    actor: &Address,
    gateways: &[GatewayId],
    gateway: GatewayId,
    horizon: u64,
) -> f64 {
    if horizon == 0 {
        return 0.0;
    }
    let won = (0..horizon)
        .filter(|&e| elect_master(actor, gateways, e) == Some(gateway))
        .count();
    won as f64 / horizon as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: u32) -> Vec<GatewayId> {
        (0..n).map(GatewayId).collect()
    }

    #[test]
    fn empty_fleet_elects_nobody() {
        assert_eq!(elect_master(&Address([1; 20]), &[], 0), None);
    }

    #[test]
    fn single_gateway_always_master() {
        let gws = fleet(1);
        for epoch in 0..10 {
            assert_eq!(
                elect_master(&Address([1; 20]), &gws, epoch),
                Some(GatewayId(0))
            );
        }
    }

    #[test]
    fn election_is_deterministic_and_order_independent() {
        let actor = Address([7; 20]);
        let gws = fleet(5);
        let mut reversed = gws.clone();
        reversed.reverse();
        for epoch in 0..20 {
            let a = elect_master(&actor, &gws, epoch);
            let b = elect_master(&actor, &reversed, epoch);
            assert_eq!(a, b, "epoch {epoch}");
        }
    }

    #[test]
    fn master_rotates_across_epochs() {
        let actor = Address([9; 20]);
        let gws = fleet(4);
        let winners: std::collections::HashSet<_> = (0..50)
            .filter_map(|e| elect_master(&actor, &gws, e))
            .collect();
        assert!(winners.len() >= 3, "rotation too static: {winners:?}");
    }

    #[test]
    fn mastership_roughly_uniform() {
        let actor = Address([3; 20]);
        let gws = fleet(4);
        for gw in &gws {
            let share = mastership_share(&actor, &gws, *gw, 2000);
            assert!((0.15..0.35).contains(&share), "{gw:?} share {share}");
        }
    }

    #[test]
    fn different_actors_have_independent_schedules() {
        let gws = fleet(6);
        let schedule_a: Vec<_> = (0..30)
            .map(|e| elect_master(&Address([1; 20]), &gws, e))
            .collect();
        let schedule_b: Vec<_> = (0..30)
            .map(|e| elect_master(&Address([2; 20]), &gws, e))
            .collect();
        assert_ne!(schedule_a, schedule_b);
    }

    #[test]
    fn removing_dead_master_changes_only_its_epochs() {
        // Rendezvous hashing: dropping one gateway only reassigns the
        // epochs it was winning.
        let actor = Address([4; 20]);
        let all = fleet(5);
        let without_last: Vec<_> = all[..4].to_vec();
        for epoch in 0..100 {
            let full = elect_master(&actor, &all, epoch).unwrap();
            let reduced = elect_master(&actor, &without_last, epoch).unwrap();
            if full != GatewayId(4) {
                assert_eq!(full, reduced, "epoch {epoch} must be undisturbed");
            }
        }
    }

    #[test]
    fn epoch_arithmetic() {
        assert_eq!(epoch_of(0, 100), 0);
        assert_eq!(epoch_of(99, 100), 0);
        assert_eq!(epoch_of(100, 100), 1);
        assert_eq!(
            mastership_share(&Address([0; 20]), &fleet(2), GatewayId(0), 0),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_len_panics() {
        epoch_of(5, 0);
    }
}
