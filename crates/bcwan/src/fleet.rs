//! One transport, two worlds: the same federation logic over the
//! simulated bus or real TCP sockets.
//!
//! [`World`](crate::world::World) drives the paper's §5.2 experiments on
//! a deterministic event queue; the live loopback tests drive real
//! sockets. This module is the seam between them: a [`Fleet`] is a set
//! of [`FleetNode`]s — each a full gateway with its own [`Daemon`],
//! wallet, and exchange state — wired together by any
//! [`FleetTransport`]. The *same* scenario function (for example
//! [`fig3_partition_recovery`]) runs unmodified over [`BusFleet`]
//! (in-process channels, instant delivery) or [`TcpFleet`] (real
//! `TcpHost` sockets multiplexed on one shared event-driven
//! [`TcpRuntime`]); the only difference is which transport value the
//! caller constructs.
//!
//! [`FleetNode::handle`] is the live daemon accept loop the paper's
//! gateways run: admit transactions, connect blocks, relay gossip with
//! flood dedup, answer `GetBlocksFrom` with bounded batches out of
//! [`sync::serve_blocks_from_bounded`], and issue catch-up requests when
//! a tip announcement or an unconnectable block reveals the node is
//! behind (§5.1). Partitions are enforced at the overlay routing layer
//! on both backends: a cut link silently drops the message, exactly what
//! a severed WAN path does to a datagram in flight.

use crate::costs::CostModel;
use crate::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use crate::exchange::{open_reading, seal_reading, verify_uplink, SealedUplink};
use crate::net::WanCodec;
use crate::provisioning::{DeviceId, DeviceRegistry};
use crate::sync;
use crate::wire::WanMessage;
use crate::Daemon;
use bcwan_chain::{
    Address, Block, BlockAction, Chain, ChainParams, OutPoint, Transaction, TxId, TxOut, Wallet,
};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPrivateKey, RsaPublicKey};
use bcwan_p2p::transport::{TcpConfig, TcpHost, TcpRuntime};
use bcwan_p2p::{ChainMessage, Envelope, Inbox, LiveBus, NodeId};
use bcwan_script::Script;
use bcwan_sim::{SimRng, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Blocks served per `GetBlocksFrom` answer — the live analogue of the
/// simulated world's sync batching, so one lagging peer cannot make a
/// daemon serialize its whole chain into a single response. The
/// trailing `TipAnnounce` tells a still-behind requester to ask again.
pub const SYNC_BATCH: usize = 32;

/// Inbound messages a node drains per [`Fleet::step`], so one flooded
/// node cannot starve the rest of the fleet within a step.
const DRAIN_PER_STEP: usize = 64;

/// Reward locked in the scenario's escrow output.
const ESCROW_VALUE: u64 = 100;
/// Fee the escrow transaction pays.
const ESCROW_FEE: u64 = 10;
/// Fee the claim transaction pays.
const CLAIM_FEE: u64 = 5;

/// An addressed overlay for a fleet of nodes, with partitionable links.
///
/// Implementations route by [`NodeId`]; the TCP backend resolves ids to
/// socket addresses internally (the on-chain directory's job in the full
/// system). A send across a cut link returns `false` and delivers
/// nothing — the overlay-level model of a severed WAN path, identical on
/// both backends.
pub trait FleetTransport {
    /// Sends one message; `false` means the link is cut or the peer is
    /// unreachable and the message was dropped.
    fn send(&mut self, from: NodeId, to: NodeId, msg: &WanMessage) -> bool;

    /// Non-blocking receive of the next message queued for `host`.
    fn try_recv(&mut self, host: NodeId) -> Option<Envelope<WanMessage>>;

    /// Raises (`up = true`) or cuts (`up = false`) the link between two
    /// nodes. Links start up.
    fn set_link(&mut self, a: NodeId, b: NodeId, up: bool);
}

fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

/// [`FleetTransport`] over the in-process [`LiveBus`]: instant,
/// loss-free delivery through channels — the simulated world's fabric.
pub struct BusFleet {
    bus: LiveBus<WanMessage>,
    inboxes: Vec<Inbox<WanMessage>>,
    cuts: HashSet<(u32, u32)>,
}

impl BusFleet {
    /// A bus fabric for `n` nodes with ids `0..n`.
    pub fn new(n: usize) -> Self {
        let bus = LiveBus::new();
        let inboxes = (0..n as u32).map(|i| bus.register(NodeId(i))).collect();
        BusFleet {
            bus,
            inboxes,
            cuts: HashSet::new(),
        }
    }
}

impl FleetTransport for BusFleet {
    fn send(&mut self, from: NodeId, to: NodeId, msg: &WanMessage) -> bool {
        if self.cuts.contains(&link_key(from, to)) {
            return false;
        }
        self.bus.send(from, to, msg.clone()).is_ok()
    }

    fn try_recv(&mut self, host: NodeId) -> Option<Envelope<WanMessage>> {
        self.inboxes
            .get(host.0 as usize)
            .and_then(|inbox| inbox.try_recv().message())
    }

    fn set_link(&mut self, a: NodeId, b: NodeId, up: bool) {
        if up {
            self.cuts.remove(&link_key(a, b));
        } else {
            self.cuts.insert(link_key(a, b));
        }
    }
}

/// [`FleetTransport`] over real loopback TCP: every node binds a
/// [`TcpHost`] on one shared event-driven [`TcpRuntime`], so a 64-host
/// fleet costs one poller plus a few worker threads, not 64+ reader
/// threads.
pub struct TcpFleet {
    hosts: Vec<TcpHost<WanMessage, WanCodec>>,
    inboxes: Vec<Inbox<WanMessage>>,
    addrs: Vec<SocketAddr>,
    cuts: HashSet<(u32, u32)>,
}

impl TcpFleet {
    /// Binds `n` hosts on OS-assigned loopback ports over one runtime
    /// with `workers` connection workers.
    ///
    /// # Errors
    ///
    /// Bind or thread-spawn failure.
    pub fn new(n: usize, workers: usize, cfg: TcpConfig) -> io::Result<Self> {
        let runtime: TcpRuntime<WanMessage, WanCodec> = TcpRuntime::new(workers)?;
        let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
        let mut hosts = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let (host, inbox) =
                TcpHost::bind_with_runtime(&runtime, loopback, NodeId(i), WanCodec, cfg.clone())?;
            addrs.push(host.local_addr());
            hosts.push(host);
            inboxes.push(inbox);
        }
        Ok(TcpFleet {
            hosts,
            inboxes,
            addrs,
            cuts: HashSet::new(),
        })
    }

    /// The transport hosts, indexed by node id, for metric export.
    pub fn hosts(&self) -> &[TcpHost<WanMessage, WanCodec>] {
        &self.hosts
    }
}

impl FleetTransport for TcpFleet {
    fn send(&mut self, from: NodeId, to: NodeId, msg: &WanMessage) -> bool {
        if self.cuts.contains(&link_key(from, to)) {
            return false;
        }
        let (Some(host), Some(addr)) = (
            self.hosts.get(from.0 as usize),
            self.addrs.get(to.0 as usize),
        ) else {
            return false;
        };
        host.send(*addr, msg).is_ok()
    }

    fn try_recv(&mut self, host: NodeId) -> Option<Envelope<WanMessage>> {
        self.inboxes
            .get(host.0 as usize)
            .and_then(|inbox| inbox.try_recv().message())
    }

    fn set_link(&mut self, a: NodeId, b: NodeId, up: bool) {
        if up {
            self.cuts.remove(&link_key(a, b));
        } else {
            self.cuts.insert(link_key(a, b));
            // Pooled connections across the cut are stale; drop them so a
            // healed link re-dials instead of writing into a dead pipe.
            if let Some(host) = self.hosts.get(a.0 as usize) {
                host.drop_pool();
            }
            if let Some(host) = self.hosts.get(b.0 as usize) {
                host.drop_pool();
            }
        }
    }
}

/// Where one of [`FleetNode::handle`]'s reactions goes.
#[derive(Debug, Clone)]
pub enum Outbound {
    /// Directly to one peer (sync responses, catch-up requests).
    To(NodeId, WanMessage),
    /// Flooded to every peer (dedup happens at the receivers).
    Flood(WanMessage),
}

/// One live gateway: a chain daemon plus the per-role exchange state
/// the Fig. 3 protocol needs.
pub struct FleetNode {
    /// This node's overlay id.
    pub id: NodeId,
    /// The node's chain daemon (chain, mempool, relay dedup).
    pub daemon: Daemon,
    /// The node's wallet.
    pub wallet: Wallet,
    /// Recipient role: provisioned devices this node can verify and
    /// decrypt for.
    pub registry: DeviceRegistry,
    /// Recipient role: spendable coins for funding escrows.
    pub coins: Vec<(OutPoint, Script, u64)>,
    /// Gateway role: the ephemeral keypair of the exchange in flight.
    pub ephemeral: Option<(RsaPublicKey, RsaPrivateKey)>,
    /// Gateway role: whether the escrow was claimed.
    pub claimed: bool,
    /// Gateway role: txid of the claim, once broadcast.
    pub claim_txid: Option<TxId>,
    /// Recipient role: the reading recovered from the claim.
    pub decrypted: Option<Vec<u8>>,
    /// Recipient role: set when two *distinct* key-revealing claims
    /// were seen spending our escrow — the gateway equivocated. The
    /// reading is never at risk (every valid claim reveals the true
    /// eSk); the flag is the detection signal fair exchange promises.
    pub equivocation_detected: bool,
    /// Recipient role: first key-revealing claim seen for our escrow.
    seen_claim_txid: Option<TxId>,
    /// How many `GetBlocksFrom` batches this node served.
    pub sync_batches_served: u64,
    /// How many `GetHeadersFrom` batches this node served.
    pub header_batches_served: u64,
    /// In-progress headers-first catch-up, if any.
    header_sync: Option<sync::HeaderSync>,
    /// Every peer's wallet address, indexed by node id (out-of-band
    /// here; the on-chain directory's job in the full system).
    address_book: Vec<Address>,
    pending_uplink: Option<(DeviceId, SealedUplink)>,
    escrow_outpoint: Option<OutPoint>,
    costs: CostModel,
    now: SimTime,
    rng: SimRng,
}

impl FleetNode {
    fn new(
        id: NodeId,
        chain: Chain,
        wallet: Wallet,
        address_book: Vec<Address>,
        seed: u64,
    ) -> Self {
        FleetNode {
            id,
            daemon: Daemon::new(chain),
            wallet,
            registry: DeviceRegistry::new(),
            coins: Vec::new(),
            ephemeral: None,
            claimed: false,
            claim_txid: None,
            decrypted: None,
            equivocation_detected: false,
            seen_claim_txid: None,
            sync_batches_served: 0,
            header_batches_served: 0,
            header_sync: None,
            address_book,
            pending_uplink: None,
            escrow_outpoint: None,
            costs: CostModel::pi_class(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed ^ u64::from(id.0).wrapping_mul(0x9e37_79b9)),
        }
    }

    /// The node's chain height.
    pub fn height(&self) -> u64 {
        self.daemon.chain.height()
    }

    /// This node's tip as an inventory announcement.
    pub fn tip_announce(&self) -> WanMessage {
        WanMessage::Chain(ChainMessage::TipAnnounce {
            hash: self.daemon.chain.tip(),
            height: self.daemon.chain.height(),
        })
    }

    /// The daemon accept loop: processes one inbound message and returns
    /// the reactions to route. This single body of protocol logic is
    /// what both the bus and TCP fleets execute.
    pub fn handle(&mut self, env: Envelope<WanMessage>) -> Vec<Outbound> {
        let mut out = Vec::new();
        // Flood dedup first: a transaction or block this node already
        // saw is dropped wholesale, which is what terminates gossip
        // floods on both fabrics.
        if let WanMessage::Chain(cm) = &env.msg {
            if cm.flood_id().is_some() && !self.daemon.relay.should_relay(cm) {
                return out;
            }
        }
        match env.msg {
            WanMessage::Deliver {
                device_id,
                e_pk_bytes,
                uplink,
            } => self.on_deliver(env.from, device_id, &e_pk_bytes, uplink, &mut out),
            WanMessage::Chain(ChainMessage::Tx(tx)) => self.on_tx(tx, &mut out),
            WanMessage::Chain(ChainMessage::Block(block)) => {
                self.on_block(env.from, block, &mut out)
            }
            WanMessage::Chain(ChainMessage::GetBlocksFrom(height)) => {
                self.sync_batches_served += 1;
                let batch = sync::serve_blocks_from_bounded(&self.daemon.chain, height, SYNC_BATCH);
                for block in batch {
                    out.push(Outbound::To(
                        env.from,
                        WanMessage::Chain(ChainMessage::Block(block)),
                    ));
                }
                // The tip announce closes the loop: if the batch stopped
                // short of our tip, the requester sees it is still
                // behind and asks again from its new height.
                out.push(Outbound::To(env.from, self.tip_announce()));
            }
            WanMessage::Chain(ChainMessage::GetBlock(hash)) => {
                if let Some(block) = self
                    .daemon
                    .chain
                    .iter_main()
                    .find(|b| b.hash() == hash)
                    .cloned()
                {
                    out.push(Outbound::To(
                        env.from,
                        WanMessage::Chain(ChainMessage::Block(block)),
                    ));
                }
            }
            WanMessage::Chain(ChainMessage::GetHeadersFrom(height)) => {
                self.header_batches_served += 1;
                let headers =
                    sync::serve_headers_from(&self.daemon.chain, height, sync::HEADER_BATCH);
                out.push(Outbound::To(
                    env.from,
                    WanMessage::Chain(ChainMessage::Headers {
                        start_height: height,
                        headers,
                    }),
                ));
            }
            WanMessage::Chain(ChainMessage::Headers {
                start_height,
                headers,
            }) => {
                if let Some(hs) = self.header_sync.as_mut() {
                    let reqs = hs.on_headers(&self.daemon.chain, start_height, &headers);
                    if !hs.is_active() {
                        self.header_sync = None;
                    }
                    self.push_sync_requests(reqs, &mut out);
                }
            }
            WanMessage::Chain(ChainMessage::TipAnnounce { height, .. }) => {
                if height > self.daemon.chain.height() {
                    match self.header_sync.as_mut() {
                        Some(hs) => {
                            // Already syncing: raise the target and top
                            // up the body window.
                            hs.on_tip(height);
                            let reqs = hs.on_progress(&self.daemon.chain);
                            if !hs.is_active() {
                                self.header_sync = None;
                            }
                            self.push_sync_requests(reqs, &mut out);
                        }
                        None => {
                            // Headers-first catch-up (§5.1): locate the
                            // fork with cheap header batches before any
                            // bodies move, instead of blindly walking
                            // blocks from our own height.
                            let peers = self.sync_peers(env.from);
                            let (hs, reqs) =
                                sync::HeaderSync::start(peers, self.daemon.chain.height(), height);
                            self.header_sync = Some(hs);
                            self.push_sync_requests(reqs, &mut out);
                        }
                    }
                }
            }
        }
        out
    }

    /// Peers to stripe body batches across: the announcing peer first,
    /// then the next node ids round-robin, at most three total. (Ids
    /// map to every fleet member; a cut link just drops that stripe and
    /// the orphan-fallback `GetBlocksFrom` recovers.)
    fn sync_peers(&self, primary: NodeId) -> Vec<NodeId> {
        let n = self.address_book.len() as u32;
        let mut peers = vec![primary];
        let mut next = primary.0.wrapping_add(1) % n.max(1);
        while peers.len() < 3 && peers.len() + 1 < n as usize {
            let candidate = NodeId(next);
            if candidate != self.id && !peers.contains(&candidate) {
                peers.push(candidate);
            }
            next = (next + 1) % n;
        }
        peers
    }

    fn push_sync_requests(&self, reqs: Vec<sync::SyncRequest>, out: &mut Vec<Outbound>) {
        for req in reqs {
            let (peer, msg) = match req {
                sync::SyncRequest::Headers { peer, from } => {
                    (peer, ChainMessage::GetHeadersFrom(from))
                }
                sync::SyncRequest::Bodies { peer, from } => {
                    (peer, ChainMessage::GetBlocksFrom(from))
                }
            };
            out.push(Outbound::To(peer, WanMessage::Chain(msg)));
        }
    }

    /// Fig. 3 steps 8–9 at the recipient: verify the uplink, fund the
    /// escrow paying the delivering gateway, flood it toward the miners.
    fn on_deliver(
        &mut self,
        from: NodeId,
        device_id: DeviceId,
        e_pk_bytes: &[u8],
        uplink: SealedUplink,
        out: &mut Vec<Outbound>,
    ) {
        let Some(record) = self.registry.get(&device_id) else {
            return; // not our device
        };
        let Ok(pk) = RsaPublicKey::from_bytes(e_pk_bytes) else {
            return;
        };
        if !verify_uplink(record, &pk, &uplink) {
            return; // forged or corrupted — never pay for it
        }
        let Some(coin) = self.coins.pop() else {
            return; // nothing left to fund an escrow with
        };
        let Some(&gateway_address) = self.address_book.get(from.0 as usize) else {
            return;
        };
        let escrow = build_escrow(
            &self.wallet,
            std::slice::from_ref(&coin),
            &pk,
            &gateway_address,
            ESCROW_VALUE,
            ESCROW_FEE,
            0,
        );
        self.escrow_outpoint = Some(escrow.outpoint());
        self.pending_uplink = Some((device_id, uplink));
        let tx = escrow.tx;
        self.daemon.relay.mark_seen(tx.txid().0);
        let (done, _) = self
            .daemon
            .accept_transaction(self.now, tx.clone(), &self.costs);
        self.now = done;
        out.push(Outbound::Flood(WanMessage::Chain(ChainMessage::Tx(tx))));
    }

    fn on_tx(&mut self, tx: Transaction, out: &mut Vec<Outbound>) {
        let (done, res) = self
            .daemon
            .accept_transaction(self.now, tx.clone(), &self.costs);
        self.now = done;
        if res.is_ok() {
            out.push(Outbound::Flood(WanMessage::Chain(ChainMessage::Tx(
                tx.clone(),
            ))));
        }
        // Recipient role, step 10→11: a claim spending our escrow output
        // reveals eSk; decrypt the pending uplink with it. Detection
        // runs even when admission failed — a rival claim is exactly
        // the tx the pool rejects as a conflict.
        self.note_claim(&tx);
        self.try_decrypt_from(&tx);
    }

    fn on_block(&mut self, from: NodeId, block: Block, out: &mut Vec<Outbound>) {
        let (done, res) = self
            .daemon
            .accept_block(self.now, block.clone(), &mut self.rng);
        self.now = done;
        match res {
            Ok(BlockAction::Extended(_)) | Ok(BlockAction::Reorganized { .. }) => {
                out.push(Outbound::Flood(WanMessage::Chain(ChainMessage::Block(
                    block,
                ))));
                // Gateway role: once the escrow confirms, claim it by
                // revealing eSk. Claiming before confirmation would be
                // rejected everywhere (the escrow output is not in any
                // UTXO set yet) and the relay dedup would never let the
                // claim re-flood — so confirmation is the trigger.
                self.try_claim_connected(out);
                self.try_decrypt_connected();
                // Keep the headers-first body window full as batches
                // land and retire.
                if let Some(hs) = self.header_sync.as_mut() {
                    let reqs = hs.on_progress(&self.daemon.chain);
                    if !hs.is_active() {
                        self.header_sync = None;
                    }
                    self.push_sync_requests(reqs, out);
                }
            }
            Ok(BlockAction::SideChain) | Ok(BlockAction::AlreadyKnown) => {}
            Err(_) => {
                // Most likely an orphan: the parent is missing because
                // we were partitioned. Ask the sender for everything
                // above our tip (§5.1 catch-up).
                out.push(Outbound::To(
                    from,
                    WanMessage::Chain(ChainMessage::GetBlocksFrom(self.daemon.chain.height())),
                ));
            }
        }
    }

    /// Gateway role: scan freshly confirmed transactions for an escrow
    /// locked to our ephemeral key and claim it.
    fn try_claim_connected(&mut self, out: &mut Vec<Outbound>) {
        if self.claimed {
            return;
        }
        let Some((e_pk, e_sk)) = self.ephemeral.clone() else {
            return;
        };
        let connected = self.daemon.last_connected_txs().to_vec();
        for tx in &connected {
            let Some((vout, value)) = find_escrow_for_key(tx, &e_pk) else {
                continue;
            };
            let outpoint = OutPoint {
                txid: tx.txid(),
                vout,
            };
            let script = tx.outputs[vout as usize].script_pubkey.clone();
            let claim = build_claim(&self.wallet, outpoint, &script, value, &e_sk, CLAIM_FEE);
            self.claimed = true;
            self.claim_txid = Some(claim.txid());
            self.daemon.relay.mark_seen(claim.txid().0);
            let (done, _) = self
                .daemon
                .accept_transaction(self.now, claim.clone(), &self.costs);
            self.now = done;
            out.push(Outbound::Flood(WanMessage::Chain(ChainMessage::Tx(claim))));
            return;
        }
    }

    /// Recipient role: the claim may first be seen inside a block rather
    /// than as loose gossip (e.g. after a partition heals).
    fn try_decrypt_connected(&mut self) {
        let connected = self.daemon.last_connected_txs().to_vec();
        for tx in &connected {
            self.note_claim(tx);
        }
        if self.decrypted.is_some() {
            return;
        }
        for tx in &connected {
            self.try_decrypt_from(tx);
        }
    }

    /// Recipient role: remembers which key-revealing claim spent our
    /// escrow; a second distinct one flips [`Self::equivocation_detected`].
    /// Runs after decryption too — the rival usually arrives later.
    fn note_claim(&mut self, tx: &Transaction) {
        let Some(outpoint) = self.escrow_outpoint else {
            return;
        };
        if extract_key_from_claim(tx, &outpoint).is_none() {
            return; // refund-branch spends are legal, not equivocation
        }
        let txid = tx.txid();
        match self.seen_claim_txid {
            None => self.seen_claim_txid = Some(txid),
            Some(seen) if seen != txid => self.equivocation_detected = true,
            Some(_) => {}
        }
    }

    fn try_decrypt_from(&mut self, tx: &Transaction) {
        if self.decrypted.is_some() {
            return;
        }
        let Some(outpoint) = self.escrow_outpoint else {
            return;
        };
        let Some(revealed) = extract_key_from_claim(tx, &outpoint) else {
            return;
        };
        let Some((device_id, uplink)) = self.pending_uplink.as_ref() else {
            return;
        };
        let Some(record) = self.registry.get(device_id) else {
            return;
        };
        self.decrypted = open_reading(record, &revealed, &uplink.em).ok();
    }
}

/// A set of [`FleetNode`]s wired together by a [`FleetTransport`].
pub struct Fleet<T> {
    /// The overlay fabric.
    pub transport: T,
    /// The gateways, indexed by node id.
    pub nodes: Vec<FleetNode>,
}

impl<T: FleetTransport> Fleet<T> {
    /// Builds `n` nodes over `transport`, all sharing one fast-test
    /// genesis that funds node 2 (the scenario's recipient) with 1 000.
    ///
    /// Roles by convention (what [`fig3_partition_recovery`] uses):
    /// node 0 is the master miner, node 1 the foreign gateway, node 2
    /// the recipient; everyone else is a relaying bystander.
    ///
    /// # Panics
    ///
    /// If `n < 3` (the three protocol roles must exist).
    pub fn new(transport: T, n: usize, seed: u64) -> Self {
        assert!(n >= 3, "fleet needs miner, gateway, and recipient");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ChainParams::fast_test();
        params.coinbase_maturity = 0;
        let wallets: Vec<Wallet> = (0..n).map(|_| Wallet::generate(&mut rng)).collect();
        let address_book: Vec<Address> = wallets.iter().map(|w| w.address()).collect();
        let genesis = Chain::make_genesis(&params, &[(address_book[2], 1_000)]);
        let genesis_coin = (
            OutPoint {
                txid: genesis.transactions[0].txid(),
                vout: 0,
            },
            wallets[2].locking_script(),
            1_000u64,
        );
        let mut nodes: Vec<FleetNode> = wallets
            .into_iter()
            .enumerate()
            .map(|(i, wallet)| {
                FleetNode::new(
                    NodeId(i as u32),
                    Chain::new(params.clone(), genesis.clone()),
                    wallet,
                    address_book.clone(),
                    seed,
                )
            })
            .collect();
        nodes[2].coins.push(genesis_coin);
        Fleet { transport, nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no nodes ([`Fleet::new`] guarantees not).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drains and handles every node's pending inbox once, routing the
    /// reactions. Returns how many inbound messages were processed.
    pub fn step(&mut self) -> usize {
        let n = self.nodes.len();
        let mut moved = 0;
        for i in 0..n {
            for _ in 0..DRAIN_PER_STEP {
                let Some(env) = self.transport.try_recv(NodeId(i as u32)) else {
                    break;
                };
                moved += 1;
                let reactions = self.nodes[i].handle(env);
                self.route(NodeId(i as u32), reactions);
            }
        }
        moved
    }

    fn route(&mut self, from: NodeId, reactions: Vec<Outbound>) {
        let n = self.nodes.len() as u32;
        for reaction in reactions {
            match reaction {
                Outbound::To(to, msg) => {
                    self.transport.send(from, to, &msg);
                }
                Outbound::Flood(msg) => {
                    for j in 0..n {
                        if j != from.0 {
                            self.transport.send(from, NodeId(j), &msg);
                        }
                    }
                }
            }
        }
    }

    /// Steps until `pred` holds or `timeout` elapses; `true` on success.
    /// Sleeps briefly when idle so in-flight TCP frames can land.
    pub fn run_until(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&Fleet<T>) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(self) {
                return true;
            }
            let moved = self.step();
            if Instant::now() > deadline {
                return pred(self);
            }
            if moved == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Mines one block at `miner` from its mempool and floods it — the
    /// world's mine tick, ported to the live daemon loop.
    pub fn mine(&mut self, miner: usize) {
        let block = {
            let node = &self.nodes[miner];
            let params = node.daemon.chain.params().clone();
            let height = node.daemon.chain.height() + 1;
            let mut txs = vec![Transaction::coinbase(
                height,
                b"fleet",
                vec![TxOut {
                    value: params.coinbase_reward,
                    script_pubkey: node.wallet.locking_script(),
                }],
            )];
            let budget = params.max_block_size.saturating_sub(txs[0].size() + 88);
            txs.extend(node.daemon.mempool.block_template(budget));
            Block::mine(node.daemon.chain.tip(), height, params.difficulty_bits, txs)
        };
        let node = &mut self.nodes[miner];
        let now = node.now;
        let (done, action) = node.daemon.accept_block(now, block.clone(), &mut node.rng);
        node.now = done;
        if matches!(
            action,
            Ok(BlockAction::Extended(_)) | Ok(BlockAction::Reorganized { .. })
        ) {
            node.daemon.relay.mark_seen(block.hash().0);
            let msg = WanMessage::Chain(ChainMessage::Block(block));
            self.route(NodeId(miner as u32), vec![Outbound::Flood(msg)]);
        }
    }

    /// Sends `from`'s tip announcement directly to `to` — how a healed
    /// node learns it is behind.
    pub fn announce_tip(&mut self, from: usize, to: usize) {
        let msg = self.nodes[from].tip_announce();
        self.transport
            .send(NodeId(from as u32), NodeId(to as u32), &msg);
    }

    /// Cuts (or heals) every link between `node` and the rest of the
    /// fleet.
    pub fn set_isolated(&mut self, node: usize, isolated: bool) {
        let n = self.nodes.len();
        for peer in 0..n {
            if peer != node {
                self.transport
                    .set_link(NodeId(node as u32), NodeId(peer as u32), !isolated);
            }
        }
    }

    /// Sends one message directly from `from` to `to` through the
    /// fabric (scenario-level stimulus, e.g. the initial `Deliver`).
    pub fn send_direct(&mut self, from: usize, to: usize, msg: &WanMessage) -> bool {
        self.transport
            .send(NodeId(from as u32), NodeId(to as u32), msg)
    }
}

/// What [`fig3_partition_recovery`] proved, for the caller to assert on.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The reading the recipient decrypted from the revealed `eSk`.
    pub decrypted: Option<Vec<u8>>,
    /// Whether the gateway claimed the escrow.
    pub gateway_claimed: bool,
    /// Final chain height of every node, indexed by node id.
    pub heights: Vec<u64>,
    /// Whether the partitioned straggler's chain contains the claim
    /// transaction after catch-up.
    pub partitioned_caught_up: bool,
    /// Total `GetBlocksFrom` batches served fleet-wide.
    pub sync_batches_served: u64,
}

/// The sensor reading the scenario's device uplinks.
pub const FLEET_READING: &[u8] = b"pm2.5=12ug/m3";

/// The paper's Fig. 3 fair exchange plus a §5.1 partition-recovery
/// sync, written once against [`FleetTransport`] — the tentpole
/// scenario that must pass unmodified on both fabrics.
///
/// Phases: the last node is cut off; the gateway delivers a sealed
/// uplink; the recipient escrows payment; block 1 confirms the escrow;
/// the gateway claims, revealing `eSk`; the recipient decrypts; block 2
/// confirms the claim; the straggler heals, hears a tip announcement,
/// and catches up through bounded `GetBlocksFrom` batches.
///
/// # Panics
///
/// On any phase timing out or a protocol invariant failing — panics
/// carry the phase name so a hang is attributable.
pub fn fig3_partition_recovery<T: FleetTransport>(
    fleet: &mut Fleet<T>,
    timeout: Duration,
) -> FleetOutcome {
    let n = fleet.len();
    assert!(
        n >= 4,
        "scenario needs miner, gateway, recipient, straggler"
    );
    let (miner, gateway, recipient, straggler) = (0, 1, 2, n - 1);

    // Provision a device at the recipient; the device seals a reading
    // under the gateway's fresh ephemeral key (Fig. 3 steps 1–6).
    let mut rng = StdRng::seed_from_u64(0xf1e3);
    let recipient_address = fleet.nodes[recipient].wallet.address();
    let device =
        fleet.nodes[recipient]
            .registry
            .provision(&mut rng, DeviceId(1), recipient_address);
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let sealed = seal_reading(&mut rng, &device, &e_pk, FLEET_READING).expect("seal");
    fleet.nodes[gateway].ephemeral = Some((e_pk.clone(), e_sk));

    // The straggler misses the whole exchange.
    fleet.set_isolated(straggler, true);

    // Step 7: the gateway delivers the uplink to the recipient.
    assert!(
        fleet.send_direct(
            gateway,
            recipient,
            &WanMessage::Deliver {
                device_id: DeviceId(1),
                e_pk_bytes: e_pk.to_bytes(),
                uplink: sealed,
            },
        ),
        "deliver sent"
    );

    // Steps 8–9: the recipient escrows; gossip carries it to the miner.
    assert!(
        fleet.run_until(timeout, |f| !f.nodes[miner].daemon.mempool.is_empty()),
        "escrow reached the miner's mempool"
    );
    fleet.mine(miner); // block 1 confirms the escrow

    // Step 10: the gateway sees the confirmation, claims (revealing
    // eSk), and the recipient decrypts from the gossiped claim.
    assert!(
        fleet.run_until(timeout, |f| {
            f.nodes[gateway].claimed
                && f.nodes[recipient].decrypted.is_some()
                && !f.nodes[miner].daemon.mempool.is_empty()
        }),
        "claim gossiped and reading decrypted"
    );
    fleet.mine(miner); // block 2 confirms the claim

    assert!(
        fleet.run_until(timeout, |f| {
            (0..n).all(|i| i == straggler || f.nodes[i].height() == 2)
        }),
        "connected fleet converged at height 2"
    );
    assert_eq!(
        fleet.nodes[straggler].height(),
        0,
        "straggler stayed dark through the exchange"
    );

    // §5.1: the partition heals; one tip announcement triggers
    // GetBlocksFrom catch-up through bounded batches.
    fleet.set_isolated(straggler, false);
    fleet.announce_tip(miner, straggler);
    assert!(
        fleet.run_until(timeout, |f| {
            f.nodes[straggler].height() == f.nodes[miner].height()
        }),
        "straggler caught up after the partition healed"
    );

    let claim_txid = fleet.nodes[gateway].claim_txid.expect("claim exists");
    let partitioned_caught_up = fleet.nodes[straggler]
        .daemon
        .chain
        .find_transaction(&claim_txid)
        .is_some();
    FleetOutcome {
        decrypted: fleet.nodes[recipient].decrypted.clone(),
        gateway_claimed: fleet.nodes[gateway].claimed,
        heights: fleet.nodes.iter().map(FleetNode::height).collect(),
        partitioned_caught_up,
        sync_batches_served: fleet.nodes.iter().map(|h| h.sync_batches_served).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_serves_bounded_sync_batches() {
        let mut fleet = Fleet::new(BusFleet::new(3), 3, 9);
        for _ in 0..40 {
            fleet.mine(0);
        }
        assert_eq!(fleet.nodes[0].height(), 40);
        let reactions = fleet.nodes[0].handle(Envelope {
            from: NodeId(2),
            msg: WanMessage::Chain(ChainMessage::GetBlocksFrom(0)),
        });
        // SYNC_BATCH blocks plus the trailing tip announce.
        assert_eq!(reactions.len(), SYNC_BATCH + 1);
        assert!(matches!(
            reactions.last(),
            Some(Outbound::To(
                NodeId(2),
                WanMessage::Chain(ChainMessage::TipAnnounce { height: 40, .. })
            ))
        ));
        assert_eq!(fleet.nodes[0].sync_batches_served, 1);
    }

    #[test]
    fn flood_dedup_terminates_gossip() {
        let mut fleet = Fleet::new(BusFleet::new(4), 4, 10);
        fleet.mine(0);
        // Everyone converges, and the drain loop terminates because the
        // relay dedup kills every re-flood: finite total traffic.
        assert!(fleet.run_until(Duration::from_secs(5), |f| {
            f.nodes.iter().all(|n| n.height() == 1)
        }));
        while fleet.step() > 0 {}
        assert!(fleet.nodes.iter().all(|n| n.height() == 1));
    }

    #[test]
    fn recipient_flags_equivocating_claims() {
        let mut fleet = Fleet::new(BusFleet::new(3), 3, 12);
        let mut rng = StdRng::seed_from_u64(77);
        let gateway_wallet = Wallet::generate(&mut rng);
        let recipient_wallet = Wallet::generate(&mut rng);
        let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
        // A synthetic escrow (never mined — detection is chain-independent).
        let coin = (
            OutPoint {
                txid: TxId([9u8; 32]),
                vout: 0,
            },
            recipient_wallet.locking_script(),
            ESCROW_VALUE + ESCROW_FEE,
        );
        let escrow = build_escrow(
            &recipient_wallet,
            &[coin],
            &e_pk,
            &gateway_wallet.address(),
            ESCROW_VALUE,
            ESCROW_FEE,
            0,
        );
        let node = &mut fleet.nodes[0];
        node.escrow_outpoint = Some(escrow.outpoint());
        let claim_a = build_claim(
            &gateway_wallet,
            escrow.outpoint(),
            &escrow.script,
            ESCROW_VALUE,
            &e_sk,
            CLAIM_FEE,
        );
        let claim_b = build_claim(
            &gateway_wallet,
            escrow.outpoint(),
            &escrow.script,
            ESCROW_VALUE,
            &e_sk,
            CLAIM_FEE + 1,
        );
        assert_ne!(claim_a.txid(), claim_b.txid(), "fee skew forks the txid");
        node.note_claim(&claim_a);
        node.note_claim(&claim_a); // duplicate of the same claim: fine
        assert!(!node.equivocation_detected);
        node.note_claim(&claim_b);
        assert!(node.equivocation_detected, "second distinct claim flags");
    }

    #[test]
    fn cut_links_drop_messages_on_the_bus() {
        let mut fleet = Fleet::new(BusFleet::new(3), 3, 11);
        let announce = fleet.nodes[0].tip_announce();
        fleet.set_isolated(2, true);
        assert!(!fleet.send_direct(0, 2, &announce));
        fleet.set_isolated(2, false);
        assert!(fleet.send_direct(0, 2, &announce));
    }
}
